//! The 8 KiB page and its header.
//!
//! Layout:
//!
//! ```text
//! offset  size  field
//! 0       2     magic (0x7E11)
//! 2       1     page type
//! 3       1     flags (unused, reserved)
//! 4       8     pageLSN (LSN of the last log record applied to this page)
//! 12      8     checksum (FNV-1a over the page with this field zeroed)
//! 20      12    reserved
//! 32      8160  payload
//! ```
//!
//! The pageLSN is the linchpin of ARIES redo idempotence: redo applies a log
//! record to a page iff `pageLSN < record.lsn`.

use txview_common::codec::checksum64;
use txview_common::{Error, Lsn, Result};

/// Page size in bytes. 8 KiB, like the system the paper describes.
pub const PAGE_SIZE: usize = 8192;
/// Bytes reserved for the page header.
pub const PAGE_HEADER_SIZE: usize = 32;
/// Usable payload bytes per page.
pub const PAGE_PAYLOAD_SIZE: usize = PAGE_SIZE - PAGE_HEADER_SIZE;

const MAGIC: u16 = 0x7E11;
const OFF_MAGIC: usize = 0;
const OFF_TYPE: usize = 2;
const OFF_LSN: usize = 4;
const OFF_CHECKSUM: usize = 12;

/// What a page holds. Stored in the header so recovery and debugging tools
/// can interpret raw pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageType {
    /// Unformatted / freed.
    Free,
    /// Disk-manager superblock (page 0).
    Super,
    /// B-tree leaf.
    BTreeLeaf,
    /// B-tree interior node.
    BTreeInterior,
    /// Catalog page.
    Catalog,
    /// Hash-index page (directory or bucket; the point-read fast path).
    HashBucket,
}

impl PageType {
    fn to_u8(self) -> u8 {
        match self {
            PageType::Free => 0,
            PageType::Super => 1,
            PageType::BTreeLeaf => 2,
            PageType::BTreeInterior => 3,
            PageType::Catalog => 4,
            PageType::HashBucket => 5,
        }
    }

    fn from_u8(v: u8) -> Result<PageType> {
        Ok(match v {
            0 => PageType::Free,
            1 => PageType::Super,
            2 => PageType::BTreeLeaf,
            3 => PageType::BTreeInterior,
            4 => PageType::Catalog,
            5 => PageType::HashBucket,
            t => return Err(Error::corruption(format!("bad page type {t}"))),
        })
    }
}

/// An in-memory page image.
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page formatted with the given type and a null pageLSN.
    pub fn new(ty: PageType) -> Page {
        let mut p = Page { bytes: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap() };
        p.bytes[OFF_MAGIC..OFF_MAGIC + 2].copy_from_slice(&MAGIC.to_le_bytes());
        p.bytes[OFF_TYPE] = ty.to_u8();
        p
    }

    /// Wrap raw bytes read from disk, verifying magic and checksum.
    pub fn from_disk(bytes: [u8; PAGE_SIZE]) -> Result<Page> {
        let p = Page { bytes: Box::new(bytes) };
        let magic = u16::from_le_bytes(p.bytes[OFF_MAGIC..OFF_MAGIC + 2].try_into().unwrap());
        if magic != MAGIC {
            return Err(Error::corruption(format!("bad page magic {magic:#06x}")));
        }
        let stored = u64::from_le_bytes(p.bytes[OFF_CHECKSUM..OFF_CHECKSUM + 8].try_into().unwrap());
        let computed = p.compute_checksum();
        if stored != computed {
            return Err(Error::corruption(format!(
                "page checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            )));
        }
        Ok(p)
    }

    /// Seal the checksum and return the raw image for writing to disk.
    pub fn to_disk(&mut self) -> &[u8; PAGE_SIZE] {
        let sum = self.compute_checksum();
        self.bytes[OFF_CHECKSUM..OFF_CHECKSUM + 8].copy_from_slice(&sum.to_le_bytes());
        &self.bytes
    }

    fn compute_checksum(&self) -> u64 {
        // Checksum everything except the checksum field itself.
        let mut h = checksum64(&self.bytes[..OFF_CHECKSUM]);
        h ^= checksum64(&self.bytes[OFF_CHECKSUM + 8..]).rotate_left(1);
        h
    }

    /// Page type from the header.
    pub fn page_type(&self) -> Result<PageType> {
        PageType::from_u8(self.bytes[OFF_TYPE])
    }

    /// Overwrite the page type (used when formatting a recycled frame).
    pub fn set_page_type(&mut self, ty: PageType) {
        self.bytes[OFF_TYPE] = ty.to_u8();
    }

    /// The pageLSN.
    pub fn lsn(&self) -> Lsn {
        Lsn(u64::from_le_bytes(self.bytes[OFF_LSN..OFF_LSN + 8].try_into().unwrap()))
    }

    /// Stamp the pageLSN. Callers must only move it forward (debug-checked)
    /// — redo and normal operation both preserve monotonicity.
    pub fn set_lsn(&mut self, lsn: Lsn) {
        debug_assert!(lsn >= self.lsn(), "pageLSN must be monotone");
        self.bytes[OFF_LSN..OFF_LSN + 8].copy_from_slice(&lsn.0.to_le_bytes());
    }

    /// Immutable payload view.
    pub fn payload(&self) -> &[u8] {
        &self.bytes[PAGE_HEADER_SIZE..]
    }

    /// Mutable payload view.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[PAGE_HEADER_SIZE..]
    }

    /// Raw page image (header + payload); used by tests and the crash
    /// simulator.
    pub fn raw(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Zero the payload and reformat as `ty` (recycling a page).
    pub fn reformat(&mut self, ty: PageType) {
        self.bytes[PAGE_HEADER_SIZE..].fill(0);
        self.set_page_type(ty);
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page { bytes: self.bytes.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_has_null_lsn_and_type() {
        let p = Page::new(PageType::BTreeLeaf);
        assert_eq!(p.lsn(), Lsn::NULL);
        assert_eq!(p.page_type().unwrap(), PageType::BTreeLeaf);
        assert_eq!(p.payload().len(), PAGE_PAYLOAD_SIZE);
    }

    #[test]
    fn disk_roundtrip_with_checksum() {
        let mut p = Page::new(PageType::Catalog);
        p.payload_mut()[0..4].copy_from_slice(b"data");
        p.set_lsn(Lsn(77));
        let img = *p.to_disk();
        let back = Page::from_disk(img).unwrap();
        assert_eq!(back.lsn(), Lsn(77));
        assert_eq!(&back.payload()[0..4], b"data");
    }

    #[test]
    fn corruption_detected() {
        let mut p = Page::new(PageType::BTreeLeaf);
        p.payload_mut()[100] = 42;
        let mut img = *p.to_disk();
        img[PAGE_HEADER_SIZE + 100] = 43; // flip a payload byte after sealing
        assert!(Page::from_disk(img).is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let img = [0u8; PAGE_SIZE];
        assert!(Page::from_disk(img).is_err());
    }

    #[test]
    fn lsn_monotone_in_debug() {
        let mut p = Page::new(PageType::BTreeLeaf);
        p.set_lsn(Lsn(5));
        p.set_lsn(Lsn(5)); // equal ok
        p.set_lsn(Lsn(9));
        assert_eq!(p.lsn(), Lsn(9));
    }

    #[test]
    fn reformat_clears_payload() {
        let mut p = Page::new(PageType::BTreeLeaf);
        p.payload_mut()[10] = 9;
        p.reformat(PageType::Free);
        assert_eq!(p.payload()[10], 0);
        assert_eq!(p.page_type().unwrap(), PageType::Free);
    }
}
