//! Buffer pool: fixed set of frames over a [`DiskManager`].
//!
//! * **steal / no-force** — dirty pages may be evicted before commit and are
//!   not forced at commit; recovery (in `txview-wal`) relies on this.
//! * **WAL-before-data** — before a dirty page image is written, the pool
//!   calls the registered WAL-flush hook with the page's pageLSN.
//! * **CLOCK eviction** with pin counts; per-frame `RwLock<Page>` serves as
//!   the page *latch* (short-term physical consistency), entirely separate
//!   from transaction *locks*.
//! * **crash simulation** — [`BufferPool::simulate_crash`] flushes a random
//!   subset of dirty pages (modelling steal having happened at arbitrary
//!   points) and then forgets everything, leaving the disk in exactly the
//!   kind of inconsistent state ARIES recovery must repair.

use crate::disk::DiskManager;
use crate::fault::CrashProbe;
use crate::page::{Page, PageType};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use txview_common::obs::{Histogram, ObsClock, Snapshot, StripedCounter};
use txview_common::retry::{RetryCounters, RetryPolicy, RetryStatsSnapshot};
use txview_common::rng::Rng;
use txview_common::{Error, Lsn, PageId, Result};

/// Hook invoked with a pageLSN just before that page is written to disk.
/// The WAL layer registers `|lsn| log.flush_to(lsn)` here.
pub type WalFlushFn = dyn Fn(Lsn) -> Result<()> + Send + Sync;

struct FrameState {
    pid: Option<PageId>,
    dirty: bool,
    /// ARIES recLSN: a lower bound on the LSN of the first log record that
    /// dirtied this page since it was last flushed (the page's pageLSN at
    /// the clean→dirty transition). Null while clean.
    rec_lsn: Lsn,
    pins: u32,
    refbit: bool,
}

/// Frame bookkeeping of one sub-pool. `map` values and `hand` are *local*
/// frame indexes (0..frames.len() within this sub-pool); the matching page
/// latch lives at `SubPool::base + local` in the pool-wide latch array.
struct PoolState {
    map: HashMap<PageId, usize>,
    frames: Vec<FrameState>,
    hand: usize,
}

/// One independently locked slice of the pool: its own residency map,
/// frame states, and CLOCK hand. Pages are routed to sub-pools by
/// `pid % n`, so concurrent fetches of different pages rarely contend.
struct SubPool {
    /// Offset of this sub-pool's first frame in the shared latch array.
    base: usize,
    state: Mutex<PoolState>,
}

/// The buffer pool. Cheap to share: wrap in `Arc`.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    latches: Vec<RwLock<Page>>,
    subs: Box<[SubPool]>,
    wal_flush: RwLock<Option<Arc<WalFlushFn>>>,
    crash_probe: RwLock<Option<Arc<CrashProbe>>>,
    retry: Mutex<RetryPolicy>,
    retry_counters: RetryCounters,
    obs: PoolObs,
}

/// Buffer-pool observability: residency hit rate, how far the CLOCK hand
/// travels per victim search, and how long dirty-page writes take (the
/// write-retry seam the fault harness exercises).
#[derive(Default)]
pub struct PoolObs {
    /// Time source; switched to a logical tick counter in deterministic runs.
    pub clock: ObsClock,
    /// Fetches served from a resident frame. Striped: this increment
    /// happens inside the pool's state lock on the hottest path in the
    /// system, so a single shared cache line would stretch the critical
    /// section by a full coherence miss.
    pub hits: StripedCounter,
    /// Fetches that had to read from disk.
    pub misses: StripedCounter,
    /// Frames examined per CLOCK victim search (refbit decay included).
    pub evict_scan: Histogram,
    /// Wall time of one dirty-frame write (WAL force + retried data write).
    pub write_us: Histogram,
}

impl BufferPool {
    /// Create a pool with `capacity` frames over `disk`. The frame state is
    /// split into `min(8, capacity / 64)` sub-pools (at least one), so small
    /// pools — including every fault-injection test that counts on exact
    /// single-CLOCK eviction order — keep the unsharded behavior, while the
    /// benchmark-sized pools stop serializing every fetch on one mutex.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Arc<BufferPool> {
        assert!(capacity > 0);
        let latches = (0..capacity)
            .map(|_| RwLock::new(Page::new(PageType::Free)))
            .collect();
        let n_subs = (capacity / 64).clamp(1, 8);
        let mut subs = Vec::with_capacity(n_subs);
        let mut base = 0;
        for i in 0..n_subs {
            let size = capacity / n_subs + usize::from(i < capacity % n_subs);
            let frames = (0..size)
                .map(|_| FrameState {
                    pid: None,
                    dirty: false,
                    rec_lsn: Lsn::NULL,
                    pins: 0,
                    refbit: false,
                })
                .collect();
            subs.push(SubPool {
                base,
                state: Mutex::new(PoolState { map: HashMap::new(), frames, hand: 0 }),
            });
            base += size;
        }
        debug_assert_eq!(base, capacity);
        Arc::new(BufferPool {
            disk,
            latches,
            subs: subs.into_boxed_slice(),
            wal_flush: RwLock::new(None),
            crash_probe: RwLock::new(None),
            retry: Mutex::new(RetryPolicy::default()),
            retry_counters: RetryCounters::default(),
            obs: PoolObs::default(),
        })
    }

    /// The sub-pool a page is routed to. Round-robin on the raw page id:
    /// B-tree pages are allocated sequentially, so a hot working set spreads
    /// evenly across sub-pools.
    fn sub_of(&self, pid: PageId) -> usize {
        pid.0 as usize % self.subs.len()
    }

    /// Number of sub-pools (exposed for tests and observability).
    pub fn sub_pool_count(&self) -> usize {
        self.subs.len()
    }

    /// Replace the transient-I/O retry policy (e.g. the torture harness
    /// installs a zero-delay policy, since injected faults clear by event
    /// count rather than elapsed time).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// Retry telemetry for the page-I/O seam.
    pub fn io_retry_stats(&self) -> RetryStatsSnapshot {
        self.retry_counters.snapshot()
    }

    /// Register the WAL-before-data hook.
    pub fn set_wal_flush(&self, f: Arc<WalFlushFn>) {
        *self.wal_flush.write() = Some(f);
    }

    /// Register a crash-point probe, invoked between "WAL flushed" and
    /// "data page written" on every dirty-page flush (eviction, flush_all,
    /// checkpoint). The torture harness uses this to land crashes inside
    /// the steal/no-force window.
    pub fn set_crash_probe(&self, f: Arc<CrashProbe>) {
        *self.crash_probe.write() = Some(f);
    }

    fn probe(&self, point: &'static str) {
        let hook = self.crash_probe.read().clone();
        if let Some(f) = hook {
            f(point);
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.latches.len()
    }

    fn flush_wal_to(&self, lsn: Lsn) -> Result<()> {
        if lsn.is_null() {
            return Ok(());
        }
        let hook = self.wal_flush.read().clone();
        if let Some(f) = hook {
            f(lsn)?;
        }
        Ok(())
    }

    /// Write one frame's page to disk, honouring WAL-before-data. The
    /// physical write retries transient faults under the pool's
    /// [`RetryPolicy`]; on failure the frame keeps its `dirty` flag and
    /// `rec_lsn` (set *after* a successful write only), so no update is
    /// silently lost — the next eviction or flush simply tries again.
    /// Caller holds the owning sub-pool's state mutex (`base` is that
    /// sub-pool's latch offset, `idx` the local frame index); the frame must
    /// be unpinned or the caller must otherwise guarantee latch availability.
    fn write_frame(&self, base: usize, idx: usize, st: &mut PoolState) -> Result<()> {
        let pid = st.frames[idx].pid.expect("write_frame on empty frame");
        // Uncontended: pins == 0 or caller owns the only pin and no latch.
        let mut page = self.latches[base + idx].write();
        let t0 = self.obs.clock.now();
        self.flush_wal_to(page.lsn())?;
        self.probe("buffer.write_frame.pre_data_write");
        let policy = *self.retry.lock();
        policy.run(&self.retry_counters, || self.disk.write_page(pid, &mut page))?;
        self.obs.write_us.record(self.obs.clock.now().saturating_sub(t0));
        st.frames[idx].dirty = false;
        st.frames[idx].rec_lsn = Lsn::NULL;
        Ok(())
    }

    /// Read a page from disk, absorbing transient faults under the pool's
    /// retry policy. A checksum failure triggers exactly one re-read before
    /// being escalated to corruption: a garbled bus transfer is transient,
    /// a torn platter image is not, and the second read tells them apart.
    fn read_page_resilient(&self, pid: PageId) -> Result<Page> {
        let policy = *self.retry.lock();
        policy.run(&self.retry_counters, || match self.disk.read_page(pid) {
            Err(Error::Corruption(first)) => match self.disk.read_page(pid) {
                Ok(page) => {
                    self.retry_counters.retries.fetch_add(1, Ordering::Relaxed);
                    Ok(page)
                }
                Err(_) => Err(Error::Corruption(first)),
            },
            r => r,
        })
    }

    /// One CLOCK sweep over unpinned frames. With `allow_dirty = false`
    /// only clean frames are candidates (and only their refbits decay), so
    /// reads can keep landing frames while the write path is degraded.
    fn clock_sweep(&self, st: &mut PoolState, allow_dirty: bool) -> Option<usize> {
        let n = st.frames.len();
        // Two full sweeps: first clears refbits, second takes candidates.
        for step in 0..2 * n + 1 {
            let idx = st.hand;
            st.hand = (st.hand + 1) % n;
            let f = &mut st.frames[idx];
            if f.pins > 0 || (f.dirty && !allow_dirty) {
                continue;
            }
            if f.refbit {
                f.refbit = false;
                continue;
            }
            self.obs.evict_scan.record(step as u64 + 1);
            return Some(idx);
        }
        self.obs.evict_scan.record(2 * n as u64 + 1);
        None
    }

    /// Find a victim frame with CLOCK within one sub-pool, flushing it if
    /// dirty. Clean frames are preferred: evicting one needs no disk write,
    /// which both avoids an unnecessary flush and keeps the read path alive
    /// when the write path is failing. Returns the local frame index with
    /// its state cleared and pinned once for the caller.
    fn take_victim(&self, base: usize, st: &mut PoolState, for_pid: PageId) -> Result<usize> {
        let idx = match self.clock_sweep(st, false) {
            Some(idx) => idx,
            None => self.clock_sweep(st, true).ok_or(Error::BufferExhausted)?,
        };
        if st.frames[idx].dirty {
            self.write_frame(base, idx, st)?;
        }
        let f = &mut st.frames[idx];
        if let Some(old) = f.pid.take() {
            st.map.remove(&old);
        }
        f.dirty = false;
        f.rec_lsn = Lsn::NULL;
        f.pins = 1;
        f.refbit = true;
        f.pid = Some(for_pid);
        st.map.insert(for_pid, idx);
        Ok(idx)
    }

    /// Fetch `pid` into the pool, pinning it.
    pub fn fetch(self: &Arc<Self>, pid: PageId) -> Result<PinnedPage> {
        let sub = self.sub_of(pid);
        let base = self.subs[sub].base;
        let mut st = self.subs[sub].state.lock();
        if let Some(&idx) = st.map.get(&pid) {
            let f = &mut st.frames[idx];
            f.pins += 1;
            f.refbit = true;
            self.obs.hits.inc();
            return Ok(PinnedPage { pool: Arc::clone(self), sub, local: idx, pid });
        }
        self.obs.misses.inc();
        let idx = self.take_victim(base, &mut st, pid)?;
        // Read from disk while holding the sub-pool's state lock: simple and
        // safe (frame is pinned so nothing else will touch it), and fetches
        // routed to other sub-pools proceed in parallel.
        match self.read_page_resilient(pid) {
            Ok(page) => {
                *self.latches[base + idx].write() = page;
                Ok(PinnedPage { pool: Arc::clone(self), sub, local: idx, pid })
            }
            Err(e) => {
                // Back out the reservation.
                let f = &mut st.frames[idx];
                f.pid = None;
                f.pins = 0;
                st.map.remove(&pid);
                Err(e)
            }
        }
    }

    /// Allocate a fresh page of type `ty`, pinned and dirty.
    pub fn new_page(self: &Arc<Self>, ty: PageType) -> Result<(PageId, PinnedPage)> {
        let pid = self.disk.allocate()?;
        let sub = self.sub_of(pid);
        let base = self.subs[sub].base;
        let mut st = self.subs[sub].state.lock();
        let idx = self.take_victim(base, &mut st, pid)?;
        st.frames[idx].dirty = true;
        st.frames[idx].rec_lsn = Lsn::NULL;
        *self.latches[base + idx].write() = Page::new(ty);
        Ok((pid, PinnedPage { pool: Arc::clone(self), sub, local: idx, pid }))
    }

    /// Re-create page `pid` in the pool with a fresh image (recovery redo of
    /// a page-format record for a page the disk never saw). Pinned + dirty.
    pub fn recreate_page(self: &Arc<Self>, pid: PageId, ty: PageType) -> Result<PinnedPage> {
        self.disk.ensure_allocated(pid);
        let sub = self.sub_of(pid);
        let base = self.subs[sub].base;
        let mut st = self.subs[sub].state.lock();
        if let Some(&idx) = st.map.get(&pid) {
            let f = &mut st.frames[idx];
            f.pins += 1;
            f.dirty = true;
            f.rec_lsn = Lsn::NULL;
            *self.latches[base + idx].write() = Page::new(ty);
            return Ok(PinnedPage { pool: Arc::clone(self), sub, local: idx, pid });
        }
        let idx = self.take_victim(base, &mut st, pid)?;
        st.frames[idx].dirty = true;
        st.frames[idx].rec_lsn = Lsn::NULL;
        *self.latches[base + idx].write() = Page::new(ty);
        Ok(PinnedPage { pool: Arc::clone(self), sub, local: idx, pid })
    }

    /// Fetch `pid`, creating a fresh image if the disk has never stored it.
    /// Used by recovery redo, where a logged page may have died unflushed.
    pub fn fetch_or_recreate(self: &Arc<Self>, pid: PageId, ty: PageType) -> Result<PinnedPage> {
        match self.fetch(pid) {
            Ok(p) => Ok(p),
            Err(Error::NotFound(_))
            | Err(Error::Io(_))
            | Err(Error::IoTransient(_))
            | Err(Error::Corruption(_)) => self.recreate_page(pid, ty),
            Err(e) => Err(e),
        }
    }

    /// Flush a single page if resident and dirty.
    pub fn flush_page(&self, pid: PageId) -> Result<()> {
        let sub = &self.subs[self.sub_of(pid)];
        let mut st = sub.state.lock();
        if let Some(&idx) = st.map.get(&pid) {
            if st.frames[idx].dirty {
                self.write_frame(sub.base, idx, &mut st)?;
            }
        }
        Ok(())
    }

    /// Flush every dirty resident page (checkpoint helper). Sub-pools are
    /// visited in fixed order; this is fuzzy across sub-pools in exactly the
    /// way a checkpoint is fuzzy across pages — each write individually
    /// honours WAL-before-data, which is all recovery needs.
    pub fn flush_all(&self) -> Result<()> {
        for sub in self.subs.iter() {
            let mut st = sub.state.lock();
            for idx in 0..st.frames.len() {
                if st.frames[idx].pid.is_some() && st.frames[idx].dirty {
                    self.write_frame(sub.base, idx, &mut st)?;
                }
            }
        }
        self.disk.sync()
    }

    /// (page, recLSN) of currently dirty resident pages — the dirty-page
    /// table a fuzzy checkpoint records. The recLSN is where redo for that
    /// page must start. Sub-pools are scanned in fixed order; the result is
    /// conservative in the usual fuzzy-checkpoint sense (a page flushed
    /// concurrently may still be listed, which only moves redo earlier).
    pub fn dirty_pages(&self) -> Vec<(PageId, Lsn)> {
        let mut out = Vec::new();
        for sub in self.subs.iter() {
            let st = sub.state.lock();
            for f in st.frames.iter() {
                if let (Some(pid), true) = (f.pid, f.dirty) {
                    out.push((pid, f.rec_lsn));
                }
            }
        }
        out
    }

    /// Crash simulation: flush each dirty page with probability
    /// `steal_probability` (modelling evictions that already happened),
    /// then forget all frames. Requires no outstanding pins. Frames are
    /// visited sub-pool-major in fixed order, so a given seed still yields
    /// a deterministic steal set.
    pub fn simulate_crash(&self, steal_probability: f64, rng: &mut Rng) -> Result<()> {
        for sub in self.subs.iter() {
            let mut st = sub.state.lock();
            for idx in 0..st.frames.len() {
                let f = &st.frames[idx];
                assert_eq!(f.pins, 0, "simulate_crash with pinned pages");
                if f.pid.is_some() && f.dirty && rng.chance(steal_probability) {
                    self.write_frame(sub.base, idx, &mut st)?;
                }
            }
            for f in st.frames.iter_mut() {
                f.pid = None;
                f.dirty = false;
                f.rec_lsn = Lsn::NULL;
                f.refbit = false;
            }
            st.map.clear();
        }
        Ok(())
    }

    /// Buffer-pool observability handles (clock switching, direct reads).
    pub fn obs(&self) -> &PoolObs {
        &self.obs
    }

    /// Point-in-time metrics snapshot of the pool, `pool.*`-namespaced.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        s.counter("pool.hits", self.obs.hits.get());
        s.counter("pool.misses", self.obs.misses.get());
        let retry = self.retry_counters.snapshot();
        s.counter("pool.io_retries", retry.retries);
        s.counter("pool.io_exhausted", retry.exhausted);
        s.gauge("pool.dirty_frames", self.dirty_pages().len() as i64);
        s.hist("pool.evict_scan", self.obs.evict_scan.snapshot());
        s.hist("pool.write_us", self.obs.write_us.snapshot());
        s.sort();
        s
    }
}

/// Read latch guard.
pub type PageReadGuard<'a> = RwLockReadGuard<'a, Page>;
/// Write latch guard.
pub type PageWriteGuard<'a> = RwLockWriteGuard<'a, Page>;

/// A pinned page. Dropping unpins. `read()`/`write()` take the page latch.
pub struct PinnedPage {
    pool: Arc<BufferPool>,
    /// Index of the owning sub-pool.
    sub: usize,
    /// Frame index local to that sub-pool.
    local: usize,
    pid: PageId,
}

impl PinnedPage {
    /// The page id.
    pub fn id(&self) -> PageId {
        self.pid
    }

    fn latch(&self) -> &RwLock<Page> {
        &self.pool.latches[self.pool.subs[self.sub].base + self.local]
    }

    /// Take the shared (read) latch.
    pub fn read(&self) -> PageReadGuard<'_> {
        self.latch().read()
    }

    /// Take the exclusive (write) latch and mark the frame dirty, recording
    /// the recLSN (the pageLSN before this modification) at the clean→dirty
    /// transition. Latch-then-state order is safe: state→latch paths only
    /// touch unpinned frames, and this frame is pinned.
    pub fn write(&self) -> PageWriteGuard<'_> {
        let guard = self.latch().write();
        {
            let mut st = self.pool.subs[self.sub].state.lock();
            let f = &mut st.frames[self.local];
            if !f.dirty {
                f.dirty = true;
                f.rec_lsn = guard.lsn();
            }
        }
        guard
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        let mut st = self.pool.subs[self.sub].state.lock();
        let f = &mut st.frames[self.local];
        debug_assert!(f.pins > 0);
        f.pins -= 1;
    }
}

impl Clone for PinnedPage {
    fn clone(&self) -> Self {
        let mut st = self.pool.subs[self.sub].state.lock();
        st.frames[self.local].pins += 1;
        PinnedPage { pool: Arc::clone(&self.pool), sub: self.sub, local: self.local, pid: self.pid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pool(cap: usize) -> Arc<BufferPool> {
        BufferPool::new(Arc::new(MemDisk::new()), cap)
    }

    #[test]
    fn new_page_fetch_roundtrip() {
        let p = pool(4);
        let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().payload_mut()[0] = 0x5A;
        drop(page);
        let again = p.fetch(pid).unwrap();
        assert_eq!(again.read().payload()[0], 0x5A);
    }

    #[test]
    fn eviction_and_reload() {
        let p = pool(2);
        let mut pids = Vec::new();
        for i in 0..5u8 {
            let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
            page.write().payload_mut()[0] = i;
            pids.push(pid);
        }
        // All five pages must still be readable (three were evicted).
        for (i, pid) in pids.iter().enumerate() {
            let page = p.fetch(*pid).unwrap();
            assert_eq!(page.read().payload()[0], i as u8);
        }
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let (pid_a, a) = p.new_page(PageType::BTreeLeaf).unwrap();
        let (_pid_b, b) = p.new_page(PageType::BTreeLeaf).unwrap();
        // Both frames pinned: a third page cannot enter.
        assert!(matches!(p.new_page(PageType::BTreeLeaf), Err(Error::BufferExhausted)));
        drop(b);
        // Now one frame is evictable.
        let (_pid_c, _c) = p.new_page(PageType::BTreeLeaf).unwrap();
        // `a` is still resident and correct.
        assert_eq!(p.fetch(pid_a).unwrap().id(), a.id());
    }

    #[test]
    fn wal_hook_called_before_dirty_write() {
        let p = pool(1);
        let called = Arc::new(AtomicU64::new(u64::MAX));
        let c2 = Arc::clone(&called);
        p.set_wal_flush(Arc::new(move |lsn| {
            c2.store(lsn.0, Ordering::SeqCst);
            Ok(())
        }));
        let (_pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().set_lsn(Lsn(99));
        drop(page);
        // Force eviction by allocating another page into the single frame.
        let (_pid2, _page2) = p.new_page(PageType::BTreeLeaf).unwrap();
        assert_eq!(called.load(Ordering::SeqCst), 99);
    }

    #[test]
    fn flush_all_clears_dirty_set() {
        let p = pool(4);
        let (_p1, g1) = p.new_page(PageType::BTreeLeaf).unwrap();
        g1.write().set_lsn(Lsn(1));
        drop(g1);
        assert_eq!(p.dirty_pages().len(), 1);
        p.flush_all().unwrap();
        assert!(p.dirty_pages().is_empty());
    }

    #[test]
    fn simulate_crash_loses_unflushed_writes() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 4);
        let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().payload_mut()[0] = 7;
        drop(page);
        let mut rng = Rng::new(1);
        p.simulate_crash(0.0, &mut rng).unwrap(); // steal probability 0: nothing flushed
        // Disk never saw the page.
        assert!(disk.read_page(pid).is_err());
        // And recovery-style access recreates a fresh image.
        let page = p.fetch_or_recreate(pid, PageType::BTreeLeaf).unwrap();
        assert_eq!(page.read().payload()[0], 0);
    }

    #[test]
    fn simulate_crash_with_full_steal_preserves_writes() {
        let p = pool(4);
        let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().payload_mut()[0] = 7;
        drop(page);
        let mut rng = Rng::new(1);
        p.simulate_crash(1.0, &mut rng).unwrap();
        let page = p.fetch(pid).unwrap();
        assert_eq!(page.read().payload()[0], 7);
    }

    #[test]
    fn clone_pin_keeps_frame() {
        let p = pool(1);
        let (_pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        let second = page.clone();
        drop(page);
        // Still pinned by `second`, so a new page cannot take the frame.
        assert!(p.new_page(PageType::BTreeLeaf).is_err());
        drop(second);
        assert!(p.new_page(PageType::BTreeLeaf).is_ok());
    }

    #[test]
    fn transient_eviction_failure_keeps_frame_dirty_with_rec_lsn() {
        use crate::fault::{FaultClock, FaultDisk, FaultKind, FaultSchedule};
        let clock = FaultClock::new();
        let disk = Arc::new(FaultDisk::new(Arc::clone(&clock)));
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 1);
        p.set_retry_policy(RetryPolicy::no_delay(1)); // no retry: fault must surface
        let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        {
            let mut g = page.write();
            g.payload_mut()[0] = 0xEE;
            g.set_lsn(Lsn(5));
        }
        drop(page);
        p.flush_all().unwrap();
        // Re-dirty the (clean, resident) page: rec_lsn records the page's
        // LSN at the clean→dirty transition, i.e. Lsn(5).
        let page = p.fetch(pid).unwrap();
        page.write().set_lsn(Lsn(6));
        drop(page);
        assert_eq!(p.dirty_pages(), vec![(pid, Lsn(5))]);
        // Next disk write fails transiently: the eviction must error out...
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::Transient)] });
        let err = match p.new_page(PageType::BTreeLeaf) {
            Err(e) => e,
            Ok(_) => panic!("eviction with a faulted write must fail"),
        };
        assert!(matches!(err, Error::IoTransient(_)), "got {err:?}");
        // ...and the frame must still be dirty with its recLSN intact — the
        // update is not silently lost.
        assert_eq!(p.dirty_pages(), vec![(pid, Lsn(5))]);
        // Once the fault clears, the next eviction succeeds and the page
        // lands on disk with the dirtied image.
        let (_pid2, _g2) = p.new_page(PageType::BTreeLeaf).unwrap();
        assert!(p.dirty_pages().iter().all(|&(d, _)| d != pid));
        assert_eq!(disk.read_page(pid).unwrap().lsn(), Lsn(6));
    }

    #[test]
    fn retry_absorbs_transient_burst_on_eviction() {
        use crate::fault::{FaultClock, FaultDisk, FaultKind, FaultSchedule};
        let clock = FaultClock::new();
        let disk = Arc::new(FaultDisk::new(Arc::clone(&clock)));
        let p = BufferPool::new(disk as Arc<dyn DiskManager>, 1);
        p.set_retry_policy(RetryPolicy::no_delay(5));
        let (_pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().payload_mut()[0] = 1;
        drop(page);
        // Three consecutive transient faults on the write seam: within the
        // 5-attempt budget, so the caller never sees them.
        clock.arm(&FaultSchedule {
            faults: vec![
                (0, FaultKind::Transient),
                (1, FaultKind::Transient),
                (2, FaultKind::Transient),
            ],
        });
        let (_pid2, _g2) = p.new_page(PageType::BTreeLeaf).unwrap();
        let snap = p.io_retry_stats();
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.exhausted, 0);
        assert_eq!(clock.stats().transient_faults, 3);
    }

    #[test]
    fn clean_victims_preferred_so_reads_survive_a_dead_write_path() {
        use crate::fault::{FaultClock, FaultDisk, FaultSchedule};
        let clock = FaultClock::new();
        let disk = Arc::new(FaultDisk::new(Arc::clone(&clock)));
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 2);
        let (pid_a, a) = p.new_page(PageType::BTreeLeaf).unwrap();
        a.write().set_lsn(Lsn(1));
        drop(a);
        let (pid_b, b) = p.new_page(PageType::BTreeLeaf).unwrap();
        drop(b);
        let (pid_c, c) = p.new_page(PageType::BTreeLeaf).unwrap();
        drop(c);
        p.flush_all().unwrap();
        // Dirty A; the other resident frame stays clean.
        let a = p.fetch(pid_a).unwrap();
        a.write().set_lsn(Lsn(9));
        drop(a);
        // Kill the write path for good. Reads are not faulted, so fetches
        // of non-resident pages must keep working by evicting clean frames
        // instead of trying (and failing) to flush A.
        clock.arm(&FaultSchedule::persistent_at(0));
        drop(p.fetch(pid_b).unwrap());
        drop(p.fetch(pid_c).unwrap());
        assert_eq!(p.dirty_pages(), vec![(pid_a, Lsn(1))], "A never forced out");
        // Strongest form of the claim: the fetches never even attempted a
        // write, so the armed outage never activated.
        assert_eq!(clock.stats().persistent_faults, 0);
        clock.disarm();
        p.flush_all().unwrap();
        assert!(p.dirty_pages().is_empty());
    }

    #[test]
    fn checksum_failure_gets_one_reread_before_escalating() {
        use crate::disk::MemDisk;
        use std::sync::atomic::AtomicBool;

        /// Disk whose next read returns a checksum failure once — the
        /// platter image is fine, only the transfer was garbled.
        struct FlakyRead {
            inner: MemDisk,
            fail_next: AtomicBool,
        }
        impl DiskManager for FlakyRead {
            fn read_page(&self, pid: PageId) -> Result<Page> {
                if self.fail_next.swap(false, Ordering::SeqCst) {
                    return Err(Error::corruption("garbled transfer"));
                }
                self.inner.read_page(pid)
            }
            fn write_page(&self, pid: PageId, page: &mut Page) -> Result<()> {
                self.inner.write_page(pid, page)
            }
            fn allocate(&self) -> Result<PageId> {
                self.inner.allocate()
            }
            fn num_pages(&self) -> u32 {
                self.inner.num_pages()
            }
            fn ensure_allocated(&self, pid: PageId) {
                self.inner.ensure_allocated(pid)
            }
            fn sync(&self) -> Result<()> {
                self.inner.sync()
            }
        }

        let disk = Arc::new(FlakyRead { inner: MemDisk::new(), fail_next: AtomicBool::new(false) });
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 1);
        let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().payload_mut()[0] = 0x77;
        drop(page);
        p.flush_all().unwrap();
        // Evict pid (clean, no write) by bringing in another page.
        let (_p2, g2) = p.new_page(PageType::BTreeLeaf).unwrap();
        drop(g2);
        disk.fail_next.store(true, Ordering::SeqCst);
        // The single re-read rescues the fetch.
        let page = p.fetch(pid).unwrap();
        assert_eq!(page.read().payload()[0], 0x77);
        assert_eq!(p.io_retry_stats().retries, 1);
    }

    #[test]
    fn obs_snapshot_tracks_hits_misses_and_evictions() {
        let p = pool(2);
        let mut pids = Vec::new();
        for _ in 0..4 {
            let (pid, _g) = p.new_page(PageType::BTreeLeaf).unwrap();
            pids.push(pid);
        }
        p.flush_all().unwrap();
        // pids[3] is resident (hit); pids[0] was evicted (miss + disk read).
        drop(p.fetch(pids[3]).unwrap());
        drop(p.fetch(pids[0]).unwrap());
        let s = p.obs_snapshot();
        assert_eq!(s.counter_value("pool.hits"), Some(1));
        assert_eq!(s.counter_value("pool.misses"), Some(1));
        let scans = s.hist_value("pool.evict_scan").unwrap();
        assert!(scans.count() >= 4, "every victim search recorded");
        let writes = s.hist_value("pool.write_us").unwrap();
        assert!(writes.count() >= 4, "evictions + flush_all recorded writes");
        s.validate().unwrap();
    }

    #[test]
    fn sub_pools_scale_with_capacity_and_preserve_contents() {
        // Small pools keep the single-CLOCK layout; big ones split.
        assert_eq!(pool(8).sub_pool_count(), 1);
        assert_eq!(pool(63).sub_pool_count(), 1);
        assert_eq!(pool(128).sub_pool_count(), 2);
        assert_eq!(pool(4096).sub_pool_count(), 8);

        // A 130-frame pool (2 sub-pools, uneven split 65/65) round-trips
        // pages routed to both sub-pools, reports dirty pages across both,
        // and survives a full-steal crash.
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 130);
        assert_eq!(p.sub_pool_count(), 2);
        let mut pids = Vec::new();
        for i in 0..40u8 {
            let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
            {
                let mut g = page.write();
                g.payload_mut()[0] = i;
                g.set_lsn(Lsn(i as u64 + 1));
            }
            pids.push(pid);
        }
        assert_eq!(p.dirty_pages().len(), 40, "dirty across both sub-pools");
        let mut rng = Rng::new(7);
        p.simulate_crash(1.0, &mut rng).unwrap();
        for (i, pid) in pids.iter().enumerate() {
            let page = p.fetch(*pid).unwrap();
            assert_eq!(page.read().payload()[0], i as u8);
        }
    }

    #[test]
    fn concurrent_fetch_stress() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(disk as Arc<dyn DiskManager>, 8);
        let mut pids = Vec::new();
        for i in 0..32u8 {
            let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
            page.write().payload_mut()[0] = i;
            pids.push(pid);
        }
        p.flush_all().unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&p);
                let pids = pids.clone();
                std::thread::spawn(move || {
                    let mut rng = Rng::new(t as u64);
                    for _ in 0..500 {
                        let i = rng.below(pids.len() as u64) as usize;
                        let page = p.fetch(pids[i]).unwrap();
                        assert_eq!(page.read().payload()[0], i as u8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
