//! Buffer pool: fixed set of frames over a [`DiskManager`].
//!
//! * **steal / no-force** — dirty pages may be evicted before commit and are
//!   not forced at commit; recovery (in `txview-wal`) relies on this.
//! * **WAL-before-data** — before a dirty page image is written, the pool
//!   calls the registered WAL-flush hook with the page's pageLSN.
//! * **CLOCK eviction** with pin counts; per-frame `RwLock<Page>` serves as
//!   the page *latch* (short-term physical consistency), entirely separate
//!   from transaction *locks*.
//! * **crash simulation** — [`BufferPool::simulate_crash`] flushes a random
//!   subset of dirty pages (modelling steal having happened at arbitrary
//!   points) and then forgets everything, leaving the disk in exactly the
//!   kind of inconsistent state ARIES recovery must repair.

use crate::disk::DiskManager;
use crate::fault::CrashProbe;
use crate::page::{Page, PageType};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::Arc;
use txview_common::rng::Rng;
use txview_common::{Error, Lsn, PageId, Result};

/// Hook invoked with a pageLSN just before that page is written to disk.
/// The WAL layer registers `|lsn| log.flush_to(lsn)` here.
pub type WalFlushFn = dyn Fn(Lsn) -> Result<()> + Send + Sync;

struct FrameState {
    pid: Option<PageId>,
    dirty: bool,
    /// ARIES recLSN: a lower bound on the LSN of the first log record that
    /// dirtied this page since it was last flushed (the page's pageLSN at
    /// the clean→dirty transition). Null while clean.
    rec_lsn: Lsn,
    pins: u32,
    refbit: bool,
}

struct PoolState {
    map: HashMap<PageId, usize>,
    frames: Vec<FrameState>,
    hand: usize,
}

/// The buffer pool. Cheap to share: wrap in `Arc`.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    latches: Vec<RwLock<Page>>,
    state: Mutex<PoolState>,
    wal_flush: RwLock<Option<Arc<WalFlushFn>>>,
    crash_probe: RwLock<Option<Arc<CrashProbe>>>,
}

impl BufferPool {
    /// Create a pool with `capacity` frames over `disk`.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Arc<BufferPool> {
        assert!(capacity > 0);
        let latches = (0..capacity)
            .map(|_| RwLock::new(Page::new(PageType::Free)))
            .collect();
        let frames = (0..capacity)
            .map(|_| FrameState { pid: None, dirty: false, rec_lsn: Lsn::NULL, pins: 0, refbit: false })
            .collect();
        Arc::new(BufferPool {
            disk,
            latches,
            state: Mutex::new(PoolState { map: HashMap::new(), frames, hand: 0 }),
            wal_flush: RwLock::new(None),
            crash_probe: RwLock::new(None),
        })
    }

    /// Register the WAL-before-data hook.
    pub fn set_wal_flush(&self, f: Arc<WalFlushFn>) {
        *self.wal_flush.write() = Some(f);
    }

    /// Register a crash-point probe, invoked between "WAL flushed" and
    /// "data page written" on every dirty-page flush (eviction, flush_all,
    /// checkpoint). The torture harness uses this to land crashes inside
    /// the steal/no-force window.
    pub fn set_crash_probe(&self, f: Arc<CrashProbe>) {
        *self.crash_probe.write() = Some(f);
    }

    fn probe(&self, point: &'static str) {
        let hook = self.crash_probe.read().clone();
        if let Some(f) = hook {
            f(point);
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.latches.len()
    }

    fn flush_wal_to(&self, lsn: Lsn) -> Result<()> {
        if lsn.is_null() {
            return Ok(());
        }
        let hook = self.wal_flush.read().clone();
        if let Some(f) = hook {
            f(lsn)?;
        }
        Ok(())
    }

    /// Write one frame's page to disk, honouring WAL-before-data.
    /// Caller holds the state mutex; the frame must be unpinned or the
    /// caller must otherwise guarantee latch availability.
    fn write_frame(&self, idx: usize, st: &mut PoolState) -> Result<()> {
        let pid = st.frames[idx].pid.expect("write_frame on empty frame");
        // Uncontended: pins == 0 or caller owns the only pin and no latch.
        let mut page = self.latches[idx].write();
        self.flush_wal_to(page.lsn())?;
        self.probe("buffer.write_frame.pre_data_write");
        self.disk.write_page(pid, &mut page)?;
        st.frames[idx].dirty = false;
        st.frames[idx].rec_lsn = Lsn::NULL;
        Ok(())
    }

    /// Find a victim frame with CLOCK, flushing it if dirty. Returns the
    /// frame index with its state cleared and pinned once for the caller.
    fn take_victim(&self, st: &mut PoolState, for_pid: PageId) -> Result<usize> {
        let n = st.frames.len();
        // Two full sweeps: first clears refbits, second takes any unpinned.
        for _ in 0..2 * n + 1 {
            let idx = st.hand;
            st.hand = (st.hand + 1) % n;
            let f = &mut st.frames[idx];
            if f.pins > 0 {
                continue;
            }
            if f.refbit {
                f.refbit = false;
                continue;
            }
            // Victim found.
            if f.dirty {
                self.write_frame(idx, st)?;
            }
            let f = &mut st.frames[idx];
            if let Some(old) = f.pid.take() {
                st.map.remove(&old);
            }
            f.dirty = false;
            f.rec_lsn = Lsn::NULL;
            f.pins = 1;
            f.refbit = true;
            f.pid = Some(for_pid);
            st.map.insert(for_pid, idx);
            return Ok(idx);
        }
        Err(Error::BufferExhausted)
    }

    /// Fetch `pid` into the pool, pinning it.
    pub fn fetch(self: &Arc<Self>, pid: PageId) -> Result<PinnedPage> {
        let mut st = self.state.lock();
        if let Some(&idx) = st.map.get(&pid) {
            let f = &mut st.frames[idx];
            f.pins += 1;
            f.refbit = true;
            return Ok(PinnedPage { pool: Arc::clone(self), idx, pid });
        }
        let idx = self.take_victim(&mut st, pid)?;
        // Read from disk while holding the state lock: simple and safe
        // (frame is pinned so nothing else will touch it).
        match self.disk.read_page(pid) {
            Ok(page) => {
                *self.latches[idx].write() = page;
                Ok(PinnedPage { pool: Arc::clone(self), idx, pid })
            }
            Err(e) => {
                // Back out the reservation.
                let f = &mut st.frames[idx];
                f.pid = None;
                f.pins = 0;
                st.map.remove(&pid);
                Err(e)
            }
        }
    }

    /// Allocate a fresh page of type `ty`, pinned and dirty.
    pub fn new_page(self: &Arc<Self>, ty: PageType) -> Result<(PageId, PinnedPage)> {
        let pid = self.disk.allocate()?;
        let mut st = self.state.lock();
        let idx = self.take_victim(&mut st, pid)?;
        st.frames[idx].dirty = true;
        st.frames[idx].rec_lsn = Lsn::NULL;
        *self.latches[idx].write() = Page::new(ty);
        Ok((pid, PinnedPage { pool: Arc::clone(self), idx, pid }))
    }

    /// Re-create page `pid` in the pool with a fresh image (recovery redo of
    /// a page-format record for a page the disk never saw). Pinned + dirty.
    pub fn recreate_page(self: &Arc<Self>, pid: PageId, ty: PageType) -> Result<PinnedPage> {
        self.disk.ensure_allocated(pid);
        let mut st = self.state.lock();
        if let Some(&idx) = st.map.get(&pid) {
            let f = &mut st.frames[idx];
            f.pins += 1;
            f.dirty = true;
            f.rec_lsn = Lsn::NULL;
            *self.latches[idx].write() = Page::new(ty);
            return Ok(PinnedPage { pool: Arc::clone(self), idx, pid });
        }
        let idx = self.take_victim(&mut st, pid)?;
        st.frames[idx].dirty = true;
        st.frames[idx].rec_lsn = Lsn::NULL;
        *self.latches[idx].write() = Page::new(ty);
        Ok(PinnedPage { pool: Arc::clone(self), idx, pid })
    }

    /// Fetch `pid`, creating a fresh image if the disk has never stored it.
    /// Used by recovery redo, where a logged page may have died unflushed.
    pub fn fetch_or_recreate(self: &Arc<Self>, pid: PageId, ty: PageType) -> Result<PinnedPage> {
        match self.fetch(pid) {
            Ok(p) => Ok(p),
            Err(Error::NotFound(_)) | Err(Error::Io(_)) | Err(Error::Corruption(_)) => {
                self.recreate_page(pid, ty)
            }
            Err(e) => Err(e),
        }
    }

    /// Flush a single page if resident and dirty.
    pub fn flush_page(&self, pid: PageId) -> Result<()> {
        let mut st = self.state.lock();
        if let Some(&idx) = st.map.get(&pid) {
            if st.frames[idx].dirty {
                self.write_frame(idx, &mut st)?;
            }
        }
        Ok(())
    }

    /// Flush every dirty resident page (checkpoint helper).
    pub fn flush_all(&self) -> Result<()> {
        let mut st = self.state.lock();
        for idx in 0..st.frames.len() {
            if st.frames[idx].pid.is_some() && st.frames[idx].dirty {
                self.write_frame(idx, &mut st)?;
            }
        }
        self.disk.sync()
    }

    /// (page, recLSN) of currently dirty resident pages — the dirty-page
    /// table a fuzzy checkpoint records. The recLSN is where redo for that
    /// page must start.
    pub fn dirty_pages(&self) -> Vec<(PageId, Lsn)> {
        let st = self.state.lock();
        let mut out = Vec::new();
        for f in st.frames.iter() {
            if let (Some(pid), true) = (f.pid, f.dirty) {
                out.push((pid, f.rec_lsn));
            }
        }
        out
    }

    /// Crash simulation: flush each dirty page with probability
    /// `steal_probability` (modelling evictions that already happened),
    /// then forget all frames. Requires no outstanding pins.
    pub fn simulate_crash(&self, steal_probability: f64, rng: &mut Rng) -> Result<()> {
        let mut st = self.state.lock();
        for idx in 0..st.frames.len() {
            let f = &st.frames[idx];
            assert_eq!(f.pins, 0, "simulate_crash with pinned pages");
            if f.pid.is_some() && f.dirty && rng.chance(steal_probability) {
                self.write_frame(idx, &mut st)?;
            }
        }
        for f in st.frames.iter_mut() {
            f.pid = None;
            f.dirty = false;
            f.rec_lsn = Lsn::NULL;
            f.refbit = false;
        }
        st.map.clear();
        Ok(())
    }
}

/// Read latch guard.
pub type PageReadGuard<'a> = RwLockReadGuard<'a, Page>;
/// Write latch guard.
pub type PageWriteGuard<'a> = RwLockWriteGuard<'a, Page>;

/// A pinned page. Dropping unpins. `read()`/`write()` take the page latch.
pub struct PinnedPage {
    pool: Arc<BufferPool>,
    idx: usize,
    pid: PageId,
}

impl PinnedPage {
    /// The page id.
    pub fn id(&self) -> PageId {
        self.pid
    }

    /// Take the shared (read) latch.
    pub fn read(&self) -> PageReadGuard<'_> {
        self.pool.latches[self.idx].read()
    }

    /// Take the exclusive (write) latch and mark the frame dirty, recording
    /// the recLSN (the pageLSN before this modification) at the clean→dirty
    /// transition. Latch-then-state order is safe: state→latch paths only
    /// touch unpinned frames, and this frame is pinned.
    pub fn write(&self) -> PageWriteGuard<'_> {
        let guard = self.pool.latches[self.idx].write();
        {
            let mut st = self.pool.state.lock();
            let f = &mut st.frames[self.idx];
            if !f.dirty {
                f.dirty = true;
                f.rec_lsn = guard.lsn();
            }
        }
        guard
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock();
        let f = &mut st.frames[self.idx];
        debug_assert!(f.pins > 0);
        f.pins -= 1;
    }
}

impl Clone for PinnedPage {
    fn clone(&self) -> Self {
        let mut st = self.pool.state.lock();
        st.frames[self.idx].pins += 1;
        PinnedPage { pool: Arc::clone(&self.pool), idx: self.idx, pid: self.pid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pool(cap: usize) -> Arc<BufferPool> {
        BufferPool::new(Arc::new(MemDisk::new()), cap)
    }

    #[test]
    fn new_page_fetch_roundtrip() {
        let p = pool(4);
        let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().payload_mut()[0] = 0x5A;
        drop(page);
        let again = p.fetch(pid).unwrap();
        assert_eq!(again.read().payload()[0], 0x5A);
    }

    #[test]
    fn eviction_and_reload() {
        let p = pool(2);
        let mut pids = Vec::new();
        for i in 0..5u8 {
            let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
            page.write().payload_mut()[0] = i;
            pids.push(pid);
        }
        // All five pages must still be readable (three were evicted).
        for (i, pid) in pids.iter().enumerate() {
            let page = p.fetch(*pid).unwrap();
            assert_eq!(page.read().payload()[0], i as u8);
        }
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let (pid_a, a) = p.new_page(PageType::BTreeLeaf).unwrap();
        let (_pid_b, b) = p.new_page(PageType::BTreeLeaf).unwrap();
        // Both frames pinned: a third page cannot enter.
        assert!(matches!(p.new_page(PageType::BTreeLeaf), Err(Error::BufferExhausted)));
        drop(b);
        // Now one frame is evictable.
        let (_pid_c, _c) = p.new_page(PageType::BTreeLeaf).unwrap();
        // `a` is still resident and correct.
        assert_eq!(p.fetch(pid_a).unwrap().id(), a.id());
    }

    #[test]
    fn wal_hook_called_before_dirty_write() {
        let p = pool(1);
        let called = Arc::new(AtomicU64::new(u64::MAX));
        let c2 = Arc::clone(&called);
        p.set_wal_flush(Arc::new(move |lsn| {
            c2.store(lsn.0, Ordering::SeqCst);
            Ok(())
        }));
        let (_pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().set_lsn(Lsn(99));
        drop(page);
        // Force eviction by allocating another page into the single frame.
        let (_pid2, _page2) = p.new_page(PageType::BTreeLeaf).unwrap();
        assert_eq!(called.load(Ordering::SeqCst), 99);
    }

    #[test]
    fn flush_all_clears_dirty_set() {
        let p = pool(4);
        let (_p1, g1) = p.new_page(PageType::BTreeLeaf).unwrap();
        g1.write().set_lsn(Lsn(1));
        drop(g1);
        assert_eq!(p.dirty_pages().len(), 1);
        p.flush_all().unwrap();
        assert!(p.dirty_pages().is_empty());
    }

    #[test]
    fn simulate_crash_loses_unflushed_writes() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 4);
        let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().payload_mut()[0] = 7;
        drop(page);
        let mut rng = Rng::new(1);
        p.simulate_crash(0.0, &mut rng).unwrap(); // steal probability 0: nothing flushed
        // Disk never saw the page.
        assert!(disk.read_page(pid).is_err());
        // And recovery-style access recreates a fresh image.
        let page = p.fetch_or_recreate(pid, PageType::BTreeLeaf).unwrap();
        assert_eq!(page.read().payload()[0], 0);
    }

    #[test]
    fn simulate_crash_with_full_steal_preserves_writes() {
        let p = pool(4);
        let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        page.write().payload_mut()[0] = 7;
        drop(page);
        let mut rng = Rng::new(1);
        p.simulate_crash(1.0, &mut rng).unwrap();
        let page = p.fetch(pid).unwrap();
        assert_eq!(page.read().payload()[0], 7);
    }

    #[test]
    fn clone_pin_keeps_frame() {
        let p = pool(1);
        let (_pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
        let second = page.clone();
        drop(page);
        // Still pinned by `second`, so a new page cannot take the frame.
        assert!(p.new_page(PageType::BTreeLeaf).is_err());
        drop(second);
        assert!(p.new_page(PageType::BTreeLeaf).is_ok());
    }

    #[test]
    fn concurrent_fetch_stress() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(disk as Arc<dyn DiskManager>, 8);
        let mut pids = Vec::new();
        for i in 0..32u8 {
            let (pid, page) = p.new_page(PageType::BTreeLeaf).unwrap();
            page.write().payload_mut()[0] = i;
            pids.push(pid);
        }
        p.flush_all().unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&p);
                let pids = pids.clone();
                std::thread::spawn(move || {
                    let mut rng = Rng::new(t as u64);
                    for _ in 0..500 {
                        let i = rng.below(pids.len() as u64) as usize;
                        let page = p.fetch(pids[i]).unwrap();
                        assert_eq!(page.read().payload()[0], i as u8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
