//! # txview-storage
//!
//! Page-based storage substrate:
//!
//! * [`page`] — the 8 KiB page frame with header (type, pageLSN, checksum),
//! * [`slotted`] — the slotted-page record layout used by B-tree nodes and
//!   the catalog,
//! * [`disk`] — a file-backed disk manager (page read/write/allocate) with a
//!   superblock, plus an in-memory variant for tests,
//! * [`buffer`] — a steal/no-force buffer pool with CLOCK eviction, pin
//!   counting, per-frame latches, and a WAL-before-data hook.
//!
//! Responsibilities are split exactly the way the reproduced paper assumes:
//! this crate provides *physical* consistency (latches, checksums); *logical*
//! consistency (locks, transactions) lives in `txview-lock` / `txview-txn`.

pub mod buffer;
pub mod disk;
pub mod fault;
pub mod page;
pub mod slotted;

pub use buffer::{BufferPool, PageReadGuard, PageWriteGuard};
pub use disk::{DiskManager, FileDisk, MemDisk};
pub use fault::{
    CrashProbe, FaultClock, FaultDecision, FaultDisk, FaultKind, FaultPoint, FaultSchedule,
    FaultStatsSnapshot,
};
pub use page::{Page, PageType, PAGE_SIZE, PAGE_HEADER_SIZE, PAGE_PAYLOAD_SIZE};
pub use slotted::{Slotted, SlottedRef};
