//! Disk managers: where page images live when evicted or flushed.
//!
//! [`FileDisk`] is the real thing (one file, page-granular pread/pwrite).
//! [`MemDisk`] backs unit tests and the crash simulator — it survives a
//! simulated crash (buffer-pool amnesia) exactly like a file would, without
//! touching the filesystem.

use crate::page::{Page, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use txview_common::{Error, PageId, Result};

/// Abstract page store.
pub trait DiskManager: Send + Sync {
    /// Read the page image for `pid`.
    fn read_page(&self, pid: PageId) -> Result<Page>;
    /// Durably store the page image for `pid` (seals the checksum).
    fn write_page(&self, pid: PageId, page: &mut Page) -> Result<()>;
    /// Allocate a fresh page id (the image is all-zero until first write).
    fn allocate(&self) -> Result<PageId>;
    /// Number of pages ever allocated.
    fn num_pages(&self) -> u32;
    /// Make sure `pid` is addressable even if this store never saw an
    /// allocate() for it (recovery re-creating pages after a crash).
    fn ensure_allocated(&self, pid: PageId);
    /// Flush OS buffers (no-op for memory).
    fn sync(&self) -> Result<()>;
}

/// File-backed disk manager.
pub struct FileDisk {
    file: Mutex<File>,
    next_page: AtomicU32,
}

impl FileDisk {
    /// Open (or create) the database file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(Error::corruption(format!(
                "database file length {len} is not page-aligned"
            )));
        }
        Ok(FileDisk {
            file: Mutex::new(file),
            next_page: AtomicU32::new((len / PAGE_SIZE as u64) as u32),
        })
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, pid: PageId) -> Result<Page> {
        let mut buf = [0u8; PAGE_SIZE];
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pid.0 as u64 * PAGE_SIZE as u64))?;
        f.read_exact(&mut buf)?;
        Page::from_disk(buf)
    }

    fn write_page(&self, pid: PageId, page: &mut Page) -> Result<()> {
        let img = *page.to_disk();
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pid.0 as u64 * PAGE_SIZE as u64))?;
        f.write_all(&img)?;
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let pid = self.next_page.fetch_add(1, Ordering::SeqCst);
        if pid == u32::MAX {
            return Err(Error::invalid("page id space exhausted"));
        }
        Ok(PageId(pid))
    }

    fn num_pages(&self) -> u32 {
        self.next_page.load(Ordering::SeqCst)
    }

    fn ensure_allocated(&self, pid: PageId) {
        self.next_page.fetch_max(pid.0 + 1, Ordering::SeqCst);
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

/// In-memory disk manager for tests and crash simulation.
#[derive(Default)]
pub struct MemDisk {
    pages: Mutex<Vec<Option<Box<[u8; PAGE_SIZE]>>>>,
}

impl MemDisk {
    /// New empty in-memory store.
    pub fn new() -> MemDisk {
        MemDisk::default()
    }
}

impl DiskManager for MemDisk {
    fn read_page(&self, pid: PageId) -> Result<Page> {
        let pages = self.pages.lock();
        match pages.get(pid.0 as usize) {
            Some(Some(img)) => Page::from_disk(**img),
            _ => Err(Error::NotFound(format!("{pid:?} never written"))),
        }
    }

    fn write_page(&self, pid: PageId, page: &mut Page) -> Result<()> {
        let img = Box::new(*page.to_disk());
        let mut pages = self.pages.lock();
        let idx = pid.0 as usize;
        if pages.len() <= idx {
            pages.resize_with(idx + 1, || None);
        }
        pages[idx] = Some(img);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        let pid = PageId(pages.len() as u32);
        pages.push(None);
        Ok(pid)
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn ensure_allocated(&self, pid: PageId) {
        let mut pages = self.pages.lock();
        if pages.len() <= pid.0 as usize {
            pages.resize_with(pid.0 as usize + 1, || None);
        }
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn exercise(disk: &dyn DiskManager) {
        let pid = disk.allocate().unwrap();
        let mut p = Page::new(PageType::BTreeLeaf);
        p.payload_mut()[0] = 0xAB;
        disk.write_page(pid, &mut p).unwrap();
        let back = disk.read_page(pid).unwrap();
        assert_eq!(back.payload()[0], 0xAB);
        assert_eq!(back.page_type().unwrap(), PageType::BTreeLeaf);
    }

    #[test]
    fn memdisk_roundtrip() {
        exercise(&MemDisk::new());
    }

    #[test]
    fn memdisk_unwritten_page_is_not_found() {
        let d = MemDisk::new();
        let pid = d.allocate().unwrap();
        assert!(d.read_page(pid).is_err());
    }

    #[test]
    fn filedisk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("txview-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        let _ = std::fs::remove_file(&path);
        {
            let d = FileDisk::open(&path).unwrap();
            exercise(&d);
            d.sync().unwrap();
            assert_eq!(d.num_pages(), 1);
        }
        {
            // Reopen: allocation counter derives from file length.
            let d = FileDisk::open(&path).unwrap();
            assert_eq!(d.num_pages(), 1);
            let back = d.read_page(PageId(0)).unwrap();
            assert_eq!(back.payload()[0], 0xAB);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ensure_allocated_extends_id_space() {
        let d = MemDisk::new();
        d.ensure_allocated(PageId(5));
        assert_eq!(d.num_pages(), 6);
        let next = d.allocate().unwrap();
        assert_eq!(next, PageId(6));
    }

    #[test]
    fn allocation_is_sequential() {
        let d = MemDisk::new();
        assert_eq!(d.allocate().unwrap(), PageId(0));
        assert_eq!(d.allocate().unwrap(), PageId(1));
        assert_eq!(d.allocate().unwrap(), PageId(2));
    }
}
