//! Slotted record layout inside a page payload.
//!
//! The directory grows from the front of the payload, the record heap grows
//! from the back. Slots are *positional*: B-tree nodes keep them sorted by
//! key, so insertion shifts the directory. Deleted record space is tracked
//! as garbage and reclaimed by an in-place compaction when an insert would
//! otherwise fail.
//!
//! ```text
//! payload: [ nslots:u16 | heap_start:u16 | garbage:u16 | dir... ->   <- heap ]
//! slot:    [ offset:u16 | len:u16 ]   (offsets are payload-relative)
//! ```

use txview_common::{Error, Result};

const OFF_NSLOTS: usize = 0;
const OFF_HEAP_START: usize = 2;
const OFF_GARBAGE: usize = 4;
const DIR_START: usize = 6;
const SLOT_SIZE: usize = 4;

/// A view over a page payload interpreted as a slotted record area.
pub struct Slotted<'a> {
    buf: &'a mut [u8],
}

impl<'a> Slotted<'a> {
    /// Interpret an already-formatted payload.
    pub fn wrap(buf: &'a mut [u8]) -> Slotted<'a> {
        Slotted { buf }
    }

    /// Format a payload as an empty slotted area and return the view.
    pub fn format(buf: &'a mut [u8]) -> Slotted<'a> {
        let len = buf.len();
        let mut s = Slotted { buf };
        s.set_nslots(0);
        s.set_heap_start(len as u16);
        s.set_garbage(0);
        s
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.buf[off..off + 2].try_into().unwrap())
    }

    fn set_u16_at(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of live slots.
    pub fn count(&self) -> usize {
        self.u16_at(OFF_NSLOTS) as usize
    }

    fn set_nslots(&mut self, n: usize) {
        self.set_u16_at(OFF_NSLOTS, n as u16);
    }

    fn heap_start(&self) -> usize {
        self.u16_at(OFF_HEAP_START) as usize
    }

    fn set_heap_start(&mut self, v: u16) {
        self.set_u16_at(OFF_HEAP_START, v);
    }

    fn garbage(&self) -> usize {
        self.u16_at(OFF_GARBAGE) as usize
    }

    fn set_garbage(&mut self, v: u16) {
        self.set_u16_at(OFF_GARBAGE, v);
    }

    fn dir_end(&self) -> usize {
        DIR_START + self.count() * SLOT_SIZE
    }

    fn slot(&self, idx: usize) -> (usize, usize) {
        let base = DIR_START + idx * SLOT_SIZE;
        (self.u16_at(base) as usize, self.u16_at(base + 2) as usize)
    }

    fn set_slot(&mut self, idx: usize, off: usize, len: usize) {
        let base = DIR_START + idx * SLOT_SIZE;
        self.set_u16_at(base, off as u16);
        self.set_u16_at(base + 2, len as u16);
    }

    /// Bytes immediately insertable without compaction.
    pub fn contiguous_free(&self) -> usize {
        self.heap_start() - self.dir_end()
    }

    /// Bytes insertable after compaction (what callers should budget with).
    pub fn free_space(&self) -> usize {
        self.contiguous_free() + self.garbage()
    }

    /// Largest record insertable into an *empty* area of this payload size.
    pub fn capacity_for(payload_len: usize) -> usize {
        payload_len - DIR_START - SLOT_SIZE
    }

    /// Read the record in slot `idx`.
    pub fn get(&self, idx: usize) -> &[u8] {
        debug_assert!(idx < self.count(), "slot {idx} out of {}", self.count());
        let (off, len) = self.slot(idx);
        &self.buf[off..off + len]
    }

    /// Mutable view of the record in slot `idx` (for in-place patches such
    /// as escrow increments and ghost-bit flips; the length cannot change).
    pub fn get_mut(&mut self, idx: usize) -> &mut [u8] {
        debug_assert!(idx < self.count());
        let (off, len) = self.slot(idx);
        &mut self.buf[off..off + len]
    }

    /// Insert `data` as a new slot at position `idx`, shifting the directory.
    pub fn insert_at(&mut self, idx: usize, data: &[u8]) -> Result<()> {
        let n = self.count();
        assert!(idx <= n, "insert position {idx} out of {n}");
        let need = data.len() + SLOT_SIZE;
        if self.contiguous_free() < need {
            if self.free_space() < need {
                return Err(Error::RecordTooLarge {
                    size: data.len(),
                    max: self.free_space().saturating_sub(SLOT_SIZE),
                });
            }
            self.compact();
        }
        // Claim heap space.
        let off = self.heap_start() - data.len();
        self.buf[off..off + data.len()].copy_from_slice(data);
        self.set_heap_start(off as u16);
        // Shift directory entries [idx..n) right by one slot.
        let src = DIR_START + idx * SLOT_SIZE;
        let end = DIR_START + n * SLOT_SIZE;
        self.buf.copy_within(src..end, src + SLOT_SIZE);
        self.set_nslots(n + 1);
        self.set_slot(idx, off, data.len());
        Ok(())
    }

    /// Remove slot `idx`, shifting the directory left; the record bytes
    /// become garbage.
    pub fn remove_at(&mut self, idx: usize) {
        let n = self.count();
        assert!(idx < n);
        let (_, len) = self.slot(idx);
        let src = DIR_START + (idx + 1) * SLOT_SIZE;
        let end = DIR_START + n * SLOT_SIZE;
        self.buf.copy_within(src..end, src - SLOT_SIZE);
        self.set_nslots(n - 1);
        self.set_garbage((self.garbage() + len) as u16);
    }

    /// Replace the record in slot `idx`. Shrinks in place; growth re-inserts
    /// into the heap (possibly after compaction).
    pub fn update_at(&mut self, idx: usize, data: &[u8]) -> Result<()> {
        let (off, len) = self.slot(idx);
        if data.len() <= len {
            self.buf[off..off + data.len()].copy_from_slice(data);
            self.set_slot(idx, off, data.len());
            self.set_garbage((self.garbage() + len - data.len()) as u16);
            return Ok(());
        }
        // Grow: need heap space for the new copy; old bytes become garbage.
        if self.contiguous_free() < data.len() {
            if self.free_space() + len < data.len() {
                return Err(Error::RecordTooLarge { size: data.len(), max: self.free_space() + len });
            }
            // Temporarily drop the old record so compaction reclaims it.
            self.set_slot(idx, 0, 0);
            self.set_garbage((self.garbage() + len) as u16);
            self.compact();
            if self.contiguous_free() < data.len() {
                return Err(Error::RecordTooLarge { size: data.len(), max: self.contiguous_free() });
            }
        } else {
            self.set_garbage((self.garbage() + len) as u16);
        }
        let off = self.heap_start() - data.len();
        self.buf[off..off + data.len()].copy_from_slice(data);
        self.set_heap_start(off as u16);
        self.set_slot(idx, off, data.len());
        Ok(())
    }

    /// Rewrite the heap, squeezing out garbage. Slot order is preserved.
    pub fn compact(&mut self) {
        let n = self.count();
        let mut records: Vec<(usize, Vec<u8>)> = Vec::with_capacity(n);
        for i in 0..n {
            let (off, len) = self.slot(i);
            records.push((i, self.buf[off..off + len].to_vec()));
        }
        let mut heap = self.buf.len();
        for (i, data) in records {
            heap -= data.len();
            self.buf[heap..heap + data.len()].copy_from_slice(&data);
            self.set_slot(i, heap, data.len());
        }
        self.set_heap_start(heap as u16);
        self.set_garbage(0);
    }
}

/// Read-only view over a slotted payload (for shared page latches).
pub struct SlottedRef<'a> {
    buf: &'a [u8],
}

impl<'a> SlottedRef<'a> {
    /// Interpret an already-formatted payload read-only.
    pub fn wrap(buf: &'a [u8]) -> SlottedRef<'a> {
        SlottedRef { buf }
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.buf[off..off + 2].try_into().unwrap())
    }

    /// Number of live slots.
    pub fn count(&self) -> usize {
        self.u16_at(OFF_NSLOTS) as usize
    }

    /// Bytes insertable after compaction.
    pub fn free_space(&self) -> usize {
        let heap_start = self.u16_at(OFF_HEAP_START) as usize;
        let garbage = self.u16_at(OFF_GARBAGE) as usize;
        let dir_end = DIR_START + self.count() * SLOT_SIZE;
        heap_start - dir_end + garbage
    }

    /// Read the record in slot `idx`.
    pub fn get(&self, idx: usize) -> &'a [u8] {
        debug_assert!(idx < self.count());
        let base = DIR_START + idx * SLOT_SIZE;
        let off = self.u16_at(base) as usize;
        let len = self.u16_at(base + 2) as usize;
        &self.buf[off..off + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fresh(buf: &mut [u8]) -> Slotted<'_> {
        Slotted::format(buf)
    }

    #[test]
    fn insert_get_in_order() {
        let mut buf = vec![0u8; 256];
        let mut s = fresh(&mut buf);
        s.insert_at(0, b"bb").unwrap();
        s.insert_at(0, b"aa").unwrap();
        s.insert_at(2, b"cc").unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(s.get(0), b"aa");
        assert_eq!(s.get(1), b"bb");
        assert_eq!(s.get(2), b"cc");
    }

    #[test]
    fn remove_shifts_directory() {
        let mut buf = vec![0u8; 256];
        let mut s = fresh(&mut buf);
        for (i, r) in [b"r0", b"r1", b"r2"].iter().enumerate() {
            s.insert_at(i, *r).unwrap();
        }
        s.remove_at(1);
        assert_eq!(s.count(), 2);
        assert_eq!(s.get(0), b"r0");
        assert_eq!(s.get(1), b"r2");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut buf = vec![0u8; 128];
        let mut s = fresh(&mut buf);
        s.insert_at(0, b"hello").unwrap();
        s.update_at(0, b"hi").unwrap(); // shrink
        assert_eq!(s.get(0), b"hi");
        s.update_at(0, b"a-much-longer-record").unwrap(); // grow
        assert_eq!(s.get(0), b"a-much-longer-record");
    }

    #[test]
    fn full_page_rejected_cleanly() {
        let mut buf = vec![0u8; 64];
        let mut s = fresh(&mut buf);
        s.insert_at(0, &[7u8; 40]).unwrap();
        let err = s.insert_at(1, &[8u8; 40]).unwrap_err();
        assert!(matches!(err, Error::RecordTooLarge { .. }));
        // Original record intact.
        assert_eq!(s.get(0), &[7u8; 40][..]);
    }

    #[test]
    fn compaction_reclaims_garbage() {
        let mut buf = vec![0u8; 128];
        let mut s = fresh(&mut buf);
        s.insert_at(0, &[1u8; 30]).unwrap();
        s.insert_at(1, &[2u8; 30]).unwrap();
        s.insert_at(2, &[3u8; 30]).unwrap();
        s.remove_at(1);
        // Contiguous space is small, but garbage makes this fit.
        s.insert_at(2, &[4u8; 40]).unwrap();
        assert_eq!(s.get(0), &[1u8; 30][..]);
        assert_eq!(s.get(1), &[3u8; 30][..]);
        assert_eq!(s.get(2), &[4u8; 40][..]);
    }

    #[test]
    fn get_mut_patches_in_place() {
        let mut buf = vec![0u8; 128];
        let mut s = fresh(&mut buf);
        s.insert_at(0, b"abcd").unwrap();
        s.get_mut(0)[1] = b'X';
        assert_eq!(s.get(0), b"aXcd");
    }

    proptest! {
        /// Random interleavings of inserts/removes/updates behave like a
        /// reference Vec<Vec<u8>> model.
        #[test]
        fn model_based(ops in proptest::collection::vec(
            (0u8..4, proptest::collection::vec(any::<u8>(), 0..40), 0usize..8),
            1..60
        )) {
            let mut buf = vec![0u8; 1024];
            let mut s = Slotted::format(&mut buf);
            let mut model: Vec<Vec<u8>> = Vec::new();
            for (op, data, pos) in ops {
                match op {
                    0 => { // insert
                        let idx = pos.min(model.len());
                        if s.insert_at(idx, &data).is_ok() {
                            model.insert(idx, data);
                        }
                    }
                    1 => { // remove
                        if !model.is_empty() {
                            let idx = pos % model.len();
                            s.remove_at(idx);
                            model.remove(idx);
                        }
                    }
                    2 => { // update
                        if !model.is_empty() {
                            let idx = pos % model.len();
                            if s.update_at(idx, &data).is_ok() {
                                model[idx] = data;
                            }
                        }
                    }
                    _ => { s.compact(); }
                }
                prop_assert_eq!(s.count(), model.len());
                for (i, rec) in model.iter().enumerate() {
                    prop_assert_eq!(s.get(i), &rec[..]);
                }
            }
        }
    }
}
