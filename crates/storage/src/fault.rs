//! Deterministic fault injection: a shared event clock, a seeded fault
//! schedule, and a [`FaultDisk`] page store that can tear writes, return
//! transient I/O errors, and take a hard crash.
//!
//! The model: every durable mutation (disk page write, log append, log
//! sync, master-pointer update) and every named crash-point probe *ticks*
//! the shared [`FaultClock`]. The schedule maps event numbers to faults.
//! A `Crash` fault fires the clock; from that moment each fault-aware
//! store snapshots its state lazily — the first mutation after the crash
//! point freezes the pre-mutation image, and everything applied afterwards
//! lands only in the doomed live state. `crash_restore()` swaps the frozen
//! durable image back, exactly like a machine rebooting onto what had
//! actually reached stable storage.
//!
//! Because the workload drivers are single-threaded and the schedule is a
//! pure function of its seed, the same seed always produces the same event
//! sequence, the same fault at the same operation, and the same post-crash
//! durable image.

use crate::page::{Page, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use txview_common::rng::Rng;
use txview_common::{Error, PageId, Result};

/// Crash-point hook: components call this with a static point name just
/// before a durability-ordering-sensitive step (e.g. between "WAL flushed"
/// and "data page written"). The torture harness installs a hook that
/// ticks the [`FaultClock`] so crashes can land exactly at these seams.
pub type CrashProbe = dyn Fn(&'static str) + Send + Sync;

/// What kind of operation is ticking the clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// A data page write reaching the disk manager.
    DiskWrite,
    /// Bytes appended to the durable log.
    LogAppend,
    /// A log sync (group-flush fsync).
    LogSync,
    /// The master checkpoint pointer being persisted.
    MasterWrite,
    /// A named crash-point probe (no durable mutation of its own).
    Probe(&'static str),
}

/// A scheduled fault, keyed by event number in [`FaultSchedule`].
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub enum FaultKind {
    /// Hard crash: freeze the durable image before this event's mutation;
    /// everything from here on is discarded by `crash_restore()`.
    Crash,
    /// Tear this write: only part of it reaches the durable image (pages
    /// keep a garbled second half the checksum must catch; log appends
    /// keep a prefix, the torn tail recovery must stop at).
    TornWrite,
    /// Fail this operation with a transient I/O error, leaving state
    /// untouched. The caller may retry.
    Transient,
    /// Enter persistent-failure mode: this operation and *every* later
    /// durable mutation fails with a transient-classified I/O error until
    /// [`FaultClock::heal`] is called. Models a device outage that outlasts
    /// any bounded retry budget.
    Persistent,
}

/// An explicit fault schedule: (event offset, fault) pairs. Offsets are
/// relative to the event counter at [`FaultClock::arm`] time, so a
/// schedule describes "the Nth durable operation from now".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Scheduled faults by relative event number.
    pub faults: Vec<(u64, FaultKind)>,
}

impl FaultSchedule {
    /// Empty schedule (no faults).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Crash at the `n`th event from now.
    pub fn crash_at(n: u64) -> FaultSchedule {
        FaultSchedule { faults: vec![(n, FaultKind::Crash)] }
    }

    /// Seeded random schedule over the next `horizon` events: a handful of
    /// transient errors, possibly one torn write, and one crash. A pure
    /// function of its arguments — the same seed yields the same schedule.
    pub fn random(seed: u64, horizon: u64) -> FaultSchedule {
        let mut rng = Rng::new(seed);
        let horizon = horizon.max(2);
        let mut faults = Vec::new();
        let transients = rng.below(3);
        for _ in 0..transients {
            faults.push((rng.below(horizon), FaultKind::Transient));
        }
        if rng.chance(0.25) {
            faults.push((rng.below(horizon), FaultKind::TornWrite));
        }
        let crash = rng.below(horizon);
        // The crash shadows anything scheduled later (it never runs).
        faults.retain(|&(n, _)| n < crash);
        faults.push((crash, FaultKind::Crash));
        faults.sort_by_key(|&(n, _)| n);
        faults.dedup_by_key(|&mut (n, _)| n);
        FaultSchedule { faults }
    }

    /// Seeded transient-only *storm*: bursts of consecutive transient
    /// faults plus scattered singles over the next `horizon` events, and no
    /// crash. Consecutive runs are capped at 3 events so a 5-attempt retry
    /// budget always clears a burst — storms are meant to be absorbed, not
    /// to exhaust the retry layer. Pure function of its arguments.
    pub fn storm(seed: u64, horizon: u64) -> FaultSchedule {
        let mut rng = Rng::new(seed ^ 0x5702_12_5702_12_57);
        let horizon = horizon.max(8);
        let mut events = std::collections::BTreeSet::new();
        let bursts = 2 + rng.below(4);
        for _ in 0..bursts {
            let start = rng.below(horizon);
            let len = 1 + rng.below(3);
            for i in 0..len {
                events.insert((start + i).min(horizon - 1));
            }
        }
        for _ in 0..rng.below(6) {
            events.insert(rng.below(horizon));
        }
        // Cap consecutive-event runs at 3: merged bursts could otherwise
        // form a run longer than the default retry budget.
        let mut faults = Vec::new();
        let mut run = 0u32;
        let mut prev: Option<u64> = None;
        for &e in &events {
            run = if prev == Some(e.wrapping_sub(1)) { run + 1 } else { 1 };
            if run <= 3 {
                faults.push((e, FaultKind::Transient));
            }
            prev = Some(e);
        }
        FaultSchedule { faults }
    }

    /// Persistent device outage starting at the `n`th event from now.
    pub fn persistent_at(n: u64) -> FaultSchedule {
        FaultSchedule { faults: vec![(n, FaultKind::Persistent)] }
    }

    /// True when the schedule injects only transient faults (no crash, no
    /// torn write, no persistent outage) — the class the retry layer must
    /// make semantically invisible.
    pub fn is_transient_only(&self) -> bool {
        self.faults.iter().all(|(_, k)| *k == FaultKind::Transient)
    }
}

/// Counter snapshot for experiment reporting (same pattern as
/// `LockStatsSnapshot`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStatsSnapshot {
    /// Total clock ticks (durable mutations + probes).
    pub events: u64,
    /// Data page writes observed.
    pub disk_writes: u64,
    /// Data page reads observed (not ticked; durability-neutral).
    pub disk_reads: u64,
    /// Log appends observed.
    pub log_appends: u64,
    /// Log syncs observed.
    pub log_syncs: u64,
    /// Master-pointer writes observed.
    pub master_writes: u64,
    /// Named probe ticks observed.
    pub probes: u64,
    /// Transient I/O errors injected.
    pub transient_faults: u64,
    /// Failures injected by persistent-outage mode.
    pub persistent_faults: u64,
    /// Is the persistent outage still active (not yet healed)?
    pub persistent_active: bool,
    /// Writes torn.
    pub torn_writes: u64,
    /// Did the armed crash fire?
    pub crash_fired: bool,
    /// Absolute event number the crash fired at, if it did.
    pub crash_event: Option<u64>,
}

/// The shared fault clock: one per torture episode, cloned (via `Arc`)
/// into every fault-aware store and probe hook.
pub struct FaultClock {
    events: Arc<AtomicU64>,
    fired: AtomicBool,
    persistent: AtomicBool,
    crash_event: Mutex<Option<u64>>,
    schedule: Mutex<HashMap<u64, FaultKind>>,
    disk_writes: AtomicU64,
    disk_reads: AtomicU64,
    log_appends: AtomicU64,
    log_syncs: AtomicU64,
    master_writes: AtomicU64,
    probes: AtomicU64,
    transient_faults: AtomicU64,
    persistent_faults: AtomicU64,
    torn_writes: AtomicU64,
}

/// What the ticking operation must do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Apply the operation normally.
    Proceed,
    /// Fail with a transient I/O error without applying.
    TransientError,
    /// Apply a torn version of the write.
    Tear,
}

impl FaultClock {
    /// New clock with an empty schedule.
    pub fn new() -> Arc<FaultClock> {
        Arc::new(FaultClock {
            events: Arc::new(AtomicU64::new(0)),
            fired: AtomicBool::new(false),
            persistent: AtomicBool::new(false),
            crash_event: Mutex::new(None),
            schedule: Mutex::new(HashMap::new()),
            disk_writes: AtomicU64::new(0),
            disk_reads: AtomicU64::new(0),
            log_appends: AtomicU64::new(0),
            log_syncs: AtomicU64::new(0),
            master_writes: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            transient_faults: AtomicU64::new(0),
            persistent_faults: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
        })
    }

    /// Arm `schedule` relative to the current event count (so offset 0 is
    /// the very next durable operation).
    pub fn arm(&self, schedule: &FaultSchedule) {
        let base = self.events.load(Ordering::SeqCst);
        let mut map = self.schedule.lock();
        for &(n, kind) in &schedule.faults {
            map.insert(base + n, kind);
        }
    }

    /// Clear any remaining schedule, the fired flag, and any persistent
    /// outage, so recovery can run fault-free over the same stores.
    /// Counters are retained.
    pub fn disarm(&self) {
        self.schedule.lock().clear();
        self.fired.store(false, Ordering::SeqCst);
        self.persistent.store(false, Ordering::SeqCst);
    }

    /// End a persistent outage: durable mutations succeed again. The
    /// torture harness calls this to model the device coming back before
    /// the engine's self-heal probe runs.
    pub fn heal(&self) {
        self.persistent.store(false, Ordering::SeqCst);
    }

    /// Is a persistent outage currently active?
    pub fn persistent_active(&self) -> bool {
        self.persistent.load(Ordering::SeqCst)
    }

    /// Has the armed crash fired?
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Total events ticked so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    /// Shared handle on the event counter. Deterministic runs hand this to
    /// every layer's [`txview_common::obs::ObsClock`] so recorded "durations"
    /// are event-count deltas — identical across identically-seeded runs —
    /// instead of wall time.
    pub fn events_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.events)
    }

    /// Record a durability-neutral page read (not a clock tick).
    pub fn note_disk_read(&self) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Tick the clock for `point` and learn this operation's fate.
    pub fn tick(&self, point: FaultPoint) -> FaultDecision {
        let n = self.events.fetch_add(1, Ordering::SeqCst);
        match point {
            FaultPoint::DiskWrite => self.disk_writes.fetch_add(1, Ordering::Relaxed),
            FaultPoint::LogAppend => self.log_appends.fetch_add(1, Ordering::Relaxed),
            FaultPoint::LogSync => self.log_syncs.fetch_add(1, Ordering::Relaxed),
            FaultPoint::MasterWrite => self.master_writes.fetch_add(1, Ordering::Relaxed),
            FaultPoint::Probe(_) => self.probes.fetch_add(1, Ordering::Relaxed),
        };
        if self.fired.load(Ordering::SeqCst) {
            // Post-crash: the doomed image keeps absorbing writes until
            // the harness restores; no further faults fire.
            return FaultDecision::Proceed;
        }
        if self.persistent.load(Ordering::SeqCst) && !matches!(point, FaultPoint::Probe(_)) {
            self.persistent_faults.fetch_add(1, Ordering::Relaxed);
            return FaultDecision::TransientError;
        }
        match self.schedule.lock().remove(&n) {
            Some(FaultKind::Crash) => {
                self.fired.store(true, Ordering::SeqCst);
                *self.crash_event.lock() = Some(n);
                FaultDecision::Proceed
            }
            Some(FaultKind::TornWrite)
                if matches!(point, FaultPoint::DiskWrite | FaultPoint::LogAppend) =>
            {
                self.torn_writes.fetch_add(1, Ordering::Relaxed);
                FaultDecision::Tear
            }
            Some(FaultKind::TornWrite) => FaultDecision::Proceed,
            Some(FaultKind::Transient) => {
                self.transient_faults.fetch_add(1, Ordering::Relaxed);
                FaultDecision::TransientError
            }
            Some(FaultKind::Persistent) => {
                self.persistent.store(true, Ordering::SeqCst);
                self.persistent_faults.fetch_add(1, Ordering::Relaxed);
                FaultDecision::TransientError
            }
            None => FaultDecision::Proceed,
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            events: self.events.load(Ordering::SeqCst),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            log_appends: self.log_appends.load(Ordering::Relaxed),
            log_syncs: self.log_syncs.load(Ordering::Relaxed),
            master_writes: self.master_writes.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            transient_faults: self.transient_faults.load(Ordering::Relaxed),
            persistent_faults: self.persistent_faults.load(Ordering::Relaxed),
            persistent_active: self.persistent_active(),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            crash_fired: self.fired(),
            crash_event: *self.crash_event.lock(),
        }
    }
}

fn transient_io_error() -> Error {
    Error::IoTransient(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        "injected transient i/o fault",
    ))
}

type Image = Box<[u8; PAGE_SIZE]>;

#[derive(Clone, Default)]
struct DiskState {
    images: Vec<Option<Image>>,
}

struct DiskShared {
    clock: Arc<FaultClock>,
    live: Mutex<DiskState>,
    frozen: Mutex<Option<DiskState>>,
}

/// A fault-injecting page store. Stores raw post-checksum page images (so
/// a torn image survives verbatim until a read trips the checksum), and
/// honours the shared [`FaultClock`]'s schedule. Cloning yields a handle
/// to the same store, so the harness can keep one across a `Database`'s
/// lifetime and call [`FaultDisk::crash_restore`] after dropping it.
#[derive(Clone)]
pub struct FaultDisk {
    inner: Arc<DiskShared>,
}

impl FaultDisk {
    /// New empty store ticking `clock`.
    pub fn new(clock: Arc<FaultClock>) -> FaultDisk {
        FaultDisk {
            inner: Arc::new(DiskShared {
                clock,
                live: Mutex::new(DiskState::default()),
                frozen: Mutex::new(None),
            }),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.inner.clock
    }

    /// Lazily freeze the durable image: the first mutation after the
    /// crash fires snapshots the pre-mutation state.
    fn maybe_freeze(&self) {
        if self.inner.clock.fired() {
            let mut frozen = self.inner.frozen.lock();
            if frozen.is_none() {
                *frozen = Some(self.inner.live.lock().clone());
            }
        }
    }

    /// Reboot onto the durable image: discard everything applied after
    /// the crash point. Returns whether a frozen image existed (if not,
    /// nothing was mutated post-crash and the live state already *is* the
    /// durable state).
    pub fn crash_restore(&self) -> bool {
        match self.inner.frozen.lock().take() {
            Some(f) => {
                *self.inner.live.lock() = f;
                true
            }
            None => false,
        }
    }

    /// Wipe every page image (and any frozen crash image). Snapshot
    /// install on a diverged follower starts from an empty disk: stale
    /// pages from the divergent history carry pageLSNs that would wrongly
    /// make redo skip the freshly installed log's records.
    pub fn reset(&self) {
        *self.inner.frozen.lock() = None;
        self.inner.live.lock().images.clear();
    }
}

impl crate::disk::DiskManager for FaultDisk {
    fn read_page(&self, pid: PageId) -> Result<Page> {
        self.inner.clock.note_disk_read();
        let st = self.inner.live.lock();
        match st.images.get(pid.0 as usize) {
            Some(Some(img)) => Page::from_disk(**img),
            _ => Err(Error::NotFound(format!("{pid:?} never written"))),
        }
    }

    fn write_page(&self, pid: PageId, page: &mut Page) -> Result<()> {
        let decision = self.inner.clock.tick(FaultPoint::DiskWrite);
        self.maybe_freeze();
        if decision == FaultDecision::TransientError {
            return Err(transient_io_error());
        }
        let mut img = Box::new(*page.to_disk());
        if decision == FaultDecision::Tear {
            // Only the first half reached the platter; the rest is the
            // bit-flipped ghost of what was meant to land there. The page
            // checksum (sealed over the whole image) must catch this.
            for b in &mut img[PAGE_SIZE / 2..] {
                *b ^= 0xFF;
            }
        }
        let mut st = self.inner.live.lock();
        let idx = pid.0 as usize;
        if st.images.len() <= idx {
            st.images.resize_with(idx + 1, || None);
        }
        st.images[idx] = Some(img);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        // Allocation extends the durable address space; treat it as part
        // of the page-write mutation stream for freeze purposes (but not
        // as a tickable fault point — it never touches the platter).
        self.maybe_freeze();
        let mut st = self.inner.live.lock();
        let pid = PageId(st.images.len() as u32);
        st.images.push(None);
        Ok(pid)
    }

    fn num_pages(&self) -> u32 {
        self.inner.live.lock().images.len() as u32
    }

    fn ensure_allocated(&self, pid: PageId) {
        self.maybe_freeze();
        let mut st = self.inner.live.lock();
        if st.images.len() <= pid.0 as usize {
            st.images.resize_with(pid.0 as usize + 1, || None);
        }
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::page::PageType;

    fn write_marker(disk: &FaultDisk, marker: u8) -> PageId {
        let pid = disk.allocate().unwrap();
        let mut p = Page::new(PageType::BTreeLeaf);
        p.payload_mut()[0] = marker;
        disk.write_page(pid, &mut p).unwrap();
        pid
    }

    #[test]
    fn no_faults_behaves_like_memdisk() {
        let disk = FaultDisk::new(FaultClock::new());
        let pid = write_marker(&disk, 0xAB);
        assert_eq!(disk.read_page(pid).unwrap().payload()[0], 0xAB);
        assert!(!disk.crash_restore());
    }

    #[test]
    fn transient_fault_fails_once_then_retry_succeeds() {
        let clock = FaultClock::new();
        let disk = FaultDisk::new(Arc::clone(&clock));
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::Transient)] });
        let pid = disk.allocate().unwrap();
        let mut p = Page::new(PageType::BTreeLeaf);
        let err = disk.write_page(pid, &mut p).unwrap_err();
        assert!(matches!(err, Error::IoTransient(_)), "got {err:?}");
        assert!(err.is_retryable(), "injected transient faults are retryable");
        disk.write_page(pid, &mut p).unwrap();
        assert_eq!(clock.stats().transient_faults, 1);
    }

    #[test]
    fn storm_schedules_are_pure_capped_and_transient_only() {
        for seed in 0..200u64 {
            let a = FaultSchedule::storm(seed, 120);
            assert_eq!(a, FaultSchedule::storm(seed, 120), "seed {seed} not pure");
            assert!(a.is_transient_only(), "seed {seed} not transient-only");
            assert!(!a.faults.is_empty(), "seed {seed} produced an empty storm");
            assert!(a.faults.iter().all(|&(e, _)| e < 120));
            // No run of consecutive events longer than 3.
            let mut run = 1;
            for w in a.faults.windows(2) {
                run = if w[1].0 == w[0].0 + 1 { run + 1 } else { 1 };
                assert!(run <= 3, "seed {seed} has a run longer than 3: {:?}", a.faults);
            }
        }
    }

    #[test]
    fn persistent_outage_fails_everything_until_heal() {
        let clock = FaultClock::new();
        let disk = FaultDisk::new(Arc::clone(&clock));
        clock.arm(&FaultSchedule::persistent_at(0));
        let pid = disk.allocate().unwrap();
        let mut p = Page::new(PageType::BTreeLeaf);
        // Every attempt fails — a bounded retry budget cannot clear this.
        for _ in 0..10 {
            assert!(matches!(
                disk.write_page(pid, &mut p),
                Err(Error::IoTransient(_))
            ));
        }
        assert!(clock.persistent_active());
        assert!(clock.stats().persistent_faults >= 10);
        // Probes still tick through (health checks must be able to observe).
        clock.tick(FaultPoint::Probe("health.probe"));
        clock.heal();
        assert!(!clock.persistent_active());
        disk.write_page(pid, &mut p).unwrap();
        assert_eq!(disk.read_page(pid).unwrap().page_type().unwrap(), PageType::BTreeLeaf);
    }

    #[test]
    fn torn_write_is_caught_by_page_checksum() {
        let clock = FaultClock::new();
        let disk = FaultDisk::new(Arc::clone(&clock));
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::TornWrite)] });
        let pid = disk.allocate().unwrap();
        let mut p = Page::new(PageType::BTreeLeaf);
        p.payload_mut()[0] = 7;
        disk.write_page(pid, &mut p).unwrap();
        assert!(matches!(disk.read_page(pid), Err(Error::Corruption(_))));
        assert_eq!(clock.stats().torn_writes, 1);
    }

    #[test]
    fn crash_freezes_prior_writes_and_discards_later_ones() {
        let clock = FaultClock::new();
        let disk = FaultDisk::new(Arc::clone(&clock));
        let before = write_marker(&disk, 1);
        // Crash at the next disk write: that write and everything after
        // it must vanish on restore.
        clock.arm(&FaultSchedule::crash_at(0));
        let during = write_marker(&disk, 2);
        let after = write_marker(&disk, 3);
        assert!(clock.fired());
        // The doomed live image still sees everything.
        assert_eq!(disk.read_page(during).unwrap().payload()[0], 2);
        assert!(disk.crash_restore());
        assert_eq!(disk.read_page(before).unwrap().payload()[0], 1);
        assert!(disk.read_page(during).is_err());
        assert!(disk.read_page(after).is_err());
        // The allocate for `during` preceded the crash tick, so its empty
        // slot survives in the frozen image (a file extended but never
        // written); the allocate for `after` is post-freeze and vanishes.
        assert_eq!(disk.num_pages(), 2);
        assert_eq!(clock.stats().crash_event, Some(1));
    }

    #[test]
    fn same_seed_same_schedule() {
        for seed in 0..50 {
            assert_eq!(FaultSchedule::random(seed, 100), FaultSchedule::random(seed, 100));
        }
    }

    #[test]
    fn probe_ticks_advance_the_clock() {
        let clock = FaultClock::new();
        clock.tick(FaultPoint::Probe("test.point"));
        assert_eq!(clock.events(), 1);
        assert_eq!(clock.stats().probes, 1);
    }
}
