//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the small slice of the criterion 0.5 API the bench
//! targets use. Like real criterion, a bench binary invoked *without*
//! `--bench` (as `cargo test` does for `harness = false` targets) runs each
//! routine once as a smoke test; with `--bench` (as `cargo bench` passes)
//! it measures wall-clock time and prints one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for convenience parity with criterion.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, not used for sizing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup per iteration.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

/// The benchmark driver.
pub struct Criterion {
    measure: bool,
}

impl Criterion {
    /// Build from process args: measurement mode iff `--bench` was passed.
    pub fn from_args() -> Criterion {
        Criterion { measure: std::env::args().any(|a| a == "--bench") }
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Bench outside a group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion::from_args()
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take in measurement mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut b = Bencher {
            measure: self.criterion.measure,
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if self.criterion.measure && b.iters > 0 {
            let per_iter = b.total.as_nanos() / b.iters as u128;
            println!("bench {:<40} {:>12} ns/iter ({} iters)",
                format!("{}/{}", self.name, id.label), per_iter, b.iters);
        }
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (drop-equivalent; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark routine to drive iterations.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly (once in smoke mode).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let n = self.planned_iters();
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += n;
    }

    /// Time `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let n = self.planned_iters();
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
        }
        self.iters += n;
    }

    fn planned_iters(&self) -> u64 {
        if self.measure { self.sample_size as u64 } else { 1 }
    }
}

/// Define a group-runner function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::PerIteration)
        });
        group.finish();
    }

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut c = Criterion { measure: false };
        sample_bench(&mut c);
    }

    #[test]
    fn measure_mode_times_iterations() {
        let mut c = Criterion { measure: true };
        sample_bench(&mut c);
    }
}
