//! Wire-protocol codec property tests: every well-formed message survives
//! a frame+payload roundtrip; torn, truncated, bit-flipped, and
//! garbage-prefixed byte streams are rejected by the checksum (or parked
//! as incomplete) and never panic the decoder.

use proptest::prelude::*;
use txview_common::{Error, Value};
use txview_server::wire::{
    decode_frame, encode_frame, Request, Response, WireErrorCode, FRAME_OVERHEAD,
};

/// Build a value list from raw generator bytes (2 bits of type selector
/// per value keeps the shim strategy simple).
fn values_from(bytes: &[u8]) -> Vec<Value> {
    bytes
        .iter()
        .map(|&b| match b % 4 {
            0 => Value::Null,
            1 => Value::Int(b as i64 * 7919 - 1024),
            2 => Value::Float(b as f64 / 3.0 - 17.5),
            _ => Value::Str(format!("s{b}")),
        })
        .collect()
}

fn request_from(op: u8, a: i64, b: i64, tag_bytes: &[u8]) -> Request {
    match op % 8 {
        0 => Request::Ping,
        1 => Request::Begin { isolation: (a % 3) as u8 },
        2 => Request::Commit,
        3 => Request::Rollback,
        4 => Request::Deposit { account: a, delta: b },
        5 => Request::ViewRead { view: format!("v{}", a % 100), group: values_from(tag_bytes) },
        6 => Request::ViewAvg {
            view: format!("v{}", b % 100),
            group: values_from(tag_bytes),
            agg_idx: (a % 7) as u32,
        },
        _ => Request::Metrics,
    }
}

fn response_from(op: u8, a: i64, tag_bytes: &[u8]) -> Response {
    match op % 7 {
        0 => Response::Pong,
        1 => Response::Ok,
        2 => Response::Committed { lsn: a as u64 },
        3 => Response::Row { present: a % 2 == 0, values: values_from(tag_bytes) },
        4 => Response::Avg { present: a % 2 == 0, value: a as f64 / 7.0 },
        5 => Response::Metrics { text: format!("k={a}\n") },
        _ => Response::Err {
            code: WireErrorCode::from_u16(1 + a.rem_euclid(7) as u16).unwrap(),
            msg: format!("e{a}"),
        },
    }
}

proptest! {
    /// Any request roundtrips through payload encode/decode and through a
    /// full frame.
    #[test]
    fn request_roundtrips(
        op in any::<u8>(),
        a in any::<i64>(),
        b in any::<i64>(),
        tags in proptest::collection::vec(any::<u8>(), 0..6),
    ) {
        let req = request_from(op, a, b, &tags);
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req.clone());
        let frame = encode_frame(&req.encode());
        let (payload, used) = decode_frame(&frame).unwrap().unwrap();
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    /// Any response roundtrips likewise.
    #[test]
    fn response_roundtrips(
        op in any::<u8>(),
        a in any::<i64>(),
        tags in proptest::collection::vec(any::<u8>(), 0..6),
    ) {
        let resp = response_from(op, a, &tags);
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp.clone());
        let frame = encode_frame(&resp.encode());
        let (payload, _) = decode_frame(&frame).unwrap().unwrap();
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    /// A torn (truncated) frame is never mistaken for a complete one: every
    /// strict prefix decodes to "incomplete", not to a payload and not to a
    /// panic.
    #[test]
    fn torn_frames_park_as_incomplete(
        op in any::<u8>(),
        a in any::<i64>(),
        b in any::<i64>(),
        cut_seed in any::<u64>(),
    ) {
        let frame = encode_frame(&request_from(op, a, b, &[]).encode());
        let cut = (cut_seed as usize) % frame.len();
        prop_assert!(decode_frame(&frame[..cut]).unwrap().is_none());
    }

    /// Flipping any single bit inside the payload or checksum region is
    /// caught by the checksum.
    #[test]
    fn bit_flips_are_rejected(
        op in any::<u8>(),
        a in any::<i64>(),
        b in any::<i64>(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut frame = encode_frame(&request_from(op, a, b, &[]).encode());
        // Skip the 4-byte length prefix: flipping it changes framing, not
        // payload integrity (covered by the garbage-prefix test).
        let span = frame.len() - 4;
        let pos = 4 + (pos_seed as usize) % span;
        frame[pos] ^= 1 << bit;
        prop_assert!(
            matches!(decode_frame(&frame), Err(Error::Corruption(_))),
            "bit flip at {pos} went undetected"
        );
    }

    /// Arbitrary garbage — including garbage prefixed onto a valid frame —
    /// never panics the frame decoder, and whatever it yields is one of
    /// the three contractual outcomes.
    #[test]
    fn garbage_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
        op in any::<u8>(),
        a in any::<i64>(),
    ) {
        // Raw garbage alone.
        let _ = decode_frame(&garbage);
        // Garbage prefix then a valid frame: the decoder sees the garbage
        // as a (bogus) length prefix; it must reject or wait, not panic,
        // and must never hand back a payload claiming to be valid while
        // the checksum over it does not hold (decode_frame verifies by
        // construction; reaching Ok(Some) is fine either way).
        let mut buf = garbage.clone();
        buf.extend_from_slice(&encode_frame(&request_from(op, a, 0, &[]).encode()));
        let _ = decode_frame(&buf);
    }

    /// Arbitrary payload bytes never panic the message decoders.
    #[test]
    fn arbitrary_payloads_never_panic_message_decode(
        payload in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }

    /// Two frames back-to-back decode in order with exact consumption —
    /// the streaming reader's contract.
    #[test]
    fn streamed_frames_decode_in_order(
        a in any::<i64>(),
        b in any::<i64>(),
    ) {
        let r1 = Request::Deposit { account: a, delta: b };
        let r2 = Request::Ping;
        let mut buf = encode_frame(&r1.encode());
        buf.extend_from_slice(&encode_frame(&r2.encode()));
        let (p1, used1) = decode_frame(&buf).unwrap().unwrap();
        prop_assert_eq!(Request::decode(&p1).unwrap(), r1);
        let (p2, used2) = decode_frame(&buf[used1..]).unwrap().unwrap();
        prop_assert_eq!(Request::decode(&p2).unwrap(), r2);
        prop_assert_eq!(used1 + used2, buf.len());
    }
}

#[test]
fn frame_overhead_is_exactly_len_plus_checksum() {
    let f = encode_frame(b"xyz");
    assert_eq!(f.len(), 3 + FRAME_OVERHEAD);
}
