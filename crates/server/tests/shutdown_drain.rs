//! Shutdown torture for the service layer.
//!
//! * **Graceful drain** — `Server::shutdown` under live autocommit load:
//!   every acked deposit is durably applied, at most one unacked deposit
//!   per session slips through (its response was in flight when the
//!   connection closed), and the commit pipeline is fully drained before
//!   the process lets go of the WAL.
//! * **Abortive kill** — a WAL crash probe at
//!   `wal.pipeline.post_append_pre_wake` kills the server mid-batch and
//!   freezes the fault store, simulating a crash between a group-commit
//!   append and its waiter wakeup. After ARIES recovery over the frozen
//!   image, **no account is missing a deposit the server acked**: the
//!   kill point suppresses acks before the crash can retract durability.
//!
//! Each client deposits +1 into a private account laid out one-per-branch,
//! so the view row `[branch, COUNT, SUM]` for branch *i* is an exact
//! per-client ledger — the recovery oracle is `SUM(i) ≥ acks(i)`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{row, Value};
use txview_engine::catalog::{AggSpec, MaintenanceMode, Predicate, ViewSource, ViewSpec};
use txview_engine::{Database, IsolationLevel};
use txview_server::{Client, Server, ServerConfig};
use txview_storage::fault::{FaultClock, FaultDisk, FaultPoint, FaultSchedule};
use txview_wal::{FaultLogStore, LogStore};
use txview_workload::bank::{Bank, BankConfig, VIEW};

const KILL_PROBE: &str = "wal.pipeline.post_append_pre_wake";

/// Read one branch's SUM on a fresh transaction.
fn branch_sum(db: &Database, view: &str, branch: i64) -> i64 {
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let sum = db
        .view_lookup(&mut txn, view, &[Value::Int(branch)])
        .expect("view lookup")
        .map(|r| r.get(2).as_int().expect("int SUM"))
        .unwrap_or(0);
    db.commit(&mut txn).expect("read-only commit");
    sum
}

#[test]
fn graceful_drain_loses_no_acked_commit() {
    const CLIENTS: usize = 4;
    // accounts == branches ⇒ every account is its own branch/view row.
    let bank = Bank::setup(BankConfig {
        accounts: CLIENTS as i64,
        branches: CLIENTS as i64,
        pipeline: true,
        elr: true,
        sync_latency_us: 100, // widen batch windows so the drain has work
        ..Default::default()
    })
    .expect("bank setup");
    let server =
        Server::start(bank.db.clone(), "127.0.0.1:0", ServerConfig::default()).expect("start");
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let mut attempts = 0u64;
            let mut acks = 0u64;
            // Run until the drain severs us — every client is guaranteed to
            // have at least one attempt the server never answered.
            loop {
                attempts += 1;
                match c.deposit(t as i64, 1) {
                    Ok(Some(_lsn)) => acks += 1,
                    Ok(None) => panic!("autocommit deposit buffered"),
                    Err(_) => break,
                }
            }
            (attempts, acks)
        }));
    }

    // Drain while the load is still running.
    std::thread::sleep(Duration::from_millis(250));
    let stats = server.shutdown().expect("graceful shutdown");

    let per_client: Vec<(u64, u64)> =
        handles.into_iter().map(|h| h.join().expect("client thread")).collect();

    let initial = bank.cfg.initial_balance;
    let mut total_attempts = 0;
    let mut total_acks = 0;
    for (t, &(attempts, acks)) in per_client.iter().enumerate() {
        total_attempts += attempts;
        total_acks += acks;
        let applied = (branch_sum(&bank.db, VIEW, t as i64) - initial) as u64;
        // Every ack is durable; at most the single in-flight request whose
        // response the close discarded may be applied-but-unacked.
        assert!(
            applied >= acks,
            "client {t}: acked {acks} deposits but only {applied} survived the drain"
        );
        assert!(
            applied <= acks + 1,
            "client {t}: {applied} applied vs {acks} acked — more than one \
             unacked in-flight request slipped through"
        );
    }
    assert!(total_acks > 0, "no deposit was ever acked — test is vacuous");
    assert!(
        total_attempts > total_acks,
        "every attempt was acked — the drain never interrupted the load"
    );
    assert_eq!(stats.suppressed_responses, 0, "graceful drain must not suppress responses");
    bank.verify().expect("views consistent after drain");
}

/// One abortive-kill episode: serve a fault-injected database, kill at the
/// `kill_at`-th pipeline batch append, freeze the WAL image, recover, and
/// check the per-account ack ledger. Returns (attempts, acks, probe hits).
fn kill_episode(kill_at: u64) -> (u64, u64, u64) {
    const CLIENTS: usize = 4;
    const MAX_ATTEMPTS: u64 = 20_000;
    const POOL_PAGES: usize = 256;

    let clock = FaultClock::new();
    let disk = FaultDisk::new(Arc::clone(&clock));
    let store = FaultLogStore::new(Arc::clone(&clock));
    store.set_sync_latency(40, 10, 7); // widen the append→wake window
    let db = Database::with_parts(
        Arc::new(disk.clone()),
        Box::new(store.clone()),
        POOL_PAGES,
        Duration::from_secs(2),
    )
    .expect("with_parts");
    db.enable_commit_pipeline(true);

    let accounts = db
        .create_table(
            "accounts",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("branch", ValueType::Int),
                    Column::new("balance", ValueType::Int),
                ],
                vec![0],
            )
            .expect("schema"),
        )
        .expect("create table");
    db.create_indexed_view(ViewSpec {
        name: VIEW.into(),
        source: ViewSource::Single { table: accounts, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .expect("create view");
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for i in 0..CLIENTS as i64 {
        // branch == id: one view row per client account, balance starts 0.
        db.insert(&mut txn, "accounts", row![i, i, 0i64]).expect("insert");
    }
    db.commit(&mut txn).expect("load commit");
    db.checkpoint().expect("checkpoint");

    let server =
        Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).expect("start");
    let addr = server.local_addr();

    // The crash probe: at the kill_at-th batch append, stop all acks FIRST
    // (kill_now), then doom the fault clock so the store freezes at its
    // next operation. Ordering matters: once kill_now returns, no response
    // leaves the process, so every ack that escaped corresponds to a
    // commit_wait that completed — durable in any later freeze.
    let hits = Arc::new(AtomicU64::new(0));
    {
        let hits = Arc::clone(&hits);
        let killer = server.killer();
        let clock = Arc::clone(&clock);
        db.log().set_crash_probe(Arc::new(move |p| {
            if p == KILL_PROBE {
                let n = hits.fetch_add(1, Ordering::AcqRel) + 1;
                if n == kill_at {
                    killer.kill_now();
                    clock.arm(&FaultSchedule::crash_at(0));
                }
            }
            clock.tick(FaultPoint::Probe(p));
        }));
    }

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            // Short timeout so a killed server turns into an error, not a hang.
            let Ok(mut c) = Client::connect_with_timeout(addr, Duration::from_secs(2)) else {
                return (0u64, 0u64); // killed before this client connected
            };
            let mut attempts = 0u64;
            let mut acks = 0u64;
            while attempts < MAX_ATTEMPTS {
                attempts += 1;
                match c.deposit(t as i64, 1) {
                    Ok(Some(_lsn)) => acks += 1,
                    Ok(None) => panic!("autocommit deposit buffered"),
                    Err(_) => break, // kill severed the socket
                }
            }
            (attempts, acks)
        }));
    }
    let per_client: Vec<(u64, u64)> =
        handles.into_iter().map(|h| h.join().expect("client thread")).collect();
    server.join_after_kill();
    let probe_hits = hits.load(Ordering::Acquire);
    assert!(probe_hits >= kill_at, "kill probe never fired ({probe_hits} < {kill_at})");

    // Force one more store op so the doomed clock's freeze is captured even
    // if the pipeline went idle the instant the probe fired.
    let _ = LogStore::sync(&store);

    // Crash: discard live state, keep the frozen image, recover over it.
    let catalog = db.export_catalog();
    drop(db);
    assert!(store.crash_restore(), "fault store never froze a crash image");
    disk.crash_restore();
    clock.disarm();
    let (db2, _report) = Database::with_parts_recovered(
        Arc::new(disk.clone()),
        Box::new(store.clone()),
        Some(&catalog),
        POOL_PAGES,
        Duration::from_secs(2),
    )
    .expect("recovery");
    db2.verify_view(VIEW).expect("view consistent after recovery");

    let mut total_attempts = 0;
    let mut total_acks = 0;
    for (t, &(attempts, acks)) in per_client.iter().enumerate() {
        total_attempts += attempts;
        total_acks += acks;
        let recovered = branch_sum(&db2, VIEW, t as i64) as u64;
        // The contract under test: an acked commit is never lost. The
        // converse (durable but unacked — suppressed by the kill) is
        // allowed and expected.
        assert!(
            recovered >= acks,
            "kill_at={kill_at} client {t}: {acks} acked deposits but only \
             {recovered} survived the crash — an acked commit was lost"
        );
        assert!(
            recovered <= attempts,
            "kill_at={kill_at} client {t}: {recovered} recovered deposits \
             exceed {attempts} attempts"
        );
    }
    assert!(
        total_attempts > total_acks,
        "kill_at={kill_at}: every attempt was acked — the kill never interrupted the load"
    );
    (total_attempts, total_acks, probe_hits)
}

#[test]
fn kill_at_post_append_pre_wake_never_acks_a_lost_commit() {
    let mut acked_any = 0;
    for kill_at in [1, 3, 7] {
        let (_attempts, acks, _hits) = kill_episode(kill_at);
        acked_any += acks;
    }
    // Across the sweep some deposits must have been acked pre-kill, or the
    // "no acked commit lost" claim was never exercised.
    assert!(acked_any > 0, "no episode acked anything before its kill");
}
