//! End-to-end TCP integration: N concurrent clients against a real
//! ephemeral-port server, checking the bank invariant *through the wire*,
//! health degradation surfacing as retryable errors mid-run, and the
//! admission-control shed path.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::{Error, Value};
use txview_server::{Client, Request, Response, Server, ServerConfig, WireErrorCode};
use txview_workload::bank::{Bank, BankConfig, VIEW};

fn start_bank_server(accounts: i64, branches: i64, cfg: ServerConfig) -> (Bank, Server) {
    let bank = Bank::setup(BankConfig {
        accounts,
        branches,
        pipeline: true,
        elr: true,
        ..Default::default()
    })
    .expect("bank setup");
    let server = Server::start(bank.db.clone(), "127.0.0.1:0", cfg).expect("server start");
    (bank, server)
}

/// Tiny deterministic LCG so each client thread gets its own schedule.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Sum every branch row of the view over the wire.
fn wire_total(client: &mut Client, branches: i64) -> i64 {
    let mut total = 0;
    for b in 0..branches {
        let row = client
            .view_read(VIEW, vec![Value::Int(b)])
            .expect("view read")
            .expect("branch row present");
        // Stored layout: [branch, COUNT_BIG, SUM(balance)].
        match row[2] {
            Value::Int(sum) => total += sum,
            ref other => panic!("non-int SUM: {other:?}"),
        }
    }
    total
}

#[test]
fn concurrent_clients_preserve_bank_invariant_over_tcp() {
    const ACCOUNTS: i64 = 64;
    const BRANCHES: i64 = 4;
    const CLIENTS: usize = 6;
    const TXNS: usize = 40;
    let (bank, server) = start_bank_server(ACCOUNTS, BRANCHES, ServerConfig::default());
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let mut rng = 0x9e3779b9u64.wrapping_mul(t as u64 + 1) | 1;
            let mut committed = 0u64;
            for i in 0..TXNS {
                let a = (lcg(&mut rng) % ACCOUNTS as u64) as i64;
                let mut b = (lcg(&mut rng) % ACCOUNTS as u64) as i64;
                if b == a {
                    b = (b + 1) % ACCOUNTS;
                }
                let amount = (lcg(&mut rng) % 9 + 1) as i64;
                // Conserving transfer: debit a, credit b, inside one txn.
                // Any mid-transaction error (e.g. a deadlock victim) rolls
                // the whole transaction back server-side, so conservation
                // holds whether or not we get to commit.
                if c.begin(0).is_err() {
                    continue;
                }
                if c.deposit(a, -amount).is_err() {
                    continue; // server already rolled back
                }
                if c.deposit(b, amount).is_err() {
                    continue;
                }
                if i % 5 == 4 {
                    c.rollback().expect("rollback");
                } else {
                    match c.commit() {
                        Ok(_lsn) => committed += 1,
                        Err(e) => assert!(e.is_retryable(), "commit failed fatally: {e}"),
                    }
                }
            }
            committed
        }));
    }
    let committed: u64 = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
    assert!(committed > 0, "no transfer ever committed — test is vacuous");

    // Invariant through the wire: total money unchanged.
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(wire_total(&mut c, BRANCHES), bank.total_money());
    // Metrics are served over the wire too.
    let metrics = c.metrics().expect("metrics");
    assert!(metrics.contains('='), "metrics text should be name=value lines: {metrics:?}");
    drop(c);

    let stats = server.shutdown().expect("graceful shutdown");
    assert!(stats.requests > 0);
    assert_eq!(stats.suppressed_responses, 0, "graceful path never suppresses responses");
    // And the engine agrees with what the wire reported.
    bank.verify().expect("view verifies against base");
}

#[test]
fn degradation_mid_run_surfaces_retryable_errors_then_heals() {
    const ACCOUNTS: i64 = 32;
    const BRANCHES: i64 = 4;
    const CLIENTS: usize = 3;
    let (bank, server) = start_bank_server(ACCOUNTS, BRANCHES, ServerConfig::default());
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let acked_total = Arc::new(AtomicI64::new(0));
    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let stop = Arc::clone(&stop);
        let acked_total = Arc::clone(&acked_total);
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let account = t as i64; // private account per client
            let mut degraded_seen = 0u64;
            let mut reads_ok = 0u64;
            while !stop.load(Ordering::Acquire) {
                match c.deposit(account, 1) {
                    Ok(Some(_lsn)) => {
                        acked_total.fetch_add(1, Ordering::AcqRel);
                    }
                    Ok(None) => panic!("autocommit deposit returned a buffered ack"),
                    Err(e) => {
                        assert!(
                            matches!(e, Error::Degraded { .. }),
                            "only Degraded errors are expected mid-run: {e}"
                        );
                        assert!(e.is_retryable());
                        degraded_seen += 1;
                        // Reads must keep working while writes are shed.
                        if c.view_read(VIEW, vec![Value::Int(account % BRANCHES)])
                            .expect("read during degradation")
                            .is_some()
                        {
                            reads_ok += 1;
                        }
                    }
                }
            }
            (degraded_seen, reads_ok)
        }));
    }

    std::thread::sleep(Duration::from_millis(150));
    bank.db.health().degrade("maintenance drill");
    std::thread::sleep(Duration::from_millis(300));
    bank.db.health().heal();
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Release);

    let mut total_degraded = 0;
    let mut total_reads_ok = 0;
    for h in handles {
        let (degraded_seen, reads_ok) = h.join().expect("client thread");
        total_degraded += degraded_seen;
        total_reads_ok += reads_ok;
    }
    assert!(total_degraded > 0, "no client ever observed the degradation window");
    assert!(total_reads_ok > 0, "no read succeeded during the degradation window");

    // Ack honesty: with a graceful server every acked autocommit — and
    // nothing else — changed the total.
    let mut c = Client::connect(addr).expect("connect");
    let total = wire_total(&mut c, BRANCHES);
    assert_eq!(total, bank.total_money() + acked_total.load(Ordering::Acquire));
    drop(c);
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn fenced_engine_refuses_new_connections_and_closes_sessions() {
    let (bank, server) = start_bank_server(16, 4, ServerConfig::default());
    let addr = server.local_addr();

    let mut c1 = Client::connect(addr).expect("connect");
    c1.ping().expect("ping before fence");

    bank.db.health().fence("simulated torn page");

    // New connections are refused at admission with a fatal Fenced frame.
    let mut c2 = Client::connect(addr).expect("tcp connect still succeeds");
    match c2.request(&Request::Ping) {
        Ok(Response::Err { code, .. }) => {
            assert_eq!(code, WireErrorCode::Fenced);
            assert!(!code.is_retryable());
        }
        other => panic!("expected Fenced refusal, got {other:?}"),
    }

    // The established session gets a Fenced error and is then closed.
    match c1.begin(0) {
        Err(Error::Fenced { .. }) => {}
        other => panic!("expected Fenced on live session, got {other:?}"),
    }
    let follow_up = c1.ping();
    assert!(follow_up.is_err(), "session must be severed after Fenced: {follow_up:?}");

    bank.db.health().heal();
    let stats = server.shutdown().expect("graceful shutdown");
    assert!(stats.refused_fenced >= 1);
}

#[test]
fn overloaded_admission_sheds_with_retryable_error() {
    let (_bank, server) = start_bank_server(
        16,
        4,
        ServerConfig { max_sessions: 1, ..Default::default() },
    );
    let addr = server.local_addr();

    let mut c1 = Client::connect(addr).expect("connect");
    c1.ping().expect("first session admitted"); // response ⇒ session registered

    let mut c2 = Client::connect(addr).expect("tcp connect still succeeds");
    match c2.request(&Request::Ping) {
        Ok(Response::Err { code, .. }) => {
            assert_eq!(code, WireErrorCode::Overloaded);
            assert!(code.is_retryable(), "shed must be retryable so clients back off");
        }
        other => panic!("expected Overloaded shed, got {other:?}"),
    }

    // Once the first session leaves, capacity frees up and a retry is
    // admitted (the reader notices EOF at its next poll tick).
    drop(c1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut c3 = Client::connect(addr).expect("connect");
        match c3.request(&Request::Ping) {
            Ok(Response::Pong) => break,
            Ok(Response::Err { code, .. }) if code == WireErrorCode::Overloaded => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "capacity never freed after session close"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected admission outcome: {other:?}"),
        }
    }

    let stats = server.shutdown().expect("graceful shutdown");
    assert!(stats.shed_overloaded >= 1);
    assert!(stats.accepted >= 2);
}
