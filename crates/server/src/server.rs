//! The TCP server: N connections multiplexed onto a bounded worker pool.
//!
//! ## Threads
//!
//! * **accept loop** — non-blocking accept with admission control: beyond
//!   `max_sessions` a connection is answered with a retryable
//!   [`WireErrorCode::Overloaded`] frame and dropped; a fenced engine
//!   answers [`WireErrorCode::Fenced`] and drops. Nothing is queued for a
//!   connection the server cannot serve.
//! * **one reader per connection** — parses frames off the socket and
//!   enqueues jobs. A session never has more than one request in flight
//!   (per-session `in_flight` flag), so responses come back in request
//!   order and the engine's `&mut Transaction` discipline holds. The job
//!   queue is **bounded**: a full queue blocks the reader, which stops
//!   reading its socket, which backpressures the client through TCP —
//!   offered load beyond capacity turns into queueing delay at the
//!   client, never unbounded memory here.
//! * **W workers** — execute requests against the engine and write the
//!   response frame.
//!
//! ## Shutdown (the ordering that makes acks honest)
//!
//! [`Server::shutdown`] drains: stop accepting → readers stop at a frame
//! boundary → queued + in-flight requests finish and their responses are
//! written → idle open transactions are rolled back → **the commit
//! pipeline drains and the WAL tail is flushed** (`Database::drain_commits`)
//! → workers stop. Every ack the server ever wrote corresponds to a commit
//! that was durable before the process let go of the log.
//!
//! [`Server::kill_now`] is the abortive path for crash drills: it
//! atomically stops response writes and severs every client socket, and is
//! safe to call from *inside* a worker (e.g. a WAL crash-probe callback) —
//! it never joins threads. After a kill, no ack is emitted for any commit
//! whose durability the crash may retract; callers then freeze the fault
//! store and check recovery against the set of acks that actually escaped.

use crate::session::{Disposition, Session};
use crate::wire::{self, Request, Response, WireErrorCode};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use txview_common::{Error, Result};
use txview_engine::{Database, HealthState};

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission cap on concurrent sessions; excess connections are shed
    /// with a retryable `Overloaded` error.
    pub max_sessions: usize,
    /// Bound on queued (not yet executing) requests across all sessions.
    pub queue_depth: usize,
    /// Socket read timeout — the cadence at which blocked readers notice
    /// state changes. Smaller = snappier shutdown, more wakeups.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            max_sessions: 64,
            queue_depth: 128,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Run-state lattice; transitions only move right.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;
const KILLED: u8 = 3;

/// Monotonic counters, snapshotted by [`Server::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Connections admitted.
    pub accepted: u64,
    /// Connections shed by the session cap (`Overloaded`).
    pub shed_overloaded: u64,
    /// Connections refused because the engine is fenced.
    pub refused_fenced: u64,
    /// Requests executed.
    pub requests: u64,
    /// Error responses sent.
    pub error_responses: u64,
    /// Responses suppressed because the server was killed mid-request.
    pub suppressed_responses: u64,
    /// Connections dropped for wire-protocol violations.
    pub protocol_errors: u64,
}

#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    shed_overloaded: AtomicU64,
    refused_fenced: AtomicU64,
    requests: AtomicU64,
    error_responses: AtomicU64,
    suppressed_responses: AtomicU64,
    protocol_errors: AtomicU64,
}

struct SessionHandle {
    id: u64,
    /// The accept-side socket handle, kept for abortive teardown.
    stream: TcpStream,
    /// Clone used by workers to write responses.
    write: Mutex<TcpStream>,
    sess: Mutex<Session>,
    /// True while a request from this session is queued or executing.
    /// Readers wait on it before enqueueing the next frame (per-session
    /// ordering); teardown waits on it before rolling back the session.
    in_flight: Mutex<bool>,
    in_flight_cv: Condvar,
    /// Set when the connection must close (client EOF, protocol error,
    /// fenced disposition).
    closing: AtomicBool,
}

impl SessionHandle {
    fn finish_in_flight(&self, inner: &Inner) {
        let mut f = self.in_flight.lock();
        *f = false;
        self.in_flight_cv.notify_all();
        drop(f);
        inner.in_flight_count.fetch_sub(1, Ordering::AcqRel);
    }
}

struct Job {
    session: Arc<SessionHandle>,
    payload: Vec<u8>,
}

struct Inner {
    db: Arc<Database>,
    cfg: ServerConfig,
    state: AtomicU8,
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when the queue gains a job or the state changes.
    queue_cv: Condvar,
    /// Signalled when the queue loses a job (backpressured readers wait).
    space_cv: Condvar,
    sessions: Mutex<HashMap<u64, Arc<SessionHandle>>>,
    next_session: AtomicU64,
    /// Jobs enqueued but not yet finished (queued + executing).
    in_flight_count: AtomicU64,
    stats: Stats,
}

impl Inner {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn advance_state(&self, to: u8) {
        // Monotonic: never move left (a kill during a drain stays a kill).
        let mut cur = self.state.load(Ordering::Acquire);
        while cur < to {
            match self.state.compare_exchange(cur, to, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.queue_cv.notify_all();
        self.space_cv.notify_all();
    }
}

/// Cloneable abortive-kill handle, safe to invoke from worker context
/// (e.g. inside a WAL crash probe). See [`Server::kill_now`].
#[derive(Clone)]
pub struct ServerKiller {
    inner: Arc<Inner>,
}

impl ServerKiller {
    /// Abortive stop: suppress all further response writes, then sever
    /// every client socket. Never blocks on thread joins.
    pub fn kill_now(&self) {
        self.inner.advance_state(KILLED);
        let sessions = self.inner.sessions.lock();
        for sh in sessions.values() {
            let _ = sh.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running server bound to a local TCP address.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `db`.
    pub fn start(db: Arc<Database>, addr: &str, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let inner = Arc::new(Inner {
            db,
            cfg: cfg.clone(),
            state: AtomicU8::new(RUNNING),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            space_cv: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            in_flight_count: AtomicU64::new(0),
            stats: Stats::default(),
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("txview-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .map_err(Error::Io)?,
            );
        }

        let accept = {
            let inner = Arc::clone(&inner);
            let readers = Arc::clone(&readers);
            std::thread::Builder::new()
                .name("txview-accept".into())
                .spawn(move || accept_loop(listener, &inner, &readers))
                .map_err(Error::Io)?
        };

        Ok(Server { inner, addr: bound, accept: Some(accept), workers, readers })
    }

    /// The bound address (use with port 0 to discover the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        let s = &self.inner.stats;
        ServerStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            shed_overloaded: s.shed_overloaded.load(Ordering::Relaxed),
            refused_fenced: s.refused_fenced.load(Ordering::Relaxed),
            requests: s.requests.load(Ordering::Relaxed),
            error_responses: s.error_responses.load(Ordering::Relaxed),
            suppressed_responses: s.suppressed_responses.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Handle for abortive kills from other threads / crash probes.
    pub fn killer(&self) -> ServerKiller {
        ServerKiller { inner: Arc::clone(&self.inner) }
    }

    /// Graceful drain, then stop. See the module docs for the ordering.
    pub fn shutdown(mut self) -> Result<ServerStats> {
        self.inner.advance_state(DRAINING);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Readers finish their in-flight request, roll back idle open
        // transactions, and deregister their sessions.
        for h in self.readers.lock().drain(..) {
            let _ = h.join();
        }
        // Wait for queued work to execute and its responses to be written.
        while self.inner.in_flight_count.load(Ordering::Acquire) > 0
            && self.inner.state() != KILLED
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        // The seam this ordering exists for: only after every response is
        // out and no new commit can arrive does the engine quiesce its
        // group-commit pipeline and flush the WAL tail.
        let drained = if self.inner.state() == KILLED {
            Ok(()) // killed mid-drain: the crash drill owns the log now
        } else {
            self.inner.db.drain_commits()
        };
        self.inner.advance_state(STOPPED);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        drained?;
        Ok(self.stats())
    }

    /// Abortive stop (see [`ServerKiller::kill_now`]).
    pub fn kill_now(&self) {
        self.killer().kill_now();
    }

    /// Join all threads after a [`Server::kill_now`]. Separate from the
    /// kill itself so a worker-context kill never self-joins.
    pub fn join_after_kill(mut self) -> ServerStats {
        assert_eq!(self.inner.state(), KILLED, "join_after_kill requires kill_now first");
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.readers.lock().drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.stats()
    }
}

fn accept_loop(
    listener: TcpListener,
    inner: &Arc<Inner>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while inner.state() == RUNNING {
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, inner, readers),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Write one frame and drop the connection — the shed path never allocates
/// session state.
fn refuse(mut stream: TcpStream, code: WireErrorCode, msg: &str) {
    let resp = Response::Err { code, msg: msg.into() };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(&wire::encode_frame(&resp.encode()));
}

fn admit(stream: TcpStream, inner: &Arc<Inner>, readers: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    if inner.db.health().state() == HealthState::Fenced {
        inner.stats.refused_fenced.fetch_add(1, Ordering::Relaxed);
        refuse(stream, WireErrorCode::Fenced, &inner.db.health().reason());
        return;
    }
    {
        let sessions = inner.sessions.lock();
        if sessions.len() >= inner.cfg.max_sessions {
            drop(sessions);
            inner.stats.shed_overloaded.fetch_add(1, Ordering::Relaxed);
            refuse(
                stream,
                WireErrorCode::Overloaded,
                "session limit reached; retry after backoff",
            );
            return;
        }
    }
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.cfg.poll_interval));
    let write = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let _ = write.set_write_timeout(Some(Duration::from_secs(5)));
    let id = inner.next_session.fetch_add(1, Ordering::Relaxed);
    let sh = Arc::new(SessionHandle {
        id,
        stream,
        write: Mutex::new(write),
        sess: Mutex::new(Session::new(Arc::clone(&inner.db))),
        in_flight: Mutex::new(false),
        in_flight_cv: Condvar::new(),
        closing: AtomicBool::new(false),
    });
    inner.sessions.lock().insert(id, Arc::clone(&sh));
    inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
    let inner2 = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(format!("txview-reader-{id}"))
        .spawn(move || reader_loop(&inner2, &sh));
    match handle {
        Ok(h) => readers.lock().push(h),
        Err(_) => {
            inner.sessions.lock().remove(&id);
        }
    }
}

fn reader_loop(inner: &Arc<Inner>, sh: &Arc<SessionHandle>) {
    let mut stream = match sh.stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            teardown(inner, sh);
            return;
        }
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'outer: while inner.state() == RUNNING && !sh.closing.load(Ordering::Acquire) {
        match stream.read(&mut chunk) {
            Ok(0) => break, // client EOF
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match wire::decode_frame(&buf) {
                        Ok(Some((payload, used))) => {
                            buf.drain(..used);
                            if !dispatch(inner, sh, payload) {
                                break 'outer;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Stream-level corruption: framing is lost, the
                            // connection cannot be resynchronized.
                            inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            let resp = Response::Err {
                                code: WireErrorCode::Protocol,
                                msg: e.to_string(),
                            };
                            let _ = sh
                                .write
                                .lock()
                                .write_all(&wire::encode_frame(&resp.encode()));
                            break 'outer;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll tick: re-check state, keep reading
            }
            Err(_) => break,
        }
    }
    teardown(inner, sh);
}

/// Enqueue one parsed frame, honouring per-session ordering and the queue
/// bound. Returns false when the connection should close.
fn dispatch(inner: &Arc<Inner>, sh: &Arc<SessionHandle>, payload: Vec<u8>) -> bool {
    // Per-session ordering: wait for the previous request's response.
    {
        let mut f = sh.in_flight.lock();
        while *f {
            sh.in_flight_cv.wait(&mut f);
        }
        if inner.state() >= STOPPED || sh.closing.load(Ordering::Acquire) {
            return false;
        }
        *f = true;
    }
    inner.in_flight_count.fetch_add(1, Ordering::AcqRel);
    // Bounded queue: block (backpressure) while full. The stop re-check
    // must happen under the queue lock even when there is space: workers
    // exit only after observing an empty queue under this same lock, so a
    // push that observes `state < STOPPED` here is guaranteed to be
    // drained by a worker — never orphaned with `in_flight` stuck true.
    let mut q = inner.queue.lock();
    loop {
        if inner.state() >= STOPPED {
            drop(q);
            sh.finish_in_flight(inner);
            return false;
        }
        if q.len() < inner.cfg.queue_depth {
            break;
        }
        inner.space_cv.wait(&mut q);
    }
    q.push_back(Job { session: Arc::clone(sh), payload });
    inner.queue_cv.notify_one();
    true
}

/// Connection teardown: wait out any in-flight request, roll back the
/// session's open transaction, deregister.
fn teardown(inner: &Arc<Inner>, sh: &Arc<SessionHandle>) {
    sh.closing.store(true, Ordering::Release);
    if inner.state() != KILLED {
        // After a kill, responses are suppressed anyway — skip the wait so
        // teardown can never park on a request the kill abandoned.
        let mut f = sh.in_flight.lock();
        while *f {
            sh.in_flight_cv.wait(&mut f);
        }
    }
    if inner.state() != KILLED {
        sh.sess.lock().abort();
    }
    inner.sessions.lock().remove(&sh.id);
    let _ = sh.stream.shutdown(std::net::Shutdown::Both);
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if inner.state() >= STOPPED {
                    break None;
                }
                inner.queue_cv.wait(&mut q);
            }
        };
        let Some(job) = job else { return };
        inner.space_cv.notify_one();
        if inner.state() == KILLED {
            // Killed: the request is abandoned un-executed and un-acked.
            inner.stats.suppressed_responses.fetch_add(1, Ordering::Relaxed);
            job.session.finish_in_flight(inner);
            continue;
        }
        execute(inner, &job);
        job.session.finish_in_flight(inner);
    }
}

fn execute(inner: &Arc<Inner>, job: &Job) {
    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
    let (resp, disp) = match Request::decode(&job.payload) {
        Ok(req) => job.session.sess.lock().execute(req),
        Err(e) => (
            Response::Err { code: WireErrorCode::Protocol, msg: e.to_string() },
            Disposition::Keep,
        ),
    };
    if matches!(resp, Response::Err { .. }) {
        inner.stats.error_responses.fetch_add(1, Ordering::Relaxed);
    }
    // The kill point: once the state is KILLED no ack leaves the process,
    // so a commit whose durability the crash drill is about to retract is
    // never reported successful.
    if inner.state() == KILLED {
        inner.stats.suppressed_responses.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let frame = wire::encode_frame(&resp.encode());
    let write_ok = job.session.write.lock().write_all(&frame).is_ok();
    if !write_ok || disp == Disposition::Close {
        job.session.closing.store(true, Ordering::Release);
        let _ = job.session.stream.shutdown(std::net::Shutdown::Both);
    }
}
