//! Open-loop load generation (E16).
//!
//! The E-series driver (`txview_workload::driver`) is *closed-loop*: each
//! worker issues its next operation only after the previous one returns,
//! so under saturation the measured latency stays flat while throughput
//! caps — the classic coordinated-omission blind spot. This generator is
//! **open-loop**: every request has a *scheduled* send time fixed up
//! front from the offered rate, and latency is measured from the
//! scheduled time to the response, so time a request spends waiting
//! behind a backed-up connection counts against the server, exactly as a
//! real user would experience it.
//!
//! Each connection runs an independent arrival schedule (the offered rate
//! is split evenly; connection k's phase is shifted by `k/N` of an
//! interval so arrivals interleave instead of pulsing). The op mix is
//! deposits (escrow-increment autocommits) and view point-reads/AVGs in a
//! configurable ratio.

use crate::client::Client;
use crate::wire::{Request, Response};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txview_common::obs::{HistSnapshot, Histogram};
use txview_common::rng::Rng;
use txview_common::Value;

/// Parameters for one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, e.g. `"127.0.0.1:4471"`.
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total offered load across all connections, requests/second.
    pub rate: f64,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Fraction of requests that are reads (view lookup / AVG); the rest
    /// are autocommit deposits.
    pub read_fraction: f64,
    /// Account id space for deposits.
    pub accounts: i64,
    /// Branch id space for view reads.
    pub branches: i64,
    /// RNG seed (per-connection streams derive from it).
    pub seed: u64,
    /// Per-request client I/O timeout.
    pub timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            connections: 4,
            rate: 500.0,
            duration: Duration::from_secs(2),
            read_fraction: 0.5,
            accounts: 1024,
            branches: 8,
            seed: 42,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregated result of one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Offered load (requests/second) the schedule targeted.
    pub offered_rate: f64,
    /// Requests actually sent.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses with a retryable wire code.
    pub retryable_errors: u64,
    /// Error responses with a fatal wire code.
    pub fatal_errors: u64,
    /// Transport-level failures (timeouts, resets, EOF).
    pub io_errors: u64,
    /// Deposit acks received (each carries a durable commit LSN).
    pub acked_commits: u64,
    /// Latency distribution in microseconds, scheduled-send → response.
    pub latency: HistSnapshot,
    /// Completed requests / elapsed seconds.
    pub achieved_rate: f64,
    /// Wall-clock elapsed.
    pub elapsed: Duration,
}

impl LoadReport {
    /// p50 latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.latency.p50() as f64 / 1000.0
    }

    /// p99 latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.latency.p99() as f64 / 1000.0
    }
}

#[derive(Default)]
struct Tallies {
    sent: AtomicU64,
    ok: AtomicU64,
    retryable: AtomicU64,
    fatal: AtomicU64,
    io: AtomicU64,
    acked: AtomicU64,
}

/// Run one open-loop load cell against a live server.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let hist = Arc::new(Histogram::new());
    let tallies = Arc::new(Tallies::default());
    let started = Instant::now();
    let interval = Duration::from_secs_f64(cfg.connections as f64 / cfg.rate.max(1e-9));
    let mut handles = Vec::with_capacity(cfg.connections);
    for conn in 0..cfg.connections {
        let cfg = cfg.clone();
        let hist = Arc::clone(&hist);
        let tallies = Arc::clone(&tallies);
        // Phase-shift each connection so arrivals interleave.
        let phase = interval.mul_f64(conn as f64 / cfg.connections.max(1) as f64);
        handles.push(std::thread::spawn(move || {
            connection_loop(&cfg, conn as u64, started + phase, interval, &hist, &tallies);
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed();
    let snap = hist.snapshot();
    let ok = tallies.ok.load(Ordering::Relaxed);
    LoadReport {
        offered_rate: cfg.rate,
        sent: tallies.sent.load(Ordering::Relaxed),
        ok,
        retryable_errors: tallies.retryable.load(Ordering::Relaxed),
        fatal_errors: tallies.fatal.load(Ordering::Relaxed),
        io_errors: tallies.io.load(Ordering::Relaxed),
        acked_commits: tallies.acked.load(Ordering::Relaxed),
        latency: snap,
        achieved_rate: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        elapsed,
    }
}

fn connection_loop(
    cfg: &LoadConfig,
    conn: u64,
    first_tick: Instant,
    interval: Duration,
    hist: &Histogram,
    tallies: &Tallies,
) {
    let mut rng = Rng::new(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(conn));
    let mut client = Client::connect_with_timeout(&cfg.addr, cfg.timeout).ok();
    let deadline = first_tick + cfg.duration;
    let mut tick = 0u64;
    loop {
        let scheduled = first_tick + interval.mul_f64(tick as f64);
        tick += 1;
        if scheduled >= deadline {
            return;
        }
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        // Open loop: if we are *behind* schedule we do not skip ticks; the
        // backlog shows up as latency, which is the point.
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect_with_timeout(&cfg.addr, cfg.timeout) {
                Ok(c) => {
                    client = Some(c);
                    client.as_mut().unwrap()
                }
                Err(_) => {
                    tallies.io.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            },
        };
        let req = pick_op(cfg, &mut rng);
        tallies.sent.fetch_add(1, Ordering::Relaxed);
        match c.request(&req) {
            Ok(resp) => {
                hist.record(scheduled.elapsed().as_micros() as u64);
                match resp {
                    Response::Err { code, .. } => {
                        if code.is_retryable() {
                            tallies.retryable.fetch_add(1, Ordering::Relaxed);
                        } else {
                            tallies.fatal.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Response::Committed { .. } => {
                        tallies.ok.fetch_add(1, Ordering::Relaxed);
                        tallies.acked.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        tallies.ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                tallies.io.fetch_add(1, Ordering::Relaxed);
                client = None; // force reconnect next tick
            }
        }
    }
}

fn pick_op(cfg: &LoadConfig, rng: &mut Rng) -> Request {
    let read = (rng.below(1_000_000) as f64) < cfg.read_fraction * 1_000_000.0;
    if read {
        let branch = rng.below(cfg.branches.max(1) as u64) as i64;
        if rng.below(2) == 0 {
            Request::ViewRead {
                view: txview_workload::bank::VIEW.into(),
                group: vec![Value::Int(branch)],
            }
        } else {
            Request::ViewAvg {
                view: txview_workload::bank::VIEW.into(),
                group: vec![Value::Int(branch)],
                agg_idx: 0,
            }
        }
    } else {
        let account = rng.below(cfg.accounts.max(1) as u64) as i64;
        let delta = rng.range_inclusive(-5, 5);
        Request::Deposit { account, delta }
    }
}

/// Shared per-account ack ledger for drain/kill torture sweeps: clients
/// deposit `+1` into *private* accounts and record each ack here, so after
/// recovery `balance(account) == acks(account)` is an exact oracle for
/// "every acked commit survived" and `balance − acks ∈ {0, 1}` bounds the
/// in-flight window of a graceful drain.
#[derive(Default)]
pub struct AckLedger {
    acks: Mutex<std::collections::HashMap<i64, u64>>,
}

impl AckLedger {
    /// Fresh empty ledger.
    pub fn new() -> AckLedger {
        AckLedger::default()
    }

    /// Record one acked deposit into `account`.
    pub fn record(&self, account: i64) {
        *self.acks.lock().entry(account).or_insert(0) += 1;
    }

    /// Acks recorded for `account`.
    pub fn acked(&self, account: i64) -> u64 {
        self.acks.lock().get(&account).copied().unwrap_or(0)
    }

    /// Total acks across all accounts.
    pub fn total(&self) -> u64 {
        self.acks.lock().values().sum()
    }
}
