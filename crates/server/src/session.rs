//! Per-session request execution.
//!
//! A session owns at most one open [`Transaction`]. The server's executor
//! guarantees at most one request per session is in flight at a time, so
//! the `&mut` borrow discipline of the engine API holds by construction —
//! a session is single-threaded even though the worker pool is shared.
//!
//! Failure handling follows the engine's own convention (see
//! `Database::run_txn`): any error surfaced while a transaction is open
//! rolls that transaction back before the error response is sent, so a
//! session is never left holding locks after telling its client the
//! operation failed. The client decides retry-vs-abort from the wire
//! error code alone.

use crate::wire::{Request, Response};
use std::sync::Arc;
use txview_common::{Error, Value};
use txview_engine::{Database, HealthState, IsolationLevel};
use txview_txn::Transaction;

/// Decode the wire isolation byte.
fn isolation_of(b: u8) -> Option<IsolationLevel> {
    match b {
        0 => Some(IsolationLevel::ReadCommitted),
        1 => Some(IsolationLevel::Serializable),
        2 => Some(IsolationLevel::Snapshot),
        _ => None,
    }
}

/// Transaction state carried by one connection across requests.
pub struct Session {
    db: Arc<Database>,
    txn: Option<Transaction>,
    /// Base table targeted by [`Request::Deposit`]; the bank schema's
    /// `accounts` unless reconfigured.
    pub deposit_table: String,
}

/// What the server should do with the connection after a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Keep serving this session.
    Keep,
    /// Send the response, then close the connection (fenced engine).
    Close,
}

impl Session {
    /// Fresh session with no open transaction.
    pub fn new(db: Arc<Database>) -> Session {
        Session { db, txn: None, deposit_table: "accounts".into() }
    }

    /// True if the session holds an open transaction.
    pub fn has_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Roll back the open transaction, if any (connection teardown).
    pub fn abort(&mut self) {
        if let Some(mut txn) = self.txn.take() {
            if txn.is_active() {
                let _ = self.db.rollback(&mut txn);
            }
        }
    }

    /// Execute one request, returning the response and whether the
    /// connection should stay open.
    pub fn execute(&mut self, req: Request) -> (Response, Disposition) {
        let resp = self.execute_inner(req);
        // A fenced engine serves nothing further: after reporting it once,
        // the session closes so clients fail over instead of spinning.
        let disp = match &resp {
            Response::Err { code, .. } if *code == crate::wire::WireErrorCode::Fenced => {
                Disposition::Close
            }
            _ => Disposition::Keep,
        };
        (resp, disp)
    }

    fn execute_inner(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Begin { isolation } => self.do_begin(isolation),
            Request::Commit => self.do_commit(),
            Request::Rollback => self.do_rollback(),
            Request::Deposit { account, delta } => self.do_deposit(account, delta),
            Request::ViewRead { view, group } => self.do_view_read(&view, &group),
            Request::ViewAvg { view, group, agg_idx } => {
                self.do_view_avg(&view, &group, agg_idx as usize)
            }
            Request::Metrics => {
                let snap = self.db.metrics_snapshot();
                let mut text = String::new();
                for (name, v) in &snap.counters {
                    text.push_str(&format!("{name}={v}\n"));
                }
                for (name, v) in &snap.gauges {
                    text.push_str(&format!("{name}={v}\n"));
                }
                Response::Metrics { text }
            }
        }
    }

    fn do_begin(&mut self, isolation: u8) -> Response {
        let Some(iso) = isolation_of(isolation) else {
            return Response::from_error(&Error::invalid(format!(
                "unknown isolation level {isolation}"
            )));
        };
        if self.txn.is_some() {
            return Response::from_error(&Error::invalid(
                "session already has an open transaction",
            ));
        }
        // Admission for *write intent* happens at the DML ops (the engine
        // sheds there); Begin itself is refused only when fenced.
        if self.db.health().state() == HealthState::Fenced {
            return Response::from_error(&Error::Fenced {
                reason: self.db.health().reason(),
            });
        }
        self.txn = Some(self.db.begin(iso));
        Response::Ok
    }

    fn do_commit(&mut self) -> Response {
        let Some(mut txn) = self.txn.take() else {
            return Response::from_error(&Error::invalid("commit without a transaction"));
        };
        match self.db.commit(&mut txn) {
            Ok(lsn) => Response::Committed { lsn: lsn.0 },
            Err(e) => {
                if txn.is_active() {
                    let _ = self.db.rollback(&mut txn);
                }
                Response::from_error(&e)
            }
        }
    }

    fn do_rollback(&mut self) -> Response {
        let Some(mut txn) = self.txn.take() else {
            return Response::from_error(&Error::invalid("rollback without a transaction"));
        };
        match self.db.rollback(&mut txn) {
            Ok(()) => Response::Ok,
            Err(e) => Response::from_error(&e),
        }
    }

    fn do_deposit(&mut self, account: i64, delta: i64) -> Response {
        let table = self.deposit_table.clone();
        let apply = |db: &Database, txn: &mut Transaction| {
            db.update_with(txn, &table, &[Value::Int(account)], |r| {
                let mut out = r.clone();
                let bal = r.get(2).as_int().unwrap_or(0);
                out.set(2, Value::Int(bal + delta));
                out
            })
        };
        if let Some(txn) = self.txn.as_mut() {
            // Buffered in the open transaction; durable at Commit.
            match apply(&self.db, txn) {
                Ok(()) => Response::Ok,
                Err(e) => {
                    self.abort_on(&e);
                    Response::from_error(&e)
                }
            }
        } else {
            // Autocommit: one transaction per deposit, ack carries the LSN.
            let mut txn = self.db.begin(IsolationLevel::ReadCommitted);
            match apply(&self.db, &mut txn).and_then(|()| self.db.commit(&mut txn)) {
                Ok(lsn) => Response::Committed { lsn: lsn.0 },
                Err(e) => {
                    if txn.is_active() {
                        let _ = self.db.rollback(&mut txn);
                    }
                    Response::from_error(&e)
                }
            }
        }
    }

    fn do_view_read(&mut self, view: &str, group: &[Value]) -> Response {
        self.with_read_txn(|db, txn| {
            db.view_lookup(txn, view, group).map(|row| match row {
                Some(r) => Response::Row { present: true, values: r.values().to_vec() },
                None => Response::Row { present: false, values: vec![] },
            })
        })
    }

    fn do_view_avg(&mut self, view: &str, group: &[Value], agg_idx: usize) -> Response {
        self.with_read_txn(|db, txn| {
            db.view_avg(txn, view, group, agg_idx).map(|avg| match avg {
                // SQL NULL (empty/invisible group) travels as absent.
                Value::Float(v) => Response::Avg { present: true, value: v },
                _ => Response::Avg { present: false, value: 0.0 },
            })
        })
    }

    /// Run a read in the session's open transaction, or in an ephemeral
    /// ReadCommitted transaction when none is open. Reads stay served while
    /// the engine is degraded (readers commit no-force).
    fn with_read_txn(
        &mut self,
        body: impl FnOnce(&Database, &mut Transaction) -> txview_common::Result<Response>,
    ) -> Response {
        if let Some(txn) = self.txn.as_mut() {
            match body(&self.db, txn) {
                Ok(resp) => resp,
                Err(e) => {
                    self.abort_on(&e);
                    Response::from_error(&e)
                }
            }
        } else {
            let mut txn = self.db.begin(IsolationLevel::ReadCommitted);
            let out = body(&self.db, &mut txn);
            let fin = match out {
                Ok(resp) => self.db.commit(&mut txn).map(|_| resp),
                Err(e) => Err(e),
            };
            match fin {
                Ok(resp) => resp,
                Err(e) => {
                    if txn.is_active() {
                        let _ = self.db.rollback(&mut txn);
                    }
                    Response::from_error(&e)
                }
            }
        }
    }

    /// Engine convention: a failed op inside an open transaction aborts it
    /// (deadlock victims *must* roll back; anything else must not keep
    /// holding locks behind an error the client may never retry).
    fn abort_on(&mut self, _e: &Error) {
        if let Some(mut txn) = self.txn.take() {
            if txn.is_active() {
                let _ = self.db.rollback(&mut txn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireErrorCode;
    use txview_workload::bank::{Bank, BankConfig};

    fn bank() -> Bank {
        Bank::setup(BankConfig { accounts: 64, branches: 4, ..Default::default() }).unwrap()
    }

    #[test]
    fn autocommit_deposit_acks_with_lsn() {
        let bank = bank();
        let mut s = Session::new(Arc::clone(&bank.db));
        match s.execute(Request::Deposit { account: 3, delta: 5 }).0 {
            Response::Committed { lsn } => assert!(lsn > 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!s.has_txn());
    }

    #[test]
    fn explicit_txn_buffers_then_commits() {
        let bank = bank();
        let mut s = Session::new(Arc::clone(&bank.db));
        assert_eq!(s.execute(Request::Begin { isolation: 0 }).0, Response::Ok);
        assert_eq!(s.execute(Request::Deposit { account: 0, delta: 7 }).0, Response::Ok);
        match s.execute(Request::Commit).0 {
            Response::Committed { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        // Branch 0's SUM moved by 7.
        match s
            .execute(Request::ViewRead {
                view: txview_workload::bank::VIEW.into(),
                group: vec![Value::Int(0)],
            })
            .0
        {
            Response::Row { present: true, values } => {
                let per_branch = 64 / 4;
                assert_eq!(values[2], Value::Int(per_branch * 1000 + 7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rollback_discards_buffered_deposit() {
        let bank = bank();
        let mut s = Session::new(Arc::clone(&bank.db));
        s.execute(Request::Begin { isolation: 0 });
        s.execute(Request::Deposit { account: 1, delta: 100 });
        assert_eq!(s.execute(Request::Rollback).0, Response::Ok);
        match s
            .execute(Request::ViewRead {
                view: txview_workload::bank::VIEW.into(),
                group: vec![Value::Int(1)],
            })
            .0
        {
            Response::Row { present: true, values } => {
                assert_eq!(values[2], Value::Int((64 / 4) * 1000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn view_avg_is_sum_over_count() {
        let bank = bank();
        let mut s = Session::new(Arc::clone(&bank.db));
        match s
            .execute(Request::ViewAvg {
                view: txview_workload::bank::VIEW.into(),
                group: vec![Value::Int(2)],
                agg_idx: 0,
            })
            .0
        {
            Response::Avg { present: true, value } => assert_eq!(value, 1000.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn protocol_misuse_is_fatal_not_retryable() {
        let bank = bank();
        let mut s = Session::new(Arc::clone(&bank.db));
        match s.execute(Request::Commit).0 {
            Response::Err { code, .. } => {
                assert_eq!(code, WireErrorCode::InvalidOperation);
                assert!(!code.is_retryable());
            }
            other => panic!("unexpected {other:?}"),
        }
        s.execute(Request::Begin { isolation: 0 });
        match s.execute(Request::Begin { isolation: 0 }).0 {
            Response::Err { code, .. } => assert_eq!(code, WireErrorCode::InvalidOperation),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degraded_engine_sheds_writers_with_retryable_code_but_serves_reads() {
        let bank = bank();
        bank.db.health().degrade("test outage");
        let mut s = Session::new(Arc::clone(&bank.db));
        match s.execute(Request::Deposit { account: 0, delta: 1 }).0 {
            Response::Err { code, .. } => {
                assert_eq!(code, WireErrorCode::Degraded);
                assert!(code.is_retryable());
            }
            other => panic!("unexpected {other:?}"),
        }
        match s
            .execute(Request::ViewRead {
                view: txview_workload::bank::VIEW.into(),
                group: vec![Value::Int(0)],
            })
            .0
        {
            Response::Row { present: true, .. } => {}
            other => panic!("reads must survive degradation: {other:?}"),
        }
        bank.db.health().heal();
    }

    #[test]
    fn fenced_engine_closes_the_session() {
        let bank = bank();
        bank.db.health().fence("test corruption");
        let mut s = Session::new(Arc::clone(&bank.db));
        let (resp, disp) = s.execute(Request::Begin { isolation: 0 });
        match resp {
            Response::Err { code, .. } => {
                assert_eq!(code, WireErrorCode::Fenced);
                assert!(!code.is_retryable());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(disp, Disposition::Close);
    }

    #[test]
    fn failed_op_aborts_the_open_transaction() {
        let bank = bank();
        let mut s = Session::new(Arc::clone(&bank.db));
        s.execute(Request::Begin { isolation: 0 });
        match s
            .execute(Request::ViewRead { view: "no_such_view".into(), group: vec![] })
            .0
        {
            Response::Err { code, .. } => assert_eq!(code, WireErrorCode::Schema),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!s.has_txn(), "error must roll back the open transaction");
    }
}
