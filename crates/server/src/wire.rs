//! The binary wire protocol.
//!
//! Framing mirrors the replication channel (DESIGN §12): every message is
//!
//! ```text
//! [u32 len][payload: len bytes][u64 checksum64(payload)]
//! ```
//!
//! little-endian throughout, with `len` capped at [`MAX_FRAME`] so a
//! garbage prefix cannot make the reader allocate gigabytes. Decoding is
//! strictly non-panicking: torn, truncated, or corrupted input yields
//! [`Error::Corruption`], and an incomplete buffer yields `Ok(None)` so a
//! streaming reader can simply wait for more bytes.
//!
//! Payloads are [`Request`]/[`Response`] messages encoded with the same
//! hand-rolled codec the storage layer uses (`txview_common::codec`): a
//! one-byte opcode followed by the fields. Unknown opcodes and trailing
//! bytes are corruption — the protocol has no optional fields, so a strict
//! decode catches version skew instead of misinterpreting it.
//!
//! Errors cross the wire as a **stable numeric code** ([`WireErrorCode`])
//! plus a human-readable message. Clients branch on the code's
//! [`retryability`](WireErrorCode::is_retryable) — never on the message
//! text, which is explicitly not part of the protocol contract.

use txview_common::codec::{checksum64, Reader, Writer};
use txview_common::{Error, Result, Value};

/// Hard cap on a frame payload. Large enough for a metrics dump, small
/// enough that a hostile or corrupt length prefix cannot balloon memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes of framing overhead around a payload (`u32` len + `u64` checksum).
pub const FRAME_OVERHEAD: usize = 4 + 8;

// ---------------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------------

/// Encode `payload` into a self-delimiting checksummed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame payload exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((payload, consumed)))` — a complete, checksum-valid frame;
///   the caller should drop `consumed` bytes from the front of its buffer.
/// * `Ok(None)` — the buffer holds a valid prefix of a frame; read more.
/// * `Err(Corruption)` — oversized length prefix or checksum mismatch; the
///   stream is unrecoverable and the connection must be dropped.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(Error::corruption(format!("frame length {len} exceeds cap {MAX_FRAME}")));
    }
    let total = 4 + len + 8;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[4..4 + len];
    let want = u64::from_le_bytes(buf[4 + len..total].try_into().unwrap());
    let got = checksum64(payload);
    if want != got {
        return Err(Error::corruption(format!(
            "frame checksum mismatch: stored {want:#x}, computed {got:#x}"
        )));
    }
    Ok(Some((payload.to_vec(), total)))
}

// ---------------------------------------------------------------------------
// error taxonomy
// ---------------------------------------------------------------------------

/// Stable wire error codes. Retryable codes are `< 100`; fatal codes are
/// `>= 100`. The numeric values are part of the protocol and must never be
/// reused or renumbered — add new codes at the end of each band.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum WireErrorCode {
    /// Transient I/O below the engine; safe to re-issue.
    IoTransient = 1,
    /// Engine is `DegradedReadOnly`: writes shed, reads still served.
    Degraded = 2,
    /// Transaction chosen as deadlock victim; retry the whole transaction.
    DeadlockVictim = 3,
    /// Lock wait exceeded the timeout; retry the whole transaction.
    LockTimeout = 4,
    /// Snapshot-rule conflict with a committed peer; retry.
    SerializationConflict = 5,
    /// ELR commit dependency failed; reader aborts and may retry.
    CommitDependency = 6,
    /// Server-side admission control shed this request/connection; retry
    /// (ideally after backoff) — the engine itself is healthy.
    Overloaded = 7,

    /// Engine fenced: no service until restart + recovery.
    Fenced = 100,
    /// Runtime value/aggregate type mismatch (a client bug).
    TypeMismatch = 101,
    /// Catalog-level schema error (unknown view/column, bad agg index).
    Schema = 102,
    /// On-disk or on-wire bytes failed validation.
    Corruption = 103,
    /// Terminal I/O error.
    Io = 104,
    /// Missing page/row/object.
    NotFound = 105,
    /// Unique-key violation.
    DuplicateKey = 106,
    /// API misuse (e.g. commit without a transaction).
    InvalidOperation = 107,
    /// Transaction was rolled back and cannot continue.
    RolledBack = 108,
    /// Buffer pool exhausted.
    BufferExhausted = 109,
    /// Record too large for a page.
    RecordTooLarge = 110,
    /// Wire-protocol violation (bad opcode, trailing bytes, bad frame).
    Protocol = 111,
    /// Anything the mapping does not know — fatal by construction.
    Internal = 112,
}

impl WireErrorCode {
    /// Clients branch on this, not on message text: `true` means the same
    /// request (or transaction) may succeed if re-issued.
    pub fn is_retryable(self) -> bool {
        (self as u16) < 100
    }

    /// Decode a code received off the wire.
    pub fn from_u16(v: u16) -> Option<WireErrorCode> {
        use WireErrorCode::*;
        Some(match v {
            1 => IoTransient,
            2 => Degraded,
            3 => DeadlockVictim,
            4 => LockTimeout,
            5 => SerializationConflict,
            6 => CommitDependency,
            7 => Overloaded,
            100 => Fenced,
            101 => TypeMismatch,
            102 => Schema,
            103 => Corruption,
            104 => Io,
            105 => NotFound,
            106 => DuplicateKey,
            107 => InvalidOperation,
            108 => RolledBack,
            109 => BufferExhausted,
            110 => RecordTooLarge,
            111 => Protocol,
            112 => Internal,
            _ => return None,
        })
    }

    /// Map an engine error to its wire code. Every `Error` variant has an
    /// explicit arm — a new variant fails to compile here rather than
    /// silently leaking as `Internal`.
    pub fn of(e: &Error) -> WireErrorCode {
        match e {
            Error::IoTransient(_) => WireErrorCode::IoTransient,
            Error::Degraded { .. } => WireErrorCode::Degraded,
            Error::DeadlockVictim { .. } => WireErrorCode::DeadlockVictim,
            Error::LockTimeout { .. } => WireErrorCode::LockTimeout,
            Error::SerializationConflict(_) => WireErrorCode::SerializationConflict,
            Error::CommitDependency { .. } => WireErrorCode::CommitDependency,
            Error::Fenced { .. } => WireErrorCode::Fenced,
            Error::TypeMismatch { .. } => WireErrorCode::TypeMismatch,
            Error::Schema(_) => WireErrorCode::Schema,
            Error::Corruption(_) => WireErrorCode::Corruption,
            Error::Io(_) => WireErrorCode::Io,
            Error::NotFound(_) => WireErrorCode::NotFound,
            Error::DuplicateKey(_) => WireErrorCode::DuplicateKey,
            Error::InvalidOperation(_) => WireErrorCode::InvalidOperation,
            Error::RolledBack { .. } => WireErrorCode::RolledBack,
            Error::BufferExhausted => WireErrorCode::BufferExhausted,
            Error::RecordTooLarge { .. } => WireErrorCode::RecordTooLarge,
        }
    }
}

// ---------------------------------------------------------------------------
// messages
// ---------------------------------------------------------------------------

/// Client → server operations.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check; answered with [`Response::Pong`] even while draining.
    Ping,
    /// Open a transaction on this session (`isolation`: 0 = ReadCommitted,
    /// 1 = Serializable, 2 = Snapshot). At most one per session.
    Begin { isolation: u8 },
    /// Commit the session's open transaction.
    Commit,
    /// Roll back the session's open transaction.
    Rollback,
    /// Escrow increment: adjust `account`'s balance by `delta` (the bank
    /// schema's base-table update that drives view maintenance). Inside an
    /// open transaction it buffers (→ [`Response::Ok`]); without one it
    /// autocommits (→ [`Response::Committed`]).
    Deposit { account: i64, delta: i64 },
    /// Point-read one view row by group key.
    ViewRead { view: String, group: Vec<Value> },
    /// Read-time AVG = SUM/COUNT of aggregate `agg_idx`.
    ViewAvg { view: String, group: Vec<Value>, agg_idx: u32 },
    /// Engine + server metrics, rendered as `name=value` lines.
    Metrics,
}

/// Server → client replies.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Generic success (begin, rollback, buffered deposit).
    Ok,
    /// Commit became durable at `lsn`.
    Committed { lsn: u64 },
    /// A view row (absent group ⇒ `present = false`, empty values).
    Row { present: bool, values: Vec<Value> },
    /// An AVG value (absent group ⇒ `present = false`).
    Avg { present: bool, value: f64 },
    /// Rendered metrics text.
    Metrics { text: String },
    /// The operation failed; branch on `code.is_retryable()`.
    Err { code: WireErrorCode, msg: String },
}

const REQ_PING: u8 = 1;
const REQ_BEGIN: u8 = 2;
const REQ_COMMIT: u8 = 3;
const REQ_ROLLBACK: u8 = 4;
const REQ_DEPOSIT: u8 = 5;
const REQ_VIEW_READ: u8 = 6;
const REQ_VIEW_AVG: u8 = 7;
const REQ_METRICS: u8 = 8;

const RESP_PONG: u8 = 1;
const RESP_OK: u8 = 2;
const RESP_COMMITTED: u8 = 3;
const RESP_ROW: u8 = 4;
const RESP_AVG: u8 = 5;
const RESP_METRICS: u8 = 6;
const RESP_ERR: u8 = 7;

fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => {
            w.u8(0);
        }
        Value::Int(i) => {
            w.u8(1).i64(*i);
        }
        Value::Float(f) => {
            w.u8(2).f64(*f);
        }
        Value::Str(s) => {
            w.u8(3).str(s);
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Float(r.f64()?),
        3 => Value::Str(r.str()?.to_string()),
        t => return Err(Error::corruption(format!("invalid value tag {t}"))),
    })
}

fn put_values(w: &mut Writer, vs: &[Value]) {
    w.u32(vs.len() as u32);
    for v in vs {
        put_value(w, v);
    }
}

fn get_values(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    let n = r.u32()? as usize;
    // A value is at least 1 byte; bound the pre-allocation by what the
    // buffer could actually hold so a lying count cannot balloon memory.
    if n > r.remaining() {
        return Err(Error::corruption(format!("value count {n} exceeds payload")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_value(r)?);
    }
    Ok(out)
}

fn finish(r: &Reader<'_>) -> Result<()> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(Error::corruption(format!("{} trailing bytes after message", r.remaining())))
    }
}

impl Request {
    /// Encode to a payload (not yet framed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Ping => {
                w.u8(REQ_PING);
            }
            Request::Begin { isolation } => {
                w.u8(REQ_BEGIN).u8(*isolation);
            }
            Request::Commit => {
                w.u8(REQ_COMMIT);
            }
            Request::Rollback => {
                w.u8(REQ_ROLLBACK);
            }
            Request::Deposit { account, delta } => {
                w.u8(REQ_DEPOSIT).i64(*account).i64(*delta);
            }
            Request::ViewRead { view, group } => {
                w.u8(REQ_VIEW_READ).str(view);
                put_values(&mut w, group);
            }
            Request::ViewAvg { view, group, agg_idx } => {
                w.u8(REQ_VIEW_AVG).str(view);
                put_values(&mut w, group);
                w.u32(*agg_idx);
            }
            Request::Metrics => {
                w.u8(REQ_METRICS);
            }
        }
        w.into_bytes()
    }

    /// Decode a payload. Strict: unknown opcode or trailing bytes fail.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            REQ_PING => Request::Ping,
            REQ_BEGIN => Request::Begin { isolation: r.u8()? },
            REQ_COMMIT => Request::Commit,
            REQ_ROLLBACK => Request::Rollback,
            REQ_DEPOSIT => Request::Deposit { account: r.i64()?, delta: r.i64()? },
            REQ_VIEW_READ => {
                let view = r.str()?.to_string();
                Request::ViewRead { view, group: get_values(&mut r)? }
            }
            REQ_VIEW_AVG => {
                let view = r.str()?.to_string();
                let group = get_values(&mut r)?;
                Request::ViewAvg { view, group, agg_idx: r.u32()? }
            }
            REQ_METRICS => Request::Metrics,
            op => return Err(Error::corruption(format!("unknown request opcode {op}"))),
        };
        finish(&r)?;
        Ok(req)
    }
}

impl Response {
    /// Encode to a payload (not yet framed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Pong => {
                w.u8(RESP_PONG);
            }
            Response::Ok => {
                w.u8(RESP_OK);
            }
            Response::Committed { lsn } => {
                w.u8(RESP_COMMITTED).u64(*lsn);
            }
            Response::Row { present, values } => {
                w.u8(RESP_ROW).bool(*present);
                put_values(&mut w, values);
            }
            Response::Avg { present, value } => {
                w.u8(RESP_AVG).bool(*present).f64(*value);
            }
            Response::Metrics { text } => {
                w.u8(RESP_METRICS).str(text);
            }
            Response::Err { code, msg } => {
                w.u8(RESP_ERR).u16(*code as u16).str(msg);
            }
        }
        w.into_bytes()
    }

    /// Decode a payload. Strict: unknown opcode or trailing bytes fail.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            RESP_PONG => Response::Pong,
            RESP_OK => Response::Ok,
            RESP_COMMITTED => Response::Committed { lsn: r.u64()? },
            RESP_ROW => {
                let present = r.bool()?;
                Response::Row { present, values: get_values(&mut r)? }
            }
            RESP_AVG => Response::Avg { present: r.bool()?, value: r.f64()? },
            RESP_METRICS => Response::Metrics { text: r.str()?.to_string() },
            RESP_ERR => {
                let raw = r.u16()?;
                let code = WireErrorCode::from_u16(raw)
                    .ok_or_else(|| Error::corruption(format!("unknown error code {raw}")))?;
                Response::Err { code, msg: r.str()?.to_string() }
            }
            op => return Err(Error::corruption(format!("unknown response opcode {op}"))),
        };
        finish(&r)?;
        Ok(resp)
    }

    /// Build the error response for an engine failure.
    pub fn from_error(e: &Error) -> Response {
        Response::Err { code: WireErrorCode::of(e), msg: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = encode_frame(b"hello");
        let (payload, used) = decode_frame(&f).unwrap().unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(used, f.len());
    }

    #[test]
    fn incomplete_frames_wait_for_more() {
        let f = encode_frame(b"payload");
        for cut in 0..f.len() {
            assert!(decode_frame(&f[..cut]).unwrap().is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn flipped_byte_is_corruption() {
        let mut f = encode_frame(b"payload");
        f[5] ^= 0x40;
        assert!(matches!(decode_frame(&f), Err(Error::Corruption(_))));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        assert!(matches!(decode_frame(&buf), Err(Error::Corruption(_))));
    }

    #[test]
    fn request_roundtrip_all_ops() {
        let reqs = vec![
            Request::Ping,
            Request::Begin { isolation: 2 },
            Request::Commit,
            Request::Rollback,
            Request::Deposit { account: -3, delta: i64::MIN },
            Request::ViewRead {
                view: "branch_balance".into(),
                group: vec![Value::Int(7), Value::Str("x".into()), Value::Null],
            },
            Request::ViewAvg { view: "v".into(), group: vec![Value::Float(1.5)], agg_idx: 0 },
            Request::Metrics,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip_all_ops() {
        let resps = vec![
            Response::Pong,
            Response::Ok,
            Response::Committed { lsn: u64::MAX },
            Response::Row { present: true, values: vec![Value::Int(1), Value::Float(2.0)] },
            Response::Row { present: false, values: vec![] },
            Response::Avg { present: true, value: -0.5 },
            Response::Metrics { text: "a=1\nb=2\n".into() },
            Response::Err { code: WireErrorCode::Degraded, msg: "shed".into() },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut p = Request::Ping.encode();
        p.push(0);
        assert!(Request::decode(&p).is_err());
        let mut p = Response::Ok.encode();
        p.push(9);
        assert!(Response::decode(&p).is_err());
    }

    #[test]
    fn error_codes_stable_and_partitioned() {
        // The numeric values are wire contract: spot-check both bands and
        // the roundtrip through from_u16.
        assert_eq!(WireErrorCode::IoTransient as u16, 1);
        assert_eq!(WireErrorCode::Overloaded as u16, 7);
        assert_eq!(WireErrorCode::Fenced as u16, 100);
        assert_eq!(WireErrorCode::Internal as u16, 112);
        for v in 0..=200u16 {
            if let Some(c) = WireErrorCode::from_u16(v) {
                assert_eq!(c as u16, v);
                assert_eq!(c.is_retryable(), v < 100);
            }
        }
        assert!(WireErrorCode::from_u16(0).is_none());
        assert!(WireErrorCode::from_u16(99).is_none());
    }

    #[test]
    fn engine_errors_map_to_matching_retryability() {
        use txview_common::ids::TxnId;
        let cases: Vec<Error> = vec![
            Error::IoTransient(std::io::Error::other("hiccup")),
            Error::Degraded { reason: "log".into() },
            Error::DeadlockVictim { txn: TxnId(1) },
            Error::LockTimeout { txn: TxnId(1), what: "k".into() },
            Error::SerializationConflict("w".into()),
            Error::CommitDependency { txn: TxnId(2), pred: TxnId(1) },
            Error::Fenced { reason: "corrupt".into() },
            Error::type_mismatch("SumInt", "Float"),
            Error::Schema("no such view".into()),
            Error::corruption("torn"),
            Error::Io(std::io::Error::other("dead")),
            Error::NotFound("row".into()),
            Error::DuplicateKey("pk".into()),
            Error::invalid("misuse"),
            Error::RolledBack { txn: TxnId(3), reason: "user".into() },
            Error::BufferExhausted,
            Error::RecordTooLarge { size: 9, max: 8 },
        ];
        for e in &cases {
            let code = WireErrorCode::of(e);
            assert_eq!(
                code.is_retryable(),
                e.is_retryable(),
                "retryability must survive the wire: {e:?} → {code:?}"
            );
        }
    }
}
