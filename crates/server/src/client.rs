//! Blocking wire-protocol client: one TCP connection, one request in
//! flight. Used by the load generator, the CI smoke, and the integration
//! tests; it is deliberately the simplest correct implementation of the
//! protocol so tests exercise the server, not a clever client.

use crate::wire::{self, Request, Response, WireErrorCode};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use txview_common::{Error, Result, Value};

/// A connected client.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connect with a default 10 s I/O timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with an explicit read/write timeout. A timeout (rather than
    /// blocking forever) is what lets load/torture clients observe a killed
    /// server as an error instead of hanging.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream, buf: Vec::new() })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        self.stream.write_all(&wire::encode_frame(&req.encode()))?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((payload, used)) = wire::decode_frame(&self.buf)? {
                self.buf.drain(..used);
                return Response::decode(&payload);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(Error::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Ping → Pong.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Open a transaction (0 = ReadCommitted, 1 = Serializable, 2 = Snapshot).
    pub fn begin(&mut self, isolation: u8) -> Result<()> {
        match self.request(&Request::Begin { isolation })? {
            Response::Ok => Ok(()),
            Response::Err { code, msg } => Err(wire_err(code, msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Commit the open transaction; returns the durable commit LSN.
    pub fn commit(&mut self) -> Result<u64> {
        match self.request(&Request::Commit)? {
            Response::Committed { lsn } => Ok(lsn),
            Response::Err { code, msg } => Err(wire_err(code, msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> Result<()> {
        match self.request(&Request::Rollback)? {
            Response::Ok => Ok(()),
            Response::Err { code, msg } => Err(wire_err(code, msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Deposit `delta` into `account`. Autocommits (returning `Some(lsn)`)
    /// without an open transaction; buffers (returning `None`) inside one.
    pub fn deposit(&mut self, account: i64, delta: i64) -> Result<Option<u64>> {
        match self.request(&Request::Deposit { account, delta })? {
            Response::Committed { lsn } => Ok(Some(lsn)),
            Response::Ok => Ok(None),
            Response::Err { code, msg } => Err(wire_err(code, msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Point-read a view row.
    pub fn view_read(&mut self, view: &str, group: Vec<Value>) -> Result<Option<Vec<Value>>> {
        match self.request(&Request::ViewRead { view: view.into(), group })? {
            Response::Row { present: true, values } => Ok(Some(values)),
            Response::Row { present: false, .. } => Ok(None),
            Response::Err { code, msg } => Err(wire_err(code, msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Read-time AVG over a view's SUM aggregate.
    pub fn view_avg(&mut self, view: &str, group: Vec<Value>, agg_idx: u32) -> Result<Option<f64>> {
        match self.request(&Request::ViewAvg { view: view.into(), group, agg_idx })? {
            Response::Avg { present: true, value } => Ok(Some(value)),
            Response::Avg { present: false, .. } => Ok(None),
            Response::Err { code, msg } => Err(wire_err(code, msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch rendered metrics.
    pub fn metrics(&mut self) -> Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            Response::Err { code, msg } => Err(wire_err(code, msg)),
            other => Err(unexpected(&other)),
        }
    }
}

/// Reconstruct a client-side `Error` from a wire error so callers keep
/// using `Error::is_retryable()` unchanged. The mapping is coarse on
/// purpose — only the retryability partition and the fenced/degraded
/// distinction are contractual.
pub fn wire_err(code: WireErrorCode, msg: String) -> Error {
    match code {
        WireErrorCode::Degraded => Error::Degraded { reason: msg },
        WireErrorCode::Fenced => Error::Fenced { reason: msg },
        c if c.is_retryable() => {
            Error::IoTransient(std::io::Error::other(format!("{c:?}: {msg}")))
        }
        c => Error::invalid(format!("{c:?}: {msg}")),
    }
}

fn unexpected(resp: &Response) -> Error {
    Error::corruption(format!("unexpected response type: {resp:?}"))
}
