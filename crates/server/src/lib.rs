//! TCP service layer for the txview engine (DESIGN §14).
//!
//! * [`wire`] — length-prefixed, checksummed frames carrying a compact
//!   binary request/response protocol with a stable error-code taxonomy.
//! * [`session`] — per-connection transaction state; one request in
//!   flight per session keeps the engine's `&mut Transaction` borrow
//!   discipline intact across a shared worker pool.
//! * [`server`] — accept/reader/worker threads, admission control wired
//!   to the engine health machine, bounded-queue backpressure, and the
//!   graceful-drain vs abortive-kill shutdown pair.
//! * [`client`] — the blocking reference client.
//! * [`load`] — the open-loop load generator behind E16.

pub mod client;
pub mod load;
pub mod server;
pub mod session;
pub mod wire;

pub use client::Client;
pub use load::{run_load, AckLedger, LoadConfig, LoadReport};
pub use server::{Server, ServerConfig, ServerKiller, ServerStats};
pub use session::Session;
pub use wire::{Request, Response, WireErrorCode};
