//! Open-loop load client (E16 front end + CI SLO smoke).
//!
//! ```text
//! run_load --addr 127.0.0.1:4471 --conns 8 --rate 2000 --secs 5
//! run_load --addr-file /tmp/addr --quick --slo-p99-ms 250
//! ```
//!
//! Prints a one-line report per run: offered vs achieved rate, p50/p95/p99
//! latency, error counts. With `--slo-p99-ms X` the exit code is non-zero
//! when the p99 exceeds the SLO or any fatal error was observed — that is
//! the CI gate.

use std::time::Duration;
use txview_server::{run_load, LoadConfig};

fn arg_val(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_val(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let addr = match arg_val(&args, "--addr") {
        Some(a) => a,
        None => {
            let path = arg_val(&args, "--addr-file").unwrap_or_else(|| {
                eprintln!("need --addr <host:port> or --addr-file <path>");
                std::process::exit(2);
            });
            // Poll for the server's address file (it may still be loading).
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                match std::fs::read_to_string(&path) {
                    Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                    _ if std::time::Instant::now() > deadline => {
                        eprintln!("timed out waiting for addr file {path}");
                        std::process::exit(2);
                    }
                    _ => std::thread::sleep(Duration::from_millis(100)),
                }
            }
        }
    };
    let cfg = LoadConfig {
        addr,
        connections: arg_num(&args, "--conns", if quick { 4 } else { 8 }),
        rate: arg_num(&args, "--rate", if quick { 300.0 } else { 2000.0 }),
        duration: Duration::from_secs_f64(arg_num(&args, "--secs", if quick { 2.0 } else { 10.0 })),
        read_fraction: arg_num(&args, "--read-fraction", 0.5),
        accounts: arg_num(&args, "--accounts", 4096),
        branches: arg_num(&args, "--branches", 8),
        seed: arg_num(&args, "--seed", 42),
        ..Default::default()
    };
    let slo_p99_ms: f64 = arg_num(&args, "--slo-p99-ms", 0.0);

    println!(
        "run_load: {} conns, offered {:.0} req/s for {:.1}s against {} ...",
        cfg.connections,
        cfg.rate,
        cfg.duration.as_secs_f64(),
        cfg.addr
    );
    let r = run_load(&cfg);
    println!(
        "offered {:.0}/s achieved {:.0}/s | sent {} ok {} acked {} | \
         p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms | retryable {} fatal {} io {}",
        r.offered_rate,
        r.achieved_rate,
        r.sent,
        r.ok,
        r.acked_commits,
        r.p50_ms(),
        r.latency.p95() as f64 / 1000.0,
        r.p99_ms(),
        r.retryable_errors,
        r.fatal_errors,
        r.io_errors,
    );

    if r.sent == 0 || r.ok == 0 {
        eprintln!("SLO FAIL: no successful requests");
        std::process::exit(1);
    }
    if r.fatal_errors > 0 {
        eprintln!("SLO FAIL: {} fatal (non-retryable) errors", r.fatal_errors);
        std::process::exit(1);
    }
    if slo_p99_ms > 0.0 && r.p99_ms() > slo_p99_ms {
        eprintln!("SLO FAIL: p99 {:.2}ms exceeds {slo_p99_ms}ms", r.p99_ms());
        std::process::exit(1);
    }
    println!("SLO OK");
}
