//! Standalone server binary: sets up the bank schema and serves it over
//! TCP until interrupted or `--serve-secs` elapses (then drains
//! gracefully and exits 0).
//!
//! ```text
//! txview_server --port 0 --addr-file /tmp/addr --serve-secs 10 \
//!     --pipeline --elr --sync-us 50
//! ```
//!
//! `--port 0` binds an ephemeral port; `--addr-file` publishes the bound
//! address for a coordinating script (the CI smoke starts the server in
//! the background and points `run_load` at the file).

use std::time::Duration;
use txview_server::{Server, ServerConfig};
use txview_workload::bank::{Bank, BankConfig};

fn arg_val(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_val(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let port: u16 = arg_num(&args, "--port", 0);
    let serve_secs: u64 = arg_num(&args, "--serve-secs", 0);
    let accounts: i64 = arg_num(&args, "--accounts", 4096);
    let branches: i64 = arg_num(&args, "--branches", 8);
    let sync_us: u64 = arg_num(&args, "--sync-us", 0);
    let workers: usize = arg_num(&args, "--workers", 4);
    let max_sessions: usize = arg_num(&args, "--max-sessions", 64);
    let queue_depth: usize = arg_num(&args, "--queue-depth", 128);
    let pipeline = args.iter().any(|a| a == "--pipeline");
    let elr = args.iter().any(|a| a == "--elr");
    let addr_file = arg_val(&args, "--addr-file");

    let bank = Bank::setup(BankConfig {
        accounts,
        branches,
        pipeline,
        elr,
        sync_latency_us: sync_us,
        ..Default::default()
    })
    .expect("bank setup");

    let cfg = ServerConfig {
        workers,
        max_sessions,
        queue_depth,
        ..Default::default()
    };
    let server = Server::start(bank.db.clone(), &format!("127.0.0.1:{port}"), cfg)
        .expect("server start");
    let addr = server.local_addr();
    println!("txview_server listening on {addr} (pipeline={pipeline} elr={elr} sync_us={sync_us})");
    if let Some(path) = addr_file {
        // Write via a temp file + rename so a polling reader never sees a
        // partial address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, addr.to_string()).expect("write addr file");
        std::fs::rename(&tmp, &path).expect("publish addr file");
    }

    if serve_secs > 0 {
        std::thread::sleep(Duration::from_secs(serve_secs));
        println!("serve window elapsed; draining ...");
        let stats = server.shutdown().expect("graceful shutdown");
        println!(
            "drained: accepted={} requests={} shed={} errors={}",
            stats.accepted, stats.requests, stats.shed_overloaded, stats.error_responses
        );
    } else {
        // Serve until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
