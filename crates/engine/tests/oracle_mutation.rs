//! Mutation check for the serializability oracle: weaken the lock
//! protocol in a way the paper forbids and prove the interleaving
//! explorer *notices*. An oracle that passes every correct schedule but
//! also passes broken ones is worthless; this test pins its teeth.
//!
//! Lives in its own test binary because the mutation switch is
//! process-global: no other test shares this process.

use txview_engine::interleave::{self, explore_dfs};
use txview_engine::MaintenanceMode;
use txview_lock::mode::mutation;

#[test]
fn e_compatible_with_s_mutation_is_caught() {
    let sc = interleave::escrow_vs_serializable_reader(MaintenanceMode::Escrow);

    // Control: the unmutated protocol is clean under full exploration.
    let clean = explore_dfs(&sc, 200_000);
    assert!(!clean.truncated);
    assert!(
        clean.violations.is_empty(),
        "protocol must be clean before mutating; first: {}",
        clean.violations[0].1
    );

    // Mutation: E becomes compatible with S, so the Serializable reader no
    // longer waits out in-flight escrow increments and can observe an
    // uncommitted delta. Some interleaving must now violate the oracle.
    mutation::set_e_compatible_with_s(true);
    let mutated = explore_dfs(&sc, 200_000);
    mutation::set_e_compatible_with_s(false);

    assert!(
        !mutated.violations.is_empty(),
        "oracle failed to flag any schedule under the E||S mutation \
         ({} schedules explored) — it would miss real protocol bugs",
        mutated.schedules
    );
    eprintln!(
        "mutated run: {} schedules, {} violations; first: {}",
        mutated.schedules,
        mutated.violations.len(),
        mutated.violations[0].1
    );
    // The flagged schedule must be replayable: re-running its decision
    // list (mutation re-enabled) reproduces a violation deterministically.
    let (choices, msg) = &mutated.violations[0];
    mutation::set_e_compatible_with_s(true);
    let (_, again) = interleave::replay(&sc, choices);
    mutation::set_e_compatible_with_s(false);
    assert!(
        !again.is_empty(),
        "violation {msg:?} did not reproduce from its choice list {choices:?}"
    );
}
