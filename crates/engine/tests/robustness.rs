//! Robustness under hostile conditions: tiny buffer pools (eviction storms
//! exercising the WAL rule), ghost cleanup racing live writers, derived
//! AVG reads, and repeated crash/cleanup interleavings.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{row, Value};
use txview_engine::{
    AggSpec, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};

fn items_schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("grp", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap()
}

fn setup_with_pool(pool_pages: usize) -> Arc<Database> {
    let db = Database::new_in_memory_with(pool_pages, Duration::from_secs(10));
    let t = db.create_table("items", items_schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "totals".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    db
}

#[test]
fn tiny_buffer_pool_eviction_storm() {
    // 12 frames for a working set of dozens of pages: every operation
    // churns the pool and forces WAL-before-data flushes.
    let db = setup_with_pool(12);
    for batch in 0..10i64 {
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for i in 0..100i64 {
            let id = batch * 100 + i;
            db.insert(&mut txn, "items", row![id, id % 7, 3i64]).unwrap();
        }
        db.commit(&mut txn).unwrap();
    }
    db.verify_view("totals").unwrap();
    assert_eq!(db.dump_table("items").unwrap().len(), 1000);
    // Crash + recover with the same tiny pool.
    db.crash_and_recover(0.5, 99).unwrap();
    db.verify_view("totals").unwrap();
}

#[test]
fn ghost_cleanup_races_live_writers() {
    let db = setup_with_pool(1024);
    // Preload groups that will be emptied and refilled.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 0..8i64 {
        db.insert(&mut txn, "items", row![g, g, 5i64]).unwrap();
    }
    db.commit(&mut txn).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    // Writers toggle rows (creating count-0 view rows constantly).
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = txview_common::rng::Rng::new(t);
            while !stop.load(Ordering::Relaxed) {
                let g = rng.below(8) as i64;
                let mut txn = db.begin(IsolationLevel::ReadCommitted);
                let r = match db.delete(&mut txn, "items", &[Value::Int(g)]) {
                    Ok(()) => Ok(()),
                    Err(txview_common::Error::NotFound(_)) => {
                        match db.insert(&mut txn, "items", row![g, g, 5i64]) {
                            Ok(()) | Err(txview_common::Error::DuplicateKey(_)) => Ok(()),
                            Err(e) => Err(e),
                        }
                    }
                    Err(e) => Err(e),
                }
                .and_then(|()| db.commit(&mut txn).map(|_| ()));
                if r.is_err() && txn.is_active() {
                    let _ = db.rollback(&mut txn);
                }
            }
        }));
    }
    // A cleaner thread sweeps continuously WHILE writers run.
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.run_ghost_cleanup().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    db.verify_view("totals").unwrap();
    // A final sweep leaves only live state behind.
    db.run_ghost_cleanup().unwrap();
    db.verify_view("totals").unwrap();
}

#[test]
fn derived_avg_reads() {
    let db = setup_with_pool(256);
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for (id, amount) in [(1i64, 10i64), (2, 20), (3, 33)] {
        db.insert(&mut txn, "items", row![id, 0i64, amount]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let avg = db.view_avg(&mut r, "totals", &[Value::Int(0)], 0).unwrap().unwrap();
    assert!((avg - 21.0).abs() < 1e-9);
    // Missing group → None; bad aggregate index → error.
    assert!(db.view_avg(&mut r, "totals", &[Value::Int(99)], 0).unwrap().is_none());
    assert!(db.view_avg(&mut r, "totals", &[Value::Int(0)], 5).is_err());
    db.commit(&mut r).unwrap();
}

#[test]
fn cleanup_then_crash_then_cleanup() {
    let db = setup_with_pool(512);
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 0..20i64 {
        db.insert(&mut txn, "items", row![g, g, 1i64]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    // Empty half the groups, clean some, crash mid-state, clean the rest.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 0..10i64 {
        db.delete(&mut txn, "items", &[Value::Int(g)]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    let first = db.run_ghost_cleanup().unwrap();
    assert!(first.removed > 0);
    db.crash_and_recover(0.7, 5).unwrap();
    db.verify_view("totals").unwrap();
    // The crash dropped the queue; cleanup must be re-derivable by a scan
    // (the queue is an optimization, not the source of truth) — here we
    // simply verify correctness holds and remaining rows can be re-queued
    // by future DML without issue.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 10..20i64 {
        db.delete(&mut txn, "items", &[Value::Int(g)]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    db.run_ghost_cleanup().unwrap();
    db.verify_view("totals").unwrap();
    assert!(db.dump_table("items").unwrap().is_empty());
}

#[test]
fn many_groups_split_view_tree_under_concurrency() {
    // Enough distinct groups that the VIEW index itself splits repeatedly
    // while escrow writers run — system transactions interleaving with
    // user transactions on the same tree.
    let db = setup_with_pool(2048);
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..400i64 {
                    let id = t as i64 * 10_000 + i;
                    let grp = id; // one group per row: maximal view growth
                    db.run_txn(IsolationLevel::ReadCommitted, 5, |txn| {
                        db.insert(txn, "items", row![id, grp, 2i64])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    db.verify_view("totals").unwrap();
    assert_eq!(db.dump_view("totals").unwrap().len(), 1600);
}
