//! Robustness under hostile conditions: tiny buffer pools (eviction storms
//! exercising the WAL rule), ghost cleanup racing live writers, derived
//! AVG reads, repeated crash/cleanup interleavings, and the health state
//! machine end-to-end (degrade → read-only service → probe-heal; fence →
//! restart-with-recovery).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::retry::RetryPolicy;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{row, Error, Value};
use txview_engine::{
    AggSpec, Database, HealthState, IsolationLevel, MaintenanceMode, Predicate, ViewSource,
    ViewSpec,
};
use txview_storage::fault::{FaultClock, FaultDisk, FaultSchedule};
use txview_wal::FaultLogStore;

fn items_schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("grp", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap()
}

fn setup_with_pool(pool_pages: usize) -> Arc<Database> {
    let db = Database::new_in_memory_with(pool_pages, Duration::from_secs(10));
    let t = db.create_table("items", items_schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "totals".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    db
}

#[test]
fn tiny_buffer_pool_eviction_storm() {
    // 12 frames for a working set of dozens of pages: every operation
    // churns the pool and forces WAL-before-data flushes.
    let db = setup_with_pool(12);
    for batch in 0..10i64 {
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for i in 0..100i64 {
            let id = batch * 100 + i;
            db.insert(&mut txn, "items", row![id, id % 7, 3i64]).unwrap();
        }
        db.commit(&mut txn).unwrap();
    }
    db.verify_view("totals").unwrap();
    assert_eq!(db.dump_table("items").unwrap().len(), 1000);
    // Crash + recover with the same tiny pool.
    db.crash_and_recover(0.5, 99).unwrap();
    db.verify_view("totals").unwrap();
}

#[test]
fn ghost_cleanup_races_live_writers() {
    let db = setup_with_pool(1024);
    // Preload groups that will be emptied and refilled.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 0..8i64 {
        db.insert(&mut txn, "items", row![g, g, 5i64]).unwrap();
    }
    db.commit(&mut txn).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    // Writers toggle rows (creating count-0 view rows constantly).
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = txview_common::rng::Rng::new(t);
            while !stop.load(Ordering::Relaxed) {
                let g = rng.below(8) as i64;
                let mut txn = db.begin(IsolationLevel::ReadCommitted);
                let r = match db.delete(&mut txn, "items", &[Value::Int(g)]) {
                    Ok(()) => Ok(()),
                    Err(txview_common::Error::NotFound(_)) => {
                        match db.insert(&mut txn, "items", row![g, g, 5i64]) {
                            Ok(()) | Err(txview_common::Error::DuplicateKey(_)) => Ok(()),
                            Err(e) => Err(e),
                        }
                    }
                    Err(e) => Err(e),
                }
                .and_then(|()| db.commit(&mut txn).map(|_| ()));
                if r.is_err() && txn.is_active() {
                    let _ = db.rollback(&mut txn);
                }
            }
        }));
    }
    // A cleaner thread sweeps continuously WHILE writers run.
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.run_ghost_cleanup().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    db.verify_view("totals").unwrap();
    // A final sweep leaves only live state behind.
    db.run_ghost_cleanup().unwrap();
    db.verify_view("totals").unwrap();
}

#[test]
fn derived_avg_reads() {
    let db = setup_with_pool(256);
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for (id, amount) in [(1i64, 10i64), (2, 20), (3, 33)] {
        db.insert(&mut txn, "items", row![id, 0i64, amount]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let avg = db.view_avg(&mut r, "totals", &[Value::Int(0)], 0).unwrap().as_float().unwrap();
    assert!((avg - 21.0).abs() < 1e-9);
    // Missing/empty group → SQL NULL; bad aggregate index → error.
    assert_eq!(db.view_avg(&mut r, "totals", &[Value::Int(99)], 0).unwrap(), Value::Null);
    assert!(db.view_avg(&mut r, "totals", &[Value::Int(0)], 5).is_err());
    db.commit(&mut r).unwrap();
}

/// A group *emptied by deletes* differs from a missing one: the stored row
/// lingers (count 0, a ghost awaiting cleanup) — AVG over it must still be
/// SQL NULL, not a division by zero and not the stale quotient, both
/// before and after the ghost is swept.
#[test]
fn avg_of_emptied_group_is_null() {
    let db = setup_with_pool(256);
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for (id, amount) in [(1i64, 10i64), (2, 20)] {
        db.insert(&mut txn, "items", row![id, 7i64, amount]).unwrap();
    }
    db.commit(&mut txn).unwrap();

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.delete(&mut txn, "items", &[Value::Int(1)]).unwrap();
    db.delete(&mut txn, "items", &[Value::Int(2)]).unwrap();
    db.commit(&mut txn).unwrap();

    let mut r = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(db.view_avg(&mut r, "totals", &[Value::Int(7)], 0).unwrap(), Value::Null);
    db.commit(&mut r).unwrap();

    // After ghost cleanup the row is gone entirely; still NULL.
    db.run_ghost_cleanup().unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(db.view_avg(&mut r, "totals", &[Value::Int(7)], 0).unwrap(), Value::Null);
    // And a refilled group averages only its live rows.
    db.commit(&mut r).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "items", row![3i64, 7i64, 12i64]).unwrap();
    db.commit(&mut txn).unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let avg = db.view_avg(&mut r, "totals", &[Value::Int(7)], 0).unwrap().as_float().unwrap();
    assert!((avg - 12.0).abs() < 1e-9);
    db.commit(&mut r).unwrap();
}

#[test]
fn cleanup_then_crash_then_cleanup() {
    let db = setup_with_pool(512);
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 0..20i64 {
        db.insert(&mut txn, "items", row![g, g, 1i64]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    // Empty half the groups, clean some, crash mid-state, clean the rest.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 0..10i64 {
        db.delete(&mut txn, "items", &[Value::Int(g)]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    let first = db.run_ghost_cleanup().unwrap();
    assert!(first.removed > 0);
    db.crash_and_recover(0.7, 5).unwrap();
    db.verify_view("totals").unwrap();
    // The crash dropped the queue; cleanup must be re-derivable by a scan
    // (the queue is an optimization, not the source of truth) — here we
    // simply verify correctness holds and remaining rows can be re-queued
    // by future DML without issue.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 10..20i64 {
        db.delete(&mut txn, "items", &[Value::Int(g)]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    db.run_ghost_cleanup().unwrap();
    db.verify_view("totals").unwrap();
    assert!(db.dump_table("items").unwrap().is_empty());
}

#[test]
fn persistent_outage_degrades_then_probe_heals() {
    // Engine over fault-injected parts; the write path dies for good at
    // event 0 and the engine must degrade to read-only service.
    let clock = FaultClock::new();
    let disk = FaultDisk::new(Arc::clone(&clock));
    let store = FaultLogStore::new(Arc::clone(&clock));
    let db = Database::with_parts(
        Arc::new(disk.clone()),
        Box::new(store.clone()),
        64,
        Duration::from_secs(2),
    )
    .unwrap();
    let t = db.create_table("items", items_schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "totals".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 0..4i64 {
        db.insert(&mut txn, "items", row![g, g, 5i64]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    db.set_io_retry_policy(RetryPolicy::no_delay(3));

    clock.arm(&FaultSchedule::persistent_at(0));
    // The commit flush exhausts its retries; nothing is acked and the
    // engine demotes itself.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "items", row![100i64, 0i64, 1i64]).unwrap();
    let err = db.commit(&mut txn).unwrap_err();
    assert!(err.is_retryable(), "exhausted write should stay retryable: {err}");
    db.rollback(&mut txn).unwrap();
    assert_eq!(db.health().state(), HealthState::DegradedReadOnly);

    // New writers are rejected up front with a classified retryable error.
    let mut w = db.begin(IsolationLevel::ReadCommitted);
    let err = db.insert(&mut w, "items", row![101i64, 0i64, 1i64]).unwrap_err();
    assert!(matches!(err, Error::Degraded { .. }), "got {err}");
    assert!(err.is_retryable());
    db.rollback(&mut w).unwrap();

    // Reads still serve, and a read-only transaction commits (no-force).
    assert_eq!(db.dump_table("items").unwrap().len(), 4);
    db.verify_view("totals").unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    db.commit(&mut r).unwrap();

    // A probe against the still-dead medium leaves the engine degraded.
    assert_eq!(db.probe_health(), HealthState::DegradedReadOnly);

    // Medium recovers → one probe restores full service.
    clock.heal();
    assert_eq!(db.probe_health(), HealthState::Healthy);
    db.run_txn(IsolationLevel::ReadCommitted, 2, |txn| {
        db.insert(txn, "items", row![102i64, 0i64, 9i64])
    })
    .unwrap();
    db.verify_view("totals").unwrap();
    let stats = db.resilience_stats();
    assert_eq!(stats.health_counters.degradations, 1);
    assert_eq!(stats.health_counters.heals, 1);
    assert!(stats.health_counters.writes_rejected > 0);
}

#[test]
fn fence_is_sticky_until_crash_recovery() {
    let db = setup_with_pool(64);
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "items", row![1i64, 1i64, 5i64]).unwrap();
    db.commit(&mut txn).unwrap();

    db.health().fence("simulated commit-path corruption");
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let err = db.insert(&mut txn, "items", row![2i64, 1i64, 5i64]).unwrap_err();
    assert!(matches!(err, Error::Fenced { .. }), "got {err}");
    assert!(!err.is_retryable(), "fenced must be terminal, not retryable");
    // Even a read-only commit is refused: a fenced engine acks nothing.
    let err = db.commit(&mut txn).unwrap_err();
    assert!(matches!(err, Error::Fenced { .. }));
    // probe_health never heals a fence.
    assert_eq!(db.probe_health(), HealthState::Fenced);

    // Restart-with-recovery is the only exit.
    db.crash_and_recover(1.0, 7).unwrap();
    assert_eq!(db.health().state(), HealthState::Healthy);
    db.run_txn(IsolationLevel::ReadCommitted, 0, |txn| {
        db.insert(txn, "items", row![3i64, 1i64, 5i64])
    })
    .unwrap();
    db.verify_view("totals").unwrap();
}

#[test]
fn run_txn_retries_degraded_errors_with_backoff_telemetry() {
    let db = setup_with_pool(64);
    db.health().degrade("test outage");
    db.set_txn_backoff(RetryPolicy {
        max_attempts: 0, // unused by run_txn (attempts come from the call)
        base_delay_micros: 10,
        max_delay_micros: 40,
        seed: 7,
    });
    let err = db
        .run_txn(IsolationLevel::ReadCommitted, 3, |txn| {
            db.insert(txn, "items", row![1i64, 1i64, 1i64])
        })
        .unwrap_err();
    assert!(matches!(err, Error::Degraded { .. }), "got {err}");
    let stats = db.resilience_stats();
    assert_eq!(stats.txn_attempts, 4); // 1 try + 3 retries
    assert_eq!(stats.txn_retries, 3);
    assert!(stats.txn_backoff_micros > 0, "backoff was configured but never slept");
    assert!(stats.health_counters.writes_rejected >= 4);

    // After healing, the same loop goes through first try.
    assert!(db.health().heal());
    let ((), attempts) = db
        .run_txn_traced(IsolationLevel::ReadCommitted, 3, |txn| {
            db.insert(txn, "items", row![1i64, 1i64, 1i64])
        })
        .unwrap();
    assert_eq!(attempts, 1);
    assert_eq!(db.resilience_stats().health, HealthState::Healthy);
    db.verify_view("totals").unwrap();
}

#[test]
fn many_groups_split_view_tree_under_concurrency() {
    // Enough distinct groups that the VIEW index itself splits repeatedly
    // while escrow writers run — system transactions interleaving with
    // user transactions on the same tree.
    let db = setup_with_pool(2048);
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..400i64 {
                    let id = t as i64 * 10_000 + i;
                    let grp = id; // one group per row: maximal view growth
                    db.run_txn(IsolationLevel::ReadCommitted, 5, |txn| {
                        db.insert(txn, "items", row![id, grp, 2i64])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    db.verify_view("totals").unwrap();
    assert_eq!(db.dump_view("totals").unwrap().len(), 1600);
}

#[test]
fn ghost_enqueue_dedups_and_backlog_drains_to_zero() {
    let db = setup_with_pool(256);
    // Churn one group through empty→refill→empty before any sweep: the
    // same view key is ghosted twice, but the backlog must count it once.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "items", row![1i64, 7i64, 5i64]).unwrap();
    db.commit(&mut txn).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.delete(&mut txn, "items", &[Value::Int(1)]).unwrap();
    db.commit(&mut txn).unwrap();
    // One base-row ghost (pk 1) + one view-group ghost (group 7).
    let b1 = db.ghost_backlog();
    assert_eq!(b1, 2, "base row + emptied group queued");
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "items", row![2i64, 7i64, 5i64]).unwrap();
    db.delete(&mut txn, "items", &[Value::Int(2)]).unwrap();
    db.commit(&mut txn).unwrap();
    // The pk-2 base ghost is a new key; the group-7 view ghost is a
    // duplicate and must NOT be queued again (without dedup: b1 + 2).
    assert_eq!(db.ghost_backlog(), b1 + 1, "re-ghosting the same view key dedups");

    // Heavier churn across many groups, then a sweep: the backlog gauge
    // (both the direct accessor and the metrics snapshot) returns to 0.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 100..140i64 {
        db.insert(&mut txn, "items", row![g, g, 1i64]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 100..140i64 {
        db.delete(&mut txn, "items", &[Value::Int(g)]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    assert!(db.ghost_backlog() >= 80, "40 base rows + 40 emptied groups");
    let report = db.run_ghost_cleanup().unwrap();
    assert!(report.removed >= 40);
    assert_eq!(db.ghost_backlog(), 0, "sweep drains the backlog");
    let snap = db.metrics_snapshot();
    assert_eq!(snap.gauge_value("engine.ghost_backlog"), Some(0));
    db.verify_view("totals").unwrap();
    // After a drain the key may legitimately be queued again.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "items", row![3i64, 7i64, 5i64]).unwrap();
    db.delete(&mut txn, "items", &[Value::Int(3)]).unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(db.ghost_backlog(), b1, "post-drain re-ghosting queues fresh work");
}

#[test]
fn concurrent_backoff_txns_do_not_serialize() {
    use std::sync::Barrier;
    use std::time::Instant;
    // Each transaction copies the backoff policy at entry, so one thread
    // sleeping its backoff must not hold anything another thread's retry
    // loop needs. Two threads that each back off ~d concurrently should
    // finish in ~d wall time, not ~2d.
    let db = setup_with_pool(256);
    let policy = RetryPolicy {
        max_attempts: 2,
        base_delay_micros: 200_000,
        max_delay_micros: 200_000,
        seed: 1,
    };
    let d = Duration::from_micros(policy.delay_micros(1));
    assert!(d >= Duration::from_millis(100), "jitter floor is half the cap");
    db.set_txn_backoff(policy);
    let barrier = Arc::new(Barrier::new(2));
    let start = Instant::now();
    let handles: Vec<_> = (0..2)
        .map(|t| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut first = true;
                let (_, attempts) = db
                    .run_txn_traced(IsolationLevel::ReadCommitted, 3, |txn| {
                        if first {
                            first = false;
                            return Err(Error::SerializationConflict("induced".into()));
                        }
                        db.insert(txn, "items", row![t as i64, t as i64, 1i64])
                    })
                    .unwrap();
                attempts
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 2, "exactly one induced retry each");
    }
    let wall = start.elapsed();
    // Both threads slept the same deterministic backoff d. Serialized
    // backoffs would take >= 2d; concurrent ones ~d plus scheduling slack.
    assert!(wall >= d, "each thread really backed off ({wall:?} < {d:?})");
    assert!(
        wall < 2 * d,
        "backoffs serialized: wall {wall:?} vs per-txn backoff {d:?}"
    );
    db.verify_view("totals").unwrap();
}
