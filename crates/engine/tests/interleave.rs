//! Exhaustive interleaving exploration of the five canned scenarios, in
//! both maintenance modes, with the serializability oracle as judge.

use txview_engine::interleave::{self, explore_dfs, replay, RotationChooser};
use txview_engine::MaintenanceMode;

const CAP: u64 = 200_000;

fn assert_clean(sc: &interleave::Scenario, min_schedules: u64) {
    let report = explore_dfs(sc, CAP);
    assert!(!report.truncated, "[{}] exploration truncated at {CAP}", sc.name);
    assert!(
        report.schedules >= min_schedules,
        "[{}] only {} schedules explored; yield points missing?",
        sc.name,
        report.schedules
    );
    if let Some((choices, msg)) = report.violations.first() {
        panic!(
            "[{}] {} violations; first: {msg}\nreplay: interleave::replay(&sc, &{choices:?})",
            sc.name,
            report.violations.len()
        );
    }
}

#[test]
fn escrow_vs_escrow_exhaustive() {
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        assert_clean(&interleave::escrow_vs_escrow(mode), 2);
    }
}

#[test]
fn escrow_vs_serializable_reader_exhaustive() {
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        assert_clean(&interleave::escrow_vs_serializable_reader(mode), 2);
    }
}

#[test]
fn escrow_vs_snapshot_reader_exhaustive() {
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        assert_clean(&interleave::escrow_vs_snapshot_reader(mode), 2);
    }
}

#[test]
fn ghost_come_and_go_exhaustive() {
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        assert_clean(&interleave::ghost_come_and_go(mode), 2);
    }
}

#[test]
fn deadlock_cycle_exhaustive() {
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let sc = interleave::deadlock_cycle(mode);
        let report = explore_dfs(&sc, CAP);
        assert!(!report.truncated, "[{}] truncated", sc.name);
        assert!(
            report.violations.is_empty(),
            "[{}] first violation: {}",
            sc.name,
            report.violations[0].1
        );
        // Non-vacuity: some interleavings must actually deadlock.
        assert!(
            report.aborted_schedules > 0,
            "[{}] no schedule deadlocked — the cycle fixture is broken",
            sc.name
        );
    }
}

#[test]
fn replay_is_deterministic() {
    let sc = interleave::escrow_vs_escrow(MaintenanceMode::Escrow);
    // Perturbed schedule: at each decision, prefer the other worker.
    let choices = vec![1, 1, 1, 1, 1];
    let (a, va) = replay(&sc, &choices);
    let (b, vb) = replay(&sc, &choices);
    assert_eq!(va, vb);
    assert_eq!(a.decisions, b.decisions, "same choices must reproduce the same decisions");
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(b.history.iter()) {
        assert_eq!(x.txn, y.txn, "same choices must reproduce the same history");
    }
    assert_eq!(a.base_dump, b.base_dump);
    assert_eq!(a.view_dump, b.view_dump);
}

/// Satellite: under a deterministic 3-transaction cycle, the deadlock
/// detector must abort the transaction that closes the cycle — which, with
/// round-robin scheduling, is the youngest (highest TxnId).
#[test]
fn deadlock_victim_is_youngest() {
    let sc = interleave::deadlock_cycle3(MaintenanceMode::Escrow);
    let ep = interleave::run_episode(&sc, Box::new(RotationChooser::new()));
    let violations = interleave::check_episode(&sc, &ep);
    assert!(violations.is_empty(), "first violation: {}", violations[0]);

    let aborted: Vec<u64> = ep
        .workers
        .iter()
        .filter(|w| matches!(w.outcome, interleave::TxnOutcome::Aborted { .. }))
        .map(|w| w.txn)
        .collect();
    assert_eq!(aborted.len(), 1, "exactly one victim expected, got {aborted:?}");
    let max_txn = ep.workers.iter().map(|w| w.txn).max().unwrap();
    assert_eq!(
        aborted[0], max_txn,
        "victim must be the youngest transaction (highest TxnId)"
    );
    // And the victim is recorded in the history as such.
    let victim_evs = ep
        .history
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                interleave::EventKind::Hook(txview_lock::SchedEvent::DeadlockVictim { .. })
            )
        })
        .count();
    assert!(victim_evs >= 1, "DeadlockVictim event missing from history");
}

/// Satellite: FIFO fairness. Exhaustively explore the 3-transaction
/// reader/writer/reader fixture; the oracle's no-overtake rule must hold
/// in every schedule.
#[test]
fn fifo_fairness_exhaustive() {
    let sc = interleave::fairness_scenario();
    let report = explore_dfs(&sc, CAP);
    assert!(!report.truncated, "truncated at {CAP}");
    assert!(
        report.violations.is_empty(),
        "{} violations; first: {}",
        report.violations.len(),
        report.violations[0].1
    );
    assert!(report.schedules >= 10, "only {} schedules", report.schedules);
}

/// Pipeline fixture: ELR read dependency, exhaustively explored in both
/// elr modes with exact admitted-schedule drift gates (the same canary
/// idea as the `escrow_vs_escrow` gates in `run_torture --interleave`:
/// any drift means the yield-point set or the pipeline protocol changed).
#[test]
fn pipeline_elr_read_dependency_exhaustive() {
    // elr=false: escrow locks are held to durability, so the reader can
    // never observe a not-yet-durable increment — no dependency edges.
    let sc = interleave::elr_read_dependency(false);
    let r = explore_dfs(&sc, CAP);
    assert!(!r.truncated, "[{}] truncated", sc.name);
    assert!(r.violations.is_empty(), "[{}] first: {}", sc.name, r.violations[0].1);
    assert_eq!(r.schedules, 556, "[{}] schedule-count drift", sc.name);
    assert_eq!(r.dep_schedules, 0, "[{}] dep edges without ELR", sc.name);

    // elr=true: schedules exist where the reader sees the writer's value
    // before the writer is durable and must record a commit dependency.
    let sc = interleave::elr_read_dependency(true);
    let r = explore_dfs(&sc, CAP);
    assert!(!r.truncated, "[{}] truncated", sc.name);
    assert!(r.violations.is_empty(), "[{}] first: {}", sc.name, r.violations[0].1);
    assert_eq!(r.schedules, 1_141, "[{}] schedule-count drift", sc.name);
    assert_eq!(r.dep_schedules, 675, "[{}] dep-schedule drift", sc.name);
}

/// Pipeline fixture: two-batch overlap (disjoint groups, the pipeline is
/// the only interaction). The full tree is 137,566 schedules — gated
/// exactly in `run_torture --interleave` full mode; here a deterministic
/// 4,000-schedule DFS prefix runs with its own drift gate. (The tree was
/// 167,596 before the leader-retention fix: a leader now keeps
/// leadership through its sync when nobody is promotable, which removes
/// the self-lead branches and turns them into follower parks.)
#[test]
fn pipeline_two_batch_overlap_capped() {
    for elr in [false, true] {
        let sc = interleave::two_batch_overlap(elr);
        let r = explore_dfs(&sc, 4_000);
        assert!(r.truncated, "[{}] tree shrank below the cap", sc.name);
        assert!(r.violations.is_empty(), "[{}] first: {}", sc.name, r.violations[0].1);
        // Non-vacuity + drift gate: schedules where a committer parks
        // behind an active leader must exist, in a deterministic count.
        assert_eq!(r.follower_wait_schedules, 1_760, "[{}] follower drift", sc.name);
    }
}

/// Pipeline fixture: 3-committer leader handoff race. The full tree is
/// astronomically large; a deterministic DFS prefix plus PCT sampling
/// cover it, with a follower-count drift gate on the prefix.
#[test]
fn pipeline_leader_handoff_race_capped() {
    for elr in [false, true] {
        let sc = interleave::leader_handoff_race(elr);
        let r = explore_dfs(&sc, 1_500);
        assert!(r.truncated, "[{}] tree shrank below the cap", sc.name);
        assert!(r.violations.is_empty(), "[{}] first: {}", sc.name, r.violations[0].1);
        assert_eq!(r.follower_wait_schedules, 500, "[{}] follower drift", sc.name);

        let p = interleave::explore_pct(&sc, 0xC0FFEE, 50, 3);
        assert!(p.violations.is_empty(), "[{}] PCT first: {}", sc.name, p.violations[0].1);
        assert!(p.follower_wait_schedules > 0, "[{}] PCT saw no followers", sc.name);
    }
}

/// Chain fixture: two incrementers on disjoint base groups whose cascades
/// collide only on the terminal global rollup. The full tree is enormous
/// (the two commit-time flushes each add escrow acquires at every chain
/// level), so a deterministic 4,000-schedule DFS prefix runs with drift
/// gates: every explored schedule must flush a non-empty cascade queue,
/// and the deepest decision list is pinned exactly.
#[test]
fn chain_commit_race_capped() {
    for (mode, max_dec) in [(MaintenanceMode::Escrow, 26), (MaintenanceMode::XLock, 27)] {
        let sc = interleave::chain_commit_race(mode);
        let r = explore_dfs(&sc, 4_000);
        assert!(r.truncated, "[{}] tree shrank below the cap", sc.name);
        assert!(r.violations.is_empty(), "[{}] first: {}", sc.name, r.violations[0].1);
        assert_eq!(
            r.cascade_flush_schedules, r.schedules,
            "[{}] some schedule committed without a cascade flush",
            sc.name
        );
        assert_eq!(r.max_decisions, max_dec, "[{}] decision-depth drift", sc.name);

        let p = interleave::explore_pct(&sc, 0xC0FFEE, 50, 3);
        assert!(p.violations.is_empty(), "[{}] PCT first: {}", sc.name, p.violations[0].1);
        assert!(p.cascade_flush_schedules > 0, "[{}] PCT saw no flushes", sc.name);
    }
}

/// Chain fixture: ELR vs an in-flight cascade, exhaustively explored with
/// exact drift gates. An RC reader polls the mid-chain view while a
/// writer's increment cascades through it at commit; with ELR the chain
/// rows become visible at log-append time, so dependency edges must be
/// recorded in a deterministic share of the schedules.
#[test]
fn cascade_elr_exhaustive() {
    let sc = interleave::cascade_elr();
    let r = explore_dfs(&sc, CAP);
    assert!(!r.truncated, "[{}] truncated at {CAP}", sc.name);
    assert!(r.violations.is_empty(), "[{}] first: {}", sc.name, r.violations[0].1);
    assert_eq!(r.schedules, 4_420, "[{}] schedule-count drift", sc.name);
    assert_eq!(r.dep_schedules, 2_181, "[{}] dep-schedule drift", sc.name);
    assert_eq!(
        r.cascade_flush_schedules, 4_420,
        "[{}] flush non-vacuity: every schedule cascades",
        sc.name
    );
}

/// MIN/MAX fixture: extremum delete (recompute-from-base under the S
/// object lock) racing a same-group insert of a new maximum, exhaustively
/// explored. The schedule count is pinned exactly (any drift means the
/// yield-point set or the recompute lock protocol changed), X-lock waits
/// get a non-vacuity floor (the recompute window must actually serialize
/// against the writer somewhere), and some schedules must deadlock (the S
/// object lock vs IX base-object lock inversion) and recover cleanly.
#[test]
fn minmax_delete_race_exhaustive() {
    let sc = interleave::minmax_delete_race();
    let r = explore_dfs(&sc, CAP);
    assert!(!r.truncated, "[{}] truncated at {CAP}", sc.name);
    if let Some((choices, msg)) = r.violations.first() {
        panic!(
            "[{}] {} violations; first: {msg}\nreplay: interleave::replay(&sc, &{choices:?})",
            sc.name,
            r.violations.len()
        );
    }
    assert_eq!(r.schedules, 1_766, "[{}] schedule-count drift", sc.name);
    assert!(
        r.xlock_wait_schedules >= 500,
        "[{}] only {} schedules blocked on an X lock — recompute never contended",
        sc.name,
        r.xlock_wait_schedules
    );
    assert!(
        r.aborted_schedules > 0,
        "[{}] no schedule deadlocked — the lock-order inversion is gone",
        sc.name
    );
}

/// Replay determinism through the pipeline code path: same choices must
/// reproduce the same decisions, history, and state with group commit and
/// ELR enabled.
#[test]
fn pipeline_replay_is_deterministic() {
    let sc = interleave::elr_read_dependency(true);
    let choices = vec![1, 1, 0, 1, 0, 1, 1, 0];
    let (a, va) = replay(&sc, &choices);
    let (b, vb) = replay(&sc, &choices);
    assert_eq!(va, vb);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.history.len(), b.history.len());
    assert_eq!(a.dep_edges, b.dep_edges);
    assert_eq!(a.base_dump, b.base_dump);
    assert_eq!(a.view_dump, b.view_dump);
}

/// Non-vacuity for the FIFO rule: a synthetic history in which a later S
/// request is granted while an earlier incompatible X request still waits
/// MUST be flagged.
#[test]
fn fifo_rule_flags_synthetic_overtake() {
    use interleave::{Event, EventKind};
    use txview_common::IndexId;
    use txview_lock::{LockMode, LockName, SchedEvent};

    let name = LockName::key(IndexId(7), vec![1]);
    let ev = |seq: u64, txn: u64, kind: SchedEvent| Event {
        seq,
        worker: txn as usize,
        txn,
        kind: EventKind::Hook(kind),
    };
    let history = vec![
        // Txn 1 blocks in X.
        ev(0, 1, SchedEvent::LockRequest { name: name.clone(), mode: LockMode::X }),
        ev(1, 1, SchedEvent::LockBlocked { name: name.clone(), mode: LockMode::X, converting: false }),
        // Txn 2 requests S afterwards and is granted first: overtake.
        ev(2, 2, SchedEvent::LockRequest { name: name.clone(), mode: LockMode::S }),
        ev(3, 2, SchedEvent::LockGranted { name: name.clone(), mode: LockMode::S, converting: false }),
        ev(4, 1, SchedEvent::LockGranted { name: name.clone(), mode: LockMode::X, converting: false }),
    ];
    let v = interleave::check_fifo(&history);
    assert_eq!(v.len(), 1, "synthetic overtake must be flagged, got {v:?}");
    assert!(v[0].contains("FIFO violation"), "{}", v[0]);

    // Control: grant order respecting the queue is clean.
    let history_ok = vec![
        ev(0, 1, SchedEvent::LockRequest { name: name.clone(), mode: LockMode::X }),
        ev(1, 1, SchedEvent::LockBlocked { name: name.clone(), mode: LockMode::X, converting: false }),
        ev(2, 2, SchedEvent::LockRequest { name: name.clone(), mode: LockMode::S }),
        ev(3, 1, SchedEvent::LockGranted { name: name.clone(), mode: LockMode::X, converting: false }),
        ev(4, 2, SchedEvent::LockGranted { name: name.clone(), mode: LockMode::S, converting: false }),
    ];
    assert!(interleave::check_fifo(&history_ok).is_empty());
}
