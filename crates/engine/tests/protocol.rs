//! End-to-end tests of the paper's protocol against a single database:
//! immediate maintenance, escrow concurrency, rollback, the group
//! come/go anomaly, ghost cleanup, isolation levels, crash recovery.

use std::sync::Arc;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{row, Error, Value};
use txview_engine::{
    AggSpec, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};

/// accounts(id INT PK, branch INT, balance INT)
fn accounts_schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("branch", ValueType::Int),
            Column::new("balance", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap()
}

fn setup(mode: MaintenanceMode) -> (Arc<Database>, &'static str) {
    let db = Database::new_in_memory(512);
    let t = db.create_table("accounts", accounts_schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "branch_balance".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: mode,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    (db, "branch_balance")
}

fn load_accounts(db: &Database, n: i64, branches: i64, balance: i64) {
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for i in 0..n {
        db.insert(&mut txn, "accounts", row![i, i % branches, balance]).unwrap();
    }
    db.commit(&mut txn).unwrap();
}

#[test]
fn view_tracks_inserts_updates_deletes() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 10, 2, 100);
    db.verify_view(view).unwrap();

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let (count, aggs) = db.view_aggregates(&mut txn, view, &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!(count, 5);
    assert_eq!(aggs, vec![Value::Int(500)]);

    // Update moves balance within the same group (merged delta).
    db.update(&mut txn, "accounts", row![0i64, 0i64, 250i64]).unwrap();
    // Delete removes a contribution.
    db.delete(&mut txn, "accounts", &[Value::Int(2)]).unwrap();
    db.commit(&mut txn).unwrap();

    db.verify_view(view).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let (count, aggs) = db.view_aggregates(&mut txn, view, &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!(count, 4);
    assert_eq!(aggs, vec![Value::Int(550)]); // 500 + 150 - 100
    db.commit(&mut txn).unwrap();
}

#[test]
fn update_moving_groups_emits_two_deltas() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 4, 2, 100);
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    // Move account 0 from branch 0 to branch 1.
    db.update(&mut txn, "accounts", row![0i64, 1i64, 100i64]).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_view(view).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        db.view_aggregates(&mut txn, view, &[Value::Int(0)]).unwrap().unwrap(),
        (1, vec![Value::Int(100)])
    );
    assert_eq!(
        db.view_aggregates(&mut txn, view, &[Value::Int(1)]).unwrap().unwrap(),
        (3, vec![Value::Int(300)])
    );
    db.commit(&mut txn).unwrap();
}

#[test]
fn rollback_restores_base_and_view() {
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let (db, view) = setup(mode);
        load_accounts(&db, 6, 3, 100);
        let before = db.dump_view(view).unwrap();

        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        db.insert(&mut txn, "accounts", row![100i64, 0i64, 999i64]).unwrap();
        db.update(&mut txn, "accounts", row![1i64, 1i64, 1i64]).unwrap();
        db.delete(&mut txn, "accounts", &[Value::Int(2)]).unwrap();
        db.rollback(&mut txn).unwrap();

        assert_eq!(db.dump_view(view).unwrap(), before, "mode {mode:?}");
        db.verify_view(view).unwrap();
        assert_eq!(db.dump_table("accounts").unwrap().len(), 6);
    }
}

#[test]
fn savepoint_partial_rollback() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 2, 1, 100);
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "accounts", row![10i64, 0i64, 50i64]).unwrap();
    let sp = db.savepoint(&txn);
    db.insert(&mut txn, "accounts", row![11i64, 0i64, 70i64]).unwrap();
    db.rollback_to_savepoint(&mut txn, sp).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_view(view).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        db.view_aggregates(&mut txn, view, &[Value::Int(0)]).unwrap().unwrap(),
        (3, vec![Value::Int(250)])
    );
    db.commit(&mut txn).unwrap();
    assert!(db.get_row(&mut db.begin(IsolationLevel::ReadCommitted), "accounts", &[Value::Int(11)]).unwrap().is_none());
}

#[test]
fn group_come_and_go_anomaly() {
    // T1 creates a group; T2 increments it; T1 rolls back. The group row
    // must survive with only T2's contribution (undo by inverse delta).
    let (db, view) = setup(MaintenanceMode::Escrow);

    let mut t1 = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut t1, "accounts", row![1i64, 7i64, 10i64]).unwrap();

    let mut t2 = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut t2, "accounts", row![2i64, 7i64, 20i64]).unwrap();
    db.commit(&mut t2).unwrap();

    db.rollback(&mut t1).unwrap();
    db.verify_view(view).unwrap();

    let mut r = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        db.view_aggregates(&mut r, view, &[Value::Int(7)]).unwrap().unwrap(),
        (1, vec![Value::Int(20)])
    );
    db.commit(&mut r).unwrap();
}

#[test]
fn count_to_zero_hides_group_and_cleanup_removes_it() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 2, 2, 100); // branch 0: acct 0; branch 1: acct 1

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.delete(&mut txn, "accounts", &[Value::Int(0)]).unwrap();
    db.commit(&mut txn).unwrap();

    // Group 0 is logically absent though physically present.
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    assert!(db.view_aggregates(&mut r, view, &[Value::Int(0)]).unwrap().is_none());
    db.commit(&mut r).unwrap();
    db.verify_view(view).unwrap();

    // Cleanup physically removes the zero-count view row and the base ghost.
    let report = db.run_ghost_cleanup().unwrap();
    assert!(report.removed >= 2, "view row + base ghost: {report:?}");
    db.verify_view(view).unwrap();

    // Re-inserting the group recreates the row.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "accounts", row![10i64, 0i64, 5i64]).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_view(view).unwrap();
}

#[test]
fn concurrent_escrow_writers_same_group() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 1, 1, 0); // one group, one account
    let threads: Vec<_> = (0..8u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..50u64 {
                    let id = 1000 + t * 1000 + i;
                    db.run_txn(IsolationLevel::ReadCommitted, 10, |txn| {
                        db.insert(txn, "accounts", row![id as i64, 0i64, 1i64])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
    db.verify_view(view).unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        db.view_aggregates(&mut r, view, &[Value::Int(0)]).unwrap().unwrap(),
        (401, vec![Value::Int(400)])
    );
    db.commit(&mut r).unwrap();
    // Escrow grants must dominate: the hot row never serialized writers.
    assert!(db.stats().locks.escrow_grants >= 400);
}

#[test]
fn serializable_reader_blocks_escrow_writer() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 2, 1, 100);

    let mut reader = db.begin(IsolationLevel::Serializable);
    let (count, _) = db.view_aggregates(&mut reader, view, &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!(count, 2);

    // A writer that must touch the locked view row times out (the reader
    // holds S until commit).
    let db2 = Arc::clone(&db);
    let h = std::thread::spawn(move || {
        let mut w = db2.begin(IsolationLevel::ReadCommitted);
        let res = db2.insert(&mut w, "accounts", row![50i64, 0i64, 1i64]);
        if w.is_active() {
            let _ = db2.rollback(&mut w);
        }
        res.is_ok()
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Reader still sees the same stable aggregate, then commits.
    let (count2, _) = db.view_aggregates(&mut reader, view, &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!(count2, count);
    db.commit(&mut reader).unwrap();
    assert!(h.join().unwrap(), "writer proceeds after reader commits");
    db.verify_view(view).unwrap();
}

#[test]
fn snapshot_reader_ignores_inflight_escrow() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 2, 1, 100);

    let mut snap = db.begin(IsolationLevel::Snapshot);
    // A writer updates the hot row but does NOT commit.
    let mut w = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut w, "accounts", row![50i64, 0i64, 42i64]).unwrap();

    // The snapshot reader sees the pre-writer state, without blocking.
    let (count, aggs) = db.view_aggregates(&mut snap, view, &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!((count, aggs), (2, vec![Value::Int(200)]));

    db.commit(&mut w).unwrap();
    // Still the old snapshot after the writer commits.
    let (count, _) = db.view_aggregates(&mut snap, view, &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!(count, 2);
    db.commit(&mut snap).unwrap();

    // A fresh snapshot sees the new state.
    let mut snap2 = db.begin(IsolationLevel::Snapshot);
    let (count, aggs) = db.view_aggregates(&mut snap2, view, &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!((count, aggs), (3, vec![Value::Int(242)]));
    db.commit(&mut snap2).unwrap();
}

#[test]
fn crash_recovery_committed_survives_losers_undone() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 10, 2, 100);
    db.checkpoint().unwrap();

    // Committed work.
    let mut c = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut c, "accounts", row![100i64, 0i64, 77i64]).unwrap();
    db.delete(&mut c, "accounts", &[Value::Int(1)]).unwrap();
    db.commit(&mut c).unwrap();

    // In-flight loser (escrow increments on both groups).
    let mut l = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut l, "accounts", row![200i64, 0i64, 55i64]).unwrap();
    db.insert(&mut l, "accounts", row![201i64, 1i64, 66i64]).unwrap();
    std::mem::forget(l); // crash with the transaction in flight

    let report = db.crash_and_recover(0.5, 42).unwrap();
    assert!(report.losers >= 1);
    assert!(report.logical_undos >= 1);

    db.verify_view(view).unwrap();
    let rows = db.dump_table("accounts").unwrap();
    let ids: Vec<i64> = rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
    assert!(ids.contains(&100), "committed insert survives");
    assert!(!ids.contains(&1), "committed delete survives");
    assert!(!ids.contains(&200) && !ids.contains(&201), "loser undone");
}

#[test]
fn crash_recovery_is_idempotent_under_repeated_crashes() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 20, 4, 10);
    for seed in 0..5 {
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        let id = 1000 + seed as i64;
        db.insert(&mut txn, "accounts", row![id, seed as i64 % 4, 3i64]).unwrap();
        db.commit(&mut txn).unwrap();
        // Loser in flight at every crash.
        let mut loser = db.begin(IsolationLevel::ReadCommitted);
        db.insert(&mut loser, "accounts", row![id + 500, 0i64, 9i64]).unwrap();
        std::mem::forget(loser);
        db.crash_and_recover(0.3, seed).unwrap();
        db.verify_view(view).unwrap();
    }
    assert_eq!(db.dump_table("accounts").unwrap().len(), 25);
}

#[test]
fn xlock_mode_is_correct_just_slower() {
    let (db, view) = setup(MaintenanceMode::XLock);
    load_accounts(&db, 1, 1, 0);
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..25u64 {
                    let id = 1000 + t * 1000 + i;
                    db.run_txn(IsolationLevel::ReadCommitted, 20, |txn| {
                        db.insert(txn, "accounts", row![id as i64, 0i64, 2i64])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
    db.verify_view(view).unwrap();
    assert_eq!(db.stats().locks.escrow_grants, 0, "no E locks in baseline");
}

#[test]
fn min_max_view_maintained_with_recompute_on_delete() {
    let db = Database::new_in_memory(512);
    let t = db.create_table("accounts", accounts_schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "branch_minmax".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::Min { col: 2 }, AggSpec::Max { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow, // forced to XLock internally
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for (id, bal) in [(1i64, 50i64), (2, 10), (3, 90)] {
        db.insert(&mut txn, "accounts", row![id, 0i64, bal]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    db.verify_view("branch_minmax").unwrap();

    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let (_, aggs) = db.view_aggregates(&mut r, "branch_minmax", &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!(aggs, vec![Value::Int(10), Value::Int(90)]);
    db.commit(&mut r).unwrap();

    // Deleting the current minimum forces recomputation.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.delete(&mut txn, "accounts", &[Value::Int(2)]).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_view("branch_minmax").unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let (_, aggs) = db.view_aggregates(&mut r, "branch_minmax", &[Value::Int(0)]).unwrap().unwrap();
    assert_eq!(aggs, vec![Value::Int(50), Value::Int(90)]);
    db.commit(&mut r).unwrap();
}

#[test]
fn filtered_view_only_counts_qualifying_rows() {
    let db = Database::new_in_memory(512);
    let t = db.create_table("accounts", accounts_schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "rich".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::Cmp {
            col: 2,
            op: txview_engine::CmpOp::Ge,
            value: Value::Int(100),
        },
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "accounts", row![1i64, 0i64, 50i64]).unwrap(); // filtered out
    db.insert(&mut txn, "accounts", row![2i64, 0i64, 150i64]).unwrap();
    // Update crosses the filter boundary: row 1 now qualifies.
    db.update(&mut txn, "accounts", row![1i64, 0i64, 120i64]).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_view("rich").unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        db.view_aggregates(&mut r, "rich", &[Value::Int(0)]).unwrap().unwrap(),
        (2, vec![Value::Int(270)])
    );
    db.commit(&mut r).unwrap();
}

#[test]
fn join_view_maintained_through_fact_dml() {
    let db = Database::new_in_memory(512);
    let dim_schema = Schema::new(
        vec![
            Column::new("pk", ValueType::Int),
            Column::new("region", ValueType::Str),
        ],
        vec![0],
    )
    .unwrap();
    let dim = db.create_table("stores", dim_schema).unwrap();
    let fact_schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("store", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap();
    let fact = db.create_table("sales", fact_schema).unwrap();

    // Dims first (the engine freezes dim DML once the view exists).
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "stores", row![1i64, "west"]).unwrap();
    db.insert(&mut txn, "stores", row![2i64, "east"]).unwrap();
    db.commit(&mut txn).unwrap();

    db.create_indexed_view(ViewSpec {
        name: "revenue_by_region".into(),
        source: ViewSource::Join { fact, fact_fk_col: 1, dim, dim_group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "sales", row![1i64, 1i64, 10i64]).unwrap();
    db.insert(&mut txn, "sales", row![2i64, 1i64, 20i64]).unwrap();
    db.insert(&mut txn, "sales", row![3i64, 2i64, 40i64]).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_view("revenue_by_region").unwrap();

    let mut r = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        db.view_aggregates(&mut r, "revenue_by_region", &[Value::Str("west".into())])
            .unwrap()
            .unwrap(),
        (2, vec![Value::Int(30)])
    );
    db.commit(&mut r).unwrap();

    // Dim DML is frozen while a join view references it.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let err = db.insert(&mut txn, "stores", row![3i64, "north"]).unwrap_err();
    assert!(matches!(err, Error::InvalidOperation(_)));
    db.rollback(&mut txn).unwrap();
}

#[test]
fn deferred_view_goes_stale_and_refreshes() {
    let db = Database::new_in_memory(512);
    let t = db.create_table("accounts", accounts_schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "lazy".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: true,
        eager_group_delete: false,
    })
    .unwrap();
    load_accounts(&db, 10, 2, 100);
    assert_eq!(db.deferred_staleness("lazy").unwrap(), 10);
    // The view is stale: verify must fail.
    assert!(db.verify_view("lazy").is_err());
    let n = db.refresh_deferred_view("lazy").unwrap();
    assert_eq!(n, 2);
    assert_eq!(db.deferred_staleness("lazy").unwrap(), 0);
    db.verify_view("lazy").unwrap();
}

#[test]
fn multiple_views_maintained_in_one_txn() {
    let db = Database::new_in_memory(512);
    let t = db.create_table("accounts", accounts_schema()).unwrap();
    for i in 0..4 {
        db.create_indexed_view(ViewSpec {
            name: format!("v{i}"),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
        })
        .unwrap();
    }
    load_accounts(&db, 20, 4, 10);
    for i in 0..4 {
        db.verify_view(&format!("v{i}")).unwrap();
    }
}

#[test]
fn view_scan_ranges_and_isolation() {
    let (db, view) = setup(MaintenanceMode::Escrow);
    load_accounts(&db, 30, 6, 10);
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let rows = db.view_scan(&mut r, view, Some(&[Value::Int(1)]), Some(&[Value::Int(4)])).unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].get(0), &Value::Int(1));
    assert_eq!(rows[2].get(0), &Value::Int(3));
    db.commit(&mut r).unwrap();

    let mut s = db.begin(IsolationLevel::Snapshot);
    let rows = db.view_scan(&mut s, view, None, None).unwrap();
    assert_eq!(rows.len(), 6);
    db.commit(&mut s).unwrap();
}
