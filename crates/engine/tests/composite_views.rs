//! Coverage for richer view shapes: composite (multi-column, mixed-type)
//! group-by keys, FLOAT sums, multiple aggregates per view, and filtered
//! escrow maintenance — all under concurrency, rollback, and crash.

use std::sync::Arc;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{row, Value};
use txview_engine::{
    AggSpec, CmpOp, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};

/// trades(id, region STR, desk INT, qty INT, notional FLOAT)
fn setup() -> Arc<Database> {
    let db = Database::new_in_memory(1024);
    let t = db
        .create_table(
            "trades",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("region", ValueType::Str),
                    Column::new("desk", ValueType::Int),
                    Column::new("qty", ValueType::Int),
                    Column::new("notional", ValueType::Float),
                ],
                vec![0],
            )
            .unwrap(),
        )
        .unwrap();
    // Composite group key (STR, INT), two aggregates (INT and FLOAT sums),
    // and a filter.
    db.create_indexed_view(ViewSpec {
        name: "desk_totals".into(),
        source: ViewSource::Single { table: t, group_by: vec![1, 2] },
        aggs: vec![AggSpec::SumInt { col: 3 }, AggSpec::SumFloat { col: 4 }],
        filter: Predicate::Cmp { col: 3, op: CmpOp::Gt, value: Value::Int(0) },
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    db
}

fn trade(id: i64, region: &str, desk: i64, qty: i64, notional: f64) -> txview_common::Row {
    row![id, region, desk, qty, notional]
}

#[test]
fn composite_keys_and_mixed_aggregates() {
    let db = setup();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "trades", trade(1, "emea", 1, 100, 10.5)).unwrap();
    db.insert(&mut txn, "trades", trade(2, "emea", 1, 50, 2.25)).unwrap();
    db.insert(&mut txn, "trades", trade(3, "emea", 2, 70, 1.0)).unwrap();
    db.insert(&mut txn, "trades", trade(4, "apac", 1, 30, 4.0)).unwrap();
    db.insert(&mut txn, "trades", trade(5, "apac", 1, 0, 99.0)).unwrap(); // filtered out
    db.commit(&mut txn).unwrap();
    db.verify_view("desk_totals").unwrap();

    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let (count, aggs) = db
        .view_aggregates(&mut r, "desk_totals", &[Value::Str("emea".into()), Value::Int(1)])
        .unwrap()
        .unwrap();
    assert_eq!(count, 2);
    assert_eq!(aggs[0], Value::Int(150));
    assert_eq!(aggs[1], Value::Float(12.75));
    // Filtered-out row contributed nothing.
    let (count, _) = db
        .view_aggregates(&mut r, "desk_totals", &[Value::Str("apac".into()), Value::Int(1)])
        .unwrap()
        .unwrap();
    assert_eq!(count, 1);
    db.commit(&mut r).unwrap();
}

#[test]
fn range_scan_over_composite_prefix() {
    let db = setup();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for (id, region, desk) in
        [(1i64, "apac", 1i64), (2, "emea", 1), (3, "emea", 2), (4, "emea", 9), (5, "us", 1)]
    {
        db.insert(&mut txn, "trades", trade(id, region, desk, 10, 1.0)).unwrap();
    }
    db.commit(&mut txn).unwrap();
    let mut r = db.begin(IsolationLevel::Serializable);
    // All emea desks: [("emea", MIN) .. ("emea"+ε)).
    let rows = db
        .view_scan(
            &mut r,
            "desk_totals",
            Some(&[Value::Str("emea".into())]),
            Some(&[Value::Str("emea\u{1}".into())]),
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|row| row.get(0) == &Value::Str("emea".into())));
    db.commit(&mut r).unwrap();
}

#[test]
fn float_sums_survive_rollback_and_crash_exactly() {
    let db = setup();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    // Powers of two: float arithmetic is exact, so verification is too.
    db.insert(&mut txn, "trades", trade(1, "us", 7, 5, 0.5)).unwrap();
    db.insert(&mut txn, "trades", trade(2, "us", 7, 5, 0.25)).unwrap();
    db.commit(&mut txn).unwrap();

    // Rollback of float escrow deltas restores the exact bits.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "trades", trade(3, "us", 7, 5, 0.125)).unwrap();
    db.update(&mut txn, "trades", trade(1, "us", 7, 5, 8.5)).unwrap();
    db.rollback(&mut txn).unwrap();
    db.verify_view("desk_totals").unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let (_, aggs) = db
        .view_aggregates(&mut r, "desk_totals", &[Value::Str("us".into()), Value::Int(7)])
        .unwrap()
        .unwrap();
    assert_eq!(aggs[1], Value::Float(0.75));
    db.commit(&mut r).unwrap();

    // Crash with a float-escrow loser in flight.
    let mut loser = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut loser, "trades", trade(9, "us", 7, 5, 1024.0)).unwrap();
    db.log().flush_all().unwrap();
    std::mem::forget(loser);
    db.crash_and_recover(0.5, 21).unwrap();
    db.verify_view("desk_totals").unwrap();
}

#[test]
fn concurrent_writers_on_composite_hot_groups() {
    let db = setup();
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    let id = (t * 1_000 + i) as i64 + 1;
                    let region = ["emea", "apac"][(i % 2) as usize];
                    db.run_txn(IsolationLevel::ReadCommitted, 10, |txn| {
                        db.insert(txn, "trades", trade(id, region, 1, 2, 0.5))
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    db.verify_view("desk_totals").unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    let (count, aggs) = db
        .view_aggregates(&mut r, "desk_totals", &[Value::Str("emea".into()), Value::Int(1)])
        .unwrap()
        .unwrap();
    assert_eq!(count, 300);
    assert_eq!(aggs[0], Value::Int(600));
    assert_eq!(aggs[1], Value::Float(150.0));
    db.commit(&mut r).unwrap();
}

#[test]
fn update_moving_between_composite_groups() {
    let db = setup();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "trades", trade(1, "emea", 1, 10, 1.0)).unwrap();
    // Move desk AND region.
    db.update(&mut txn, "trades", trade(1, "us", 3, 10, 1.0)).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_view("desk_totals").unwrap();
    let mut r = db.begin(IsolationLevel::ReadCommitted);
    assert!(db
        .view_aggregates(&mut r, "desk_totals", &[Value::Str("emea".into()), Value::Int(1)])
        .unwrap()
        .is_none());
    assert!(db
        .view_aggregates(&mut r, "desk_totals", &[Value::Str("us".into()), Value::Int(3)])
        .unwrap()
        .is_some());
    db.commit(&mut r).unwrap();
}
