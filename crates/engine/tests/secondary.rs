//! Secondary-index behaviour: maintenance through DML, uniqueness,
//! rollback, crash recovery, ghost cleanup, and reads.

use std::sync::Arc;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{row, Error, Value};
use txview_engine::{Database, IsolationLevel};

/// users(id PK, email STR, city STR)
fn setup() -> Arc<Database> {
    let db = Database::new_in_memory(512);
    db.create_table(
        "users",
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("email", ValueType::Str),
                Column::new("city", ValueType::Str),
            ],
            vec![0],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

fn load(db: &Database) {
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for (id, email, city) in [
        (1i64, "a@x.com", "berlin"),
        (2, "b@x.com", "paris"),
        (3, "c@x.com", "berlin"),
        (4, "d@x.com", "rome"),
    ] {
        db.insert(&mut txn, "users", row![id, email, city]).unwrap();
    }
    db.commit(&mut txn).unwrap();
}

#[test]
fn index_built_from_existing_rows_and_maintained() {
    let db = setup();
    load(&db);
    db.create_index("by_city", "users", &[2], false).unwrap();
    db.verify_index("by_city").unwrap();

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let rows = db.get_by_index(&mut txn, "by_city", &[Value::Str("berlin".into())]).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get(0), &Value::Int(1));
    assert_eq!(rows[1].get(0), &Value::Int(3));

    // DML keeps it current: insert, move a user between cities, delete.
    db.insert(&mut txn, "users", row![5i64, "e@x.com", "berlin"]).unwrap();
    db.update(&mut txn, "users", row![1i64, "a@x.com", "rome"]).unwrap();
    db.delete(&mut txn, "users", &[Value::Int(3)]).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_index("by_city").unwrap();

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let berlin = db.get_by_index(&mut txn, "by_city", &[Value::Str("berlin".into())]).unwrap();
    assert_eq!(berlin.len(), 1);
    assert_eq!(berlin[0].get(0), &Value::Int(5));
    let rome = db.get_by_index(&mut txn, "by_city", &[Value::Str("rome".into())]).unwrap();
    assert_eq!(rome.len(), 2);
    db.commit(&mut txn).unwrap();
}

#[test]
fn unique_index_enforced() {
    let db = setup();
    load(&db);
    db.create_index("by_email", "users", &[1], true).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let err = db.insert(&mut txn, "users", row![9i64, "a@x.com", "oslo"]).unwrap_err();
    assert!(matches!(err, Error::DuplicateKey(_)));
    db.rollback(&mut txn).unwrap();
    db.verify_index("by_email").unwrap();

    // Building a unique index over already-duplicate data fails.
    let db2 = setup();
    let mut txn = db2.begin(IsolationLevel::ReadCommitted);
    db2.insert(&mut txn, "users", row![1i64, "same@x.com", "oslo"]).unwrap();
    db2.insert(&mut txn, "users", row![2i64, "same@x.com", "kiel"]).unwrap();
    db2.commit(&mut txn).unwrap();
    assert!(db2.create_index("by_email2", "users", &[1], true).is_err());
}

#[test]
fn rollback_restores_index_exactly() {
    let db = setup();
    load(&db);
    db.create_index("by_city", "users", &[2], false).unwrap();

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "users", row![6i64, "f@x.com", "berlin"]).unwrap();
    db.update(&mut txn, "users", row![2i64, "b@x.com", "berlin"]).unwrap();
    db.delete(&mut txn, "users", &[Value::Int(4)]).unwrap();
    db.rollback(&mut txn).unwrap();
    db.verify_index("by_city").unwrap();

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        db.get_by_index(&mut txn, "by_city", &[Value::Str("berlin".into())]).unwrap().len(),
        2
    );
    assert_eq!(
        db.get_by_index(&mut txn, "by_city", &[Value::Str("rome".into())]).unwrap().len(),
        1
    );
    db.commit(&mut txn).unwrap();
}

#[test]
fn delete_reinsert_same_key_in_one_txn() {
    // Exercises the ghost-revive path of secondary entries.
    let db = setup();
    load(&db);
    db.create_index("by_city", "users", &[2], false).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.delete(&mut txn, "users", &[Value::Int(1)]).unwrap();
    db.insert(&mut txn, "users", row![1i64, "a2@x.com", "berlin"]).unwrap();
    db.commit(&mut txn).unwrap();
    db.verify_index("by_city").unwrap();
    // And rolled back.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.delete(&mut txn, "users", &[Value::Int(2)]).unwrap();
    db.insert(&mut txn, "users", row![2i64, "b2@x.com", "paris"]).unwrap();
    db.rollback(&mut txn).unwrap();
    db.verify_index("by_city").unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let rows = db.get_by_index(&mut txn, "by_city", &[Value::Str("paris".into())]).unwrap();
    assert_eq!(rows[0].get(1), &Value::Str("b@x.com".into()), "original row back");
    db.commit(&mut txn).unwrap();
}

#[test]
fn crash_recovery_covers_indexes() {
    let db = setup();
    load(&db);
    db.create_index("by_city", "users", &[2], false).unwrap();
    // Committed change.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "users", row![7i64, "g@x.com", "paris"]).unwrap();
    db.commit(&mut txn).unwrap();
    // Loser in flight.
    let mut loser = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut loser, "users", row![8i64, "h@x.com", "paris"]).unwrap();
    db.log().flush_all().unwrap();
    std::mem::forget(loser);
    db.crash_and_recover(0.5, 7).unwrap();
    db.verify_index("by_city").unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let paris = db.get_by_index(&mut txn, "by_city", &[Value::Str("paris".into())]).unwrap();
    assert_eq!(paris.len(), 2, "committed insert kept, loser undone");
    db.commit(&mut txn).unwrap();
}

#[test]
fn ghost_cleanup_removes_index_ghosts() {
    let db = setup();
    load(&db);
    db.create_index("by_city", "users", &[2], false).unwrap();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.delete(&mut txn, "users", &[Value::Int(4)]).unwrap();
    db.commit(&mut txn).unwrap();
    let report = db.run_ghost_cleanup().unwrap();
    assert!(report.removed >= 2, "base ghost + index-entry ghost: {report:?}");
    db.verify_index("by_city").unwrap();
}

#[test]
fn serializable_index_probe_blocks_phantoms() {
    let db = setup();
    load(&db);
    db.create_index("by_city", "users", &[2], false).unwrap();
    let mut reader = db.begin(IsolationLevel::Serializable);
    let rows = db.get_by_index(&mut reader, "by_city", &[Value::Str("berlin".into())]).unwrap();
    assert_eq!(rows.len(), 2);
    // A writer inserting into the probed range must wait for the reader.
    let db2 = Arc::clone(&db);
    let h = std::thread::spawn(move || {
        let mut w = db2.begin(IsolationLevel::ReadCommitted);
        
        w.is_active() && {
            let r = db2.insert(&mut w, "users", row![50i64, "z@x.com", "berlin"]);
            if r.is_ok() {
                db2.commit(&mut w).is_ok()
            } else {
                let _ = db2.rollback(&mut w);
                false
            }
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Re-probe: unchanged while the reader lives.
    let rows = db.get_by_index(&mut reader, "by_city", &[Value::Str("berlin".into())]).unwrap();
    assert_eq!(rows.len(), 2, "no phantom for the serializable reader");
    db.commit(&mut reader).unwrap();
    assert!(h.join().unwrap(), "writer proceeds after reader commits");
    db.verify_index("by_city").unwrap();
}
