//! Observability contract for the group-commit pipeline: batch-size and
//! park-to-wake metrics flow into the database snapshot, and the torture
//! harness's metrics-determinism check holds with the pipeline (and ELR)
//! enabled — identically-seeded runs on the event-tick clock must produce
//! byte-identical snapshots, pipeline counters included.

use std::time::Duration;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::row;
use txview_engine::torture::{run_metrics_check, TortureConfig};
use txview_engine::{
    AggSpec, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};

fn items_schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("grp", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap()
}

fn pipelined_db(elr: bool) -> std::sync::Arc<Database> {
    let db = Database::new_in_memory_with(64, Duration::from_secs(10));
    db.enable_commit_pipeline(elr);
    let t = db.create_table("items", items_schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "totals".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    db
}

/// Single-threaded pipelined commits: every committer self-leads, so the
/// batch-size histogram records one batch of one per commit and nobody
/// ever parks behind a leader.
#[test]
fn pipeline_batch_and_park_metrics_single_threaded() {
    let db = pipelined_db(false);
    let commits = 9i64;
    for i in 0..commits {
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        db.insert(&mut txn, "items", row![i, i % 3, 5i64]).unwrap();
        db.commit(&mut txn).unwrap();
    }
    let s = db.metrics_snapshot();
    assert_eq!(s.counter_value("txn.commits"), Some(commits as u64));

    let batches = s.hist_value("txn.pipeline.batch_commits").expect("batch hist missing");
    assert_eq!(batches.count(), commits as u64, "one round per commit");
    assert_eq!(batches.sum, commits as u64, "every batch resolved exactly one commit");
    assert_eq!(
        s.counter_value("txn.pipeline.leader_syncs"),
        Some(commits as u64),
        "every committer self-led"
    );
    assert_eq!(s.counter_value("txn.pipeline.follower_waits"), Some(0));
    let park = s.hist_value("txn.pipeline.park_to_wake_us").expect("park hist missing");
    assert_eq!(park.count(), 0, "nobody parked single-threaded");
}

/// ELR mode additionally counts early escrow releases; without readers of
/// the stained values, no dependencies are recorded or waited on.
#[test]
fn elr_release_metrics_without_readers() {
    let db = pipelined_db(true);
    for i in 0..6i64 {
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        db.insert(&mut txn, "items", row![i, 1i64, 5i64]).unwrap();
        db.commit(&mut txn).unwrap();
    }
    let s = db.metrics_snapshot();
    let elr = s.counter_value("txn.pipeline.elr_releases").unwrap_or(0);
    assert!(elr > 0, "escrow-holding commits must release early under ELR");
    assert_eq!(s.counter_value("txn.pipeline.dep_recorded"), Some(0));
    assert_eq!(s.counter_value("txn.pipeline.dep_waits"), Some(0));
    assert_eq!(s.counter_value("txn.pipeline.dep_aborts"), Some(0));
}

/// The torture metrics-determinism contract (`run_torture --metrics`)
/// must hold with the pipeline enabled, in both elr modes: structurally
/// valid snapshots, identical across identically-seeded runs, with the
/// pipeline's own instruments live.
#[test]
fn pipelined_torture_metrics_deterministic() {
    for elr in [false, true] {
        let cfg = TortureConfig {
            txns: 18,
            pipeline: true,
            elr,
            ..Default::default()
        };
        let r = run_metrics_check(&cfg).unwrap();
        assert!(
            r.violations.is_empty(),
            "elr={elr}: {:?}",
            r.violations
        );
        let batches = r
            .snapshot
            .hist_value("txn.pipeline.batch_commits")
            .expect("pipeline batch hist missing from torture snapshot");
        assert!(batches.count() > 0, "elr={elr}: no pipeline rounds recorded");
        let commits = r.snapshot.counter_value("txn.commits").unwrap_or(0);
        assert!(
            batches.sum <= commits,
            "elr={elr}: more batch resolutions ({}) than commits ({commits})",
            batches.sum
        );
        if elr {
            assert!(
                r.snapshot.counter_value("txn.pipeline.elr_releases").unwrap_or(0) > 0,
                "ELR torture run released no escrow locks early"
            );
        }
    }
}
