//! Deterministic interleaving explorer + serializability oracle for the
//! escrow protocol (the paper's §4 concurrency claims, made testable).
//!
//! The paper argues that E (escrow) locks admit exactly the concurrency
//! that commutativity allows: concurrent increments interleave freely,
//! while readers at each isolation level still see the values that level
//! promises. Those are statements about *all* interleavings, which timing-
//! based stress tests sample blindly. This module instead takes control of
//! the schedule:
//!
//! * [`sched`] — a cooperative virtual scheduler driving N scripted
//!   transactions as real threads with a single turn token. Yield points
//!   sit at every lock acquire, block, grant, commit and version publish
//!   (see the `SchedHook` seam in `txview-lock`); the scheduler records
//!   each decision as `(candidates, chosen)`, making every run replayable
//!   from its choice list.
//! * [`script`] — scenario/script definitions and the episode runner.
//! * [`oracle`] — the serializability oracle: escrow-aware conflict-graph
//!   acyclicity, final-state equivalence against some serial order,
//!   read-freshness at each isolation level, snapshot recomputation,
//!   FIFO fairness, and liveness.
//! * [`explore`] — bounded exhaustive DFS over all schedules plus a
//!   seeded PCT sampler for larger scripts.
//!
//! The canned scenarios below are the five fixed fixtures the test suite
//! and `run_torture --interleave` enumerate exhaustively, in both Escrow
//! and XLock maintenance modes.

pub mod explore;
pub mod oracle;
pub mod sched;
pub mod script;

pub use explore::{explore_dfs, explore_pct, replay, ExploreReport};
pub use oracle::{check_episode, check_fifo};
pub use sched::{Chooser, Event, EventKind, PctChooser, ReplayChooser, RotationChooser,
    VirtualScheduler};
pub use script::{chain_level_name, chain_names, run_episode, Action, End, Episode, SOp,
    Scenario, Script, TxnOutcome, CHAIN_TERMINAL};

use crate::catalog::MaintenanceMode;
use txview_txn::IsolationLevel;

fn rc(ops: Vec<SOp>, end: End) -> Script {
    Script { isolation: IsolationLevel::ReadCommitted, ops, end }
}

/// Scenario 1 — two escrow incrementers on the same hot group. Every
/// interleaving must commit both and sum the deltas.
pub fn escrow_vs_escrow(mode: MaintenanceMode) -> Scenario {
    Scenario {
        name: format!("escrow_vs_escrow/{mode:?}"),
        mode,
        initial: vec![(1, 1, 10)],
        scripts: vec![
            rc(vec![SOp::Insert { id: 2, grp: 1, amount: 5 }], End::Commit),
            rc(vec![SOp::Insert { id: 3, grp: 1, amount: 7 }], End::Commit),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}

/// Scenario 2 — escrow incrementer vs a Serializable reader that reads the
/// group twice. The reader must never see a half-applied increment and
/// both reads must agree.
pub fn escrow_vs_serializable_reader(mode: MaintenanceMode) -> Scenario {
    Scenario {
        name: format!("escrow_vs_serializable_reader/{mode:?}"),
        mode,
        initial: vec![(1, 1, 10)],
        scripts: vec![
            rc(vec![SOp::Insert { id: 2, grp: 1, amount: 5 }], End::Commit),
            Script {
                isolation: IsolationLevel::Serializable,
                ops: vec![SOp::ReadGroup { grp: 1 }, SOp::ReadGroup { grp: 1 }],
                end: End::Commit,
            },
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}

/// Scenario 3 — escrow incrementer vs a Snapshot reader. The reader never
/// blocks and must see exactly its snapshot, whatever the writer does.
pub fn escrow_vs_snapshot_reader(mode: MaintenanceMode) -> Scenario {
    Scenario {
        name: format!("escrow_vs_snapshot_reader/{mode:?}"),
        mode,
        initial: vec![(1, 1, 10)],
        scripts: vec![
            rc(vec![SOp::Insert { id: 2, grp: 1, amount: 5 }], End::Commit),
            Script {
                isolation: IsolationLevel::Snapshot,
                ops: vec![SOp::ReadGroup { grp: 1 }, SOp::ReadGroup { grp: 1 }],
                end: End::Commit,
            },
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}

/// Scenario 4 — ghost come and go: one transaction deletes the group's
/// last row (count → 0, ghost) while another inserts into the same group.
/// Exercises ghost revival vs ghost cleanup under every ordering.
pub fn ghost_come_and_go(mode: MaintenanceMode) -> Scenario {
    Scenario {
        name: format!("ghost_come_and_go/{mode:?}"),
        mode,
        initial: vec![(1, 1, 10)],
        scripts: vec![
            rc(vec![SOp::Delete { id: 1 }], End::Commit),
            rc(vec![SOp::Insert { id: 2, grp: 1, amount: 7 }], End::Commit),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}

/// Scenario 5 — a classic 2-transaction deadlock cycle on base rows
/// (same-value updates produce no view deltas, so only base X locks are
/// involved). Some interleavings deadlock: the detector must abort the
/// requester that closes the cycle, and the survivor must commit.
pub fn deadlock_cycle(mode: MaintenanceMode) -> Scenario {
    Scenario {
        name: format!("deadlock_cycle/{mode:?}"),
        mode,
        initial: vec![(1, 1, 10), (2, 1, 20)],
        scripts: vec![
            rc(
                vec![
                    SOp::Update { id: 1, grp: 1, amount: 10 },
                    SOp::Update { id: 2, grp: 1, amount: 20 },
                ],
                End::Commit,
            ),
            rc(
                vec![
                    SOp::Update { id: 2, grp: 1, amount: 20 },
                    SOp::Update { id: 1, grp: 1, amount: 10 },
                ],
                End::Commit,
            ),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}

/// The five fixed scenarios for one maintenance mode.
pub fn canned_scenarios(mode: MaintenanceMode) -> Vec<Scenario> {
    vec![
        escrow_vs_escrow(mode),
        escrow_vs_serializable_reader(mode),
        escrow_vs_snapshot_reader(mode),
        ghost_come_and_go(mode),
        deadlock_cycle(mode),
    ]
}

/// FIFO-fairness fixture (XLock mode so the writer takes an X view lock):
/// a Serializable reader holds S on the hot group to commit; a writer
/// blocks in X behind it; a second reader's S request arriving while the X
/// waits must not jump the queue.
pub fn fairness_scenario() -> Scenario {
    Scenario {
        name: "fifo_fairness/XLock".into(),
        mode: MaintenanceMode::XLock,
        initial: vec![(1, 1, 10)],
        scripts: vec![
            Script {
                isolation: IsolationLevel::Serializable,
                ops: vec![SOp::ReadGroup { grp: 1 }],
                end: End::Commit,
            },
            rc(vec![SOp::Insert { id: 2, grp: 1, amount: 5 }], End::Commit),
            rc(vec![SOp::ReadGroup { grp: 1 }], End::Commit),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}

/// Pipeline scenario A — leader handoff race: three escrow incrementers on
/// the same hot group, every one committing through the pipeline. Whichever
/// committer arrives first leads; the others either join its batch or are
/// promoted by the mid-round handoff / end-of-round promotion, in every
/// possible order. All three must ack durable and sum their deltas.
pub fn leader_handoff_race(elr: bool) -> Scenario {
    escrow_vs_escrow_3().with_pipeline(elr)
}

fn escrow_vs_escrow_3() -> Scenario {
    Scenario {
        name: "leader_handoff_race/Escrow".into(),
        mode: MaintenanceMode::Escrow,
        initial: vec![(1, 1, 10)],
        scripts: vec![
            rc(vec![SOp::Insert { id: 2, grp: 1, amount: 5 }], End::Commit),
            rc(vec![SOp::Insert { id: 3, grp: 1, amount: 7 }], End::Commit),
            rc(vec![SOp::Insert { id: 4, grp: 1, amount: 9 }], End::Commit),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}

/// Pipeline scenario B — two-batch overlap: two writers on *disjoint*
/// groups, so the commit pipeline is their only interaction. Schedules
/// where the second commit enqueues between the first leader's append and
/// its sync exercise the two-deep pipeline (batch N+1 forms and appends
/// while batch N's sync is in flight).
pub fn two_batch_overlap(elr: bool) -> Scenario {
    Scenario {
        name: "two_batch_overlap/Escrow".into(),
        mode: MaintenanceMode::Escrow,
        initial: vec![(1, 1, 10), (2, 2, 20)],
        scripts: vec![
            rc(vec![SOp::Insert { id: 3, grp: 1, amount: 5 }], End::Commit),
            rc(vec![SOp::Insert { id: 4, grp: 2, amount: 7 }], End::Commit),
        ],
        groups: vec![1, 2],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
    .with_pipeline(elr)
}

/// Pipeline scenario C — ELR read dependency: an escrow incrementer and an
/// RC reader of the same group. With `elr`, schedules exist where the
/// writer's escrow lock is released at log-append time and the reader
/// observes the not-yet-durable increment; the reader's commit must then
/// wait for (or abort with) the writer. The oracle treats the writer's
/// `CommitPending` event as its visibility point.
pub fn elr_read_dependency(elr: bool) -> Scenario {
    Scenario {
        name: "elr_read_dependency/Escrow".into(),
        mode: MaintenanceMode::Escrow,
        initial: vec![(1, 1, 10)],
        scripts: vec![
            rc(vec![SOp::Insert { id: 2, grp: 1, amount: 5 }], End::Commit),
            rc(vec![SOp::ReadGroup { grp: 1 }, SOp::ReadGroup { grp: 1 }], End::Commit),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
    .with_pipeline(elr)
}

/// The six pipeline fixtures: the three pipeline scenarios, each in
/// `elr = false` and `elr = true` mode.
pub fn pipeline_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for elr in [false, true] {
        out.push(leader_handoff_race(elr));
        out.push(two_batch_overlap(elr));
        out.push(elr_read_dependency(elr));
    }
    out
}

/// Chain fixture A — commit race across DAG depths: a 2-level derived
/// chain (`v → c0 → ctotal`) with two escrow incrementers on *disjoint*
/// base groups. Their cascades are disjoint at the `v` and `c0` depths but
/// collide on `ctotal`'s single global row, so every interleaving of the
/// two commit-time flushes (including fully overlapped ones) must commute
/// there and leave every chain level equal to recomputation.
pub fn chain_commit_race(mode: MaintenanceMode) -> Scenario {
    Scenario {
        name: format!("chain_commit_race/{mode:?}"),
        mode,
        initial: vec![(1, 1, 10), (2, 2, 20)],
        scripts: vec![
            rc(vec![SOp::Insert { id: 3, grp: 1, amount: 5 }], End::Commit),
            rc(vec![SOp::Insert { id: 4, grp: 2, amount: 7 }], End::Commit),
        ],
        groups: vec![1, 2],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 2,
    }
}

/// Chain fixture B — ELR vs an in-flight cascade: with the pipeline and
/// early lock release on, an RC reader polls the *mid-chain* view `c0`
/// twice while a writer's increment cascades through it at commit. The
/// reader must never observe a half-propagated chain (the cascade flush
/// completes before the writer's escrow locks — including the chain-row
/// locks taken during the flush — are released at log-append time).
pub fn cascade_elr() -> Scenario {
    Scenario {
        name: "cascade_elr/Escrow".into(),
        mode: MaintenanceMode::Escrow,
        initial: vec![(1, 1, 10)],
        scripts: vec![
            rc(vec![SOp::Insert { id: 2, grp: 1, amount: 5 }], End::Commit),
            rc(
                vec![SOp::ReadChain { level: 0, grp: 1 }, SOp::ReadChain { level: 0, grp: 1 }],
                End::Commit,
            ),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 2,
    }
    .with_pipeline(true)
}

/// The chain fixtures: the depth race in both maintenance modes, plus the
/// ELR cascade reader.
pub fn chain_scenarios() -> Vec<Scenario> {
    vec![
        chain_commit_race(MaintenanceMode::Escrow),
        chain_commit_race(MaintenanceMode::XLock),
        cascade_elr(),
    ]
}

/// MIN/MAX fixture — extremum-delete race: transaction A deletes the row
/// holding the group MAX (forcing the paper's fallback: recompute the
/// group from base under an S object lock) while transaction B inserts a
/// new maximum into the same group. B's base insert (IX on the base
/// object, X on the view group row) collides with A's recompute window (S
/// on the base object, X on the same view row) in every order the
/// explorer can produce — including schedules where one blocks behind the
/// other's X and schedules that deadlock and pick a victim. Every
/// interleaving must leave the stored MIN/MAX/SUM equal to recomputation.
pub fn minmax_delete_race() -> Scenario {
    Scenario {
        name: "minmax_delete_race/XLock".into(),
        mode: MaintenanceMode::XLock,
        initial: vec![(1, 1, 10), (2, 1, 30), (3, 1, 20)],
        scripts: vec![
            rc(vec![SOp::Delete { id: 2 }], End::Commit),
            rc(vec![SOp::Insert { id: 4, grp: 1, amount: 50 }], End::Commit),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: true,
        chain_depth: 0,
    }
}

/// Three-transaction deadlock cycle over base rows 1→2→3→1 (same-value
/// updates: base locks only). Driven by a
/// [`RotationChooser`], every transaction grabs its first row, then all
/// three request the next row round-robin; the last requester closes the
/// cycle and must be the victim — and, having the highest TxnId, it is
/// also the youngest.
pub fn deadlock_cycle3(mode: MaintenanceMode) -> Scenario {
    let upd = |id: i64| SOp::Update { id, grp: 1, amount: 10 * id };
    Scenario {
        name: format!("deadlock_cycle3/{mode:?}"),
        mode,
        initial: vec![(1, 1, 10), (2, 1, 20), (3, 1, 30)],
        scripts: vec![
            rc(vec![upd(1), upd(2)], End::Commit),
            rc(vec![upd(2), upd(3)], End::Commit),
            rc(vec![upd(3), upd(1)], End::Commit),
        ],
        groups: vec![1],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}
