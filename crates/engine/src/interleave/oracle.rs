//! The serializability oracle: decides whether one [`Episode`] is a
//! correct execution of its [`Scenario`].
//!
//! Checks, in order:
//!
//! 1. **Liveness** — the scheduler never stalled and no worker panicked.
//! 2. **Engine invariant** — `verify_view` passed on the final state.
//! 3. **Conflict-graph acyclicity** — committed transactions, with
//!    escrow-aware conflict rules: commuting increment deltas on the same
//!    view group do *not* conflict with each other, but do conflict with
//!    group reads; base writes conflict on row id; reads enter the graph
//!    only for Serializable transactions (short RC read locks are not 2PL
//!    and promise no serialization point).
//! 4. **Final-state equivalence** — the final base table *and* view equal
//!    the outcome of some serial order of the committed scripts.
//! 5. **Locking-read freshness** — every RC/Serializable view read
//!    observed exactly `initial + Σ(deltas of transactions committed
//!    before the read) + own prior deltas`; in particular an RC read never
//!    observes an uncommitted foreign delta.
//! 6. **Serializable repeatable reads** — same group read twice in one
//!    Serializable transaction yields the same value.
//! 7. **Snapshot consistency** — snapshot reads equal a recomputation from
//!    exactly the transactions with `commit_lsn ≤ snapshot_lsn`.
//! 8. **FIFO fairness** — a request that arrives while an incompatible
//!    request is already waiting must not be granted first.
//! 9. **Victim bookkeeping** — a transaction with a `DeadlockVictim` event
//!    must have aborted.
//!
//! Every violation message carries enough context to debug from the
//! episode's decision list alone.

use std::collections::{BTreeMap, HashMap};

use txview_lock::SchedEvent;
use txview_txn::IsolationLevel;

use super::script::{Action, End, Episode, SOp, Scenario, TxnOutcome};
use super::sched::{Event, EventKind};

/// Per-transaction digest extracted from the history.
struct TxnView<'a> {
    worker: usize,
    txn: u64,
    isolation: IsolationLevel,
    committed: bool,
    /// Sequence of the `Committed` hook event (the commit point).
    committed_seq: Option<u64>,
    commit_lsn: Option<u64>,
    snapshot_lsn: u64,
    /// Script-level actions in order: (seq, action, matching script op).
    actions: Vec<(u64, &'a Action, Option<SOp>)>,
}

fn digest<'a>(sc: &Scenario, ep: &'a Episode) -> Vec<TxnView<'a>> {
    let mut views: Vec<TxnView<'a>> = Vec::new();
    for (i, w) in ep.workers.iter().enumerate() {
        let script = &sc.scripts[i];
        let mut tv = TxnView {
            worker: i,
            txn: w.txn,
            isolation: script.isolation,
            committed: matches!(w.outcome, TxnOutcome::Committed { .. }),
            committed_seq: None,
            commit_lsn: match w.outcome {
                TxnOutcome::Committed { lsn } => Some(lsn),
                TxnOutcome::Aborted { .. } => None,
            },
            snapshot_lsn: 0,
            actions: Vec::new(),
        };
        let mut op_cursor = 0usize;
        for ev in &ep.history {
            if ev.txn != w.txn {
                continue;
            }
            match &ev.kind {
                EventKind::Action(a @ Action::Begin { snapshot_lsn, .. }) => {
                    tv.snapshot_lsn = *snapshot_lsn;
                    tv.actions.push((ev.seq, a, None));
                }
                EventKind::Action(a) => {
                    let op = script.ops.get(op_cursor).copied();
                    op_cursor += 1;
                    tv.actions.push((ev.seq, a, op));
                }
                // The transaction's visibility point: `CommitPending` when
                // early lock release published its escrow deltas at
                // log-append time, else the ordinary `Committed` event.
                // First event wins — under ELR a reader may legitimately
                // observe the deltas from the pending point on.
                EventKind::Hook(
                    SchedEvent::CommitPending { commit_lsn }
                    | SchedEvent::Committed { commit_lsn },
                ) => {
                    if tv.committed_seq.is_none() {
                        tv.committed_seq = Some(ev.seq);
                    }
                    if tv.commit_lsn.is_none() {
                        tv.commit_lsn = Some(*commit_lsn);
                    }
                }
                EventKind::Hook(_) => {}
            }
        }
        views.push(tv);
    }
    views
}

/// All group keys the scenario can possibly touch.
fn group_universe(sc: &Scenario) -> Vec<i64> {
    let mut groups: Vec<i64> = sc.groups.clone();
    for &(_, g, _) in &sc.initial {
        groups.push(g);
    }
    for s in &sc.scripts {
        for op in &s.ops {
            match *op {
                SOp::Insert { grp, .. }
                | SOp::Update { grp, .. }
                | SOp::ReadGroup { grp }
                | SOp::ReadChain { grp, .. } => groups.push(grp),
                _ => {}
            }
        }
    }
    groups.sort_unstable();
    groups.dedup();
    groups
}

fn initial_aggs(sc: &Scenario) -> BTreeMap<i64, (i64, i64)> {
    let mut out: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
    for &(_, g, a) in &sc.initial {
        let e = out.entry(g).or_insert((0, 0));
        e.0 += 1;
        e.1 += a;
    }
    out
}

/// Group aggregate `(count, sum)` predicted at history position `at_seq`
/// for transaction `me`: initial + committed-before deltas + own prior
/// deltas.
fn predicted_agg(
    views: &[TxnView<'_>],
    initial: &BTreeMap<i64, (i64, i64)>,
    grp: i64,
    at_seq: u64,
    me: u64,
) -> (i64, i64) {
    let (mut count, mut sum) = initial.get(&grp).copied().unwrap_or((0, 0));
    for tv in views {
        let include_all =
            tv.txn != me && tv.committed && tv.committed_seq.map(|s| s < at_seq).unwrap_or(false);
        for (seq, action, _) in &tv.actions {
            let mine = tv.txn == me && *seq < at_seq;
            if !include_all && !mine {
                continue;
            }
            if let Action::Write { deltas, ok: true, .. } = action {
                for &(g, dc, ds) in deltas {
                    if g == grp {
                        count += dc;
                        sum += ds;
                    }
                }
            }
        }
    }
    (count, sum)
}

/// Group aggregate predicted for a snapshot at `snapshot_lsn`.
fn snapshot_agg(
    views: &[TxnView<'_>],
    initial: &BTreeMap<i64, (i64, i64)>,
    grp: i64,
    snapshot_lsn: u64,
) -> (i64, i64) {
    let (mut count, mut sum) = initial.get(&grp).copied().unwrap_or((0, 0));
    for tv in views {
        let visible =
            tv.committed && tv.commit_lsn.map(|lsn| lsn <= snapshot_lsn).unwrap_or(false);
        if !visible {
            continue;
        }
        for (_, action, _) in &tv.actions {
            if let Action::Write { deltas, ok: true, .. } = action {
                for &(g, dc, ds) in deltas {
                    if g == grp {
                        count += dc;
                        sum += ds;
                    }
                }
            }
        }
    }
    (count, sum)
}

/// Conflict-graph node actions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CAction {
    BaseWrite(i64),
    BaseRead(i64),
    Delta(i64),
    GroupRead(i64),
}

fn conflicts(a: CAction, b: CAction) -> bool {
    use CAction::*;
    match (a, b) {
        (BaseWrite(x), BaseWrite(y)) => x == y,
        (BaseWrite(x), BaseRead(y)) | (BaseRead(x), BaseWrite(y)) => x == y,
        (Delta(x), GroupRead(y)) | (GroupRead(x), Delta(y)) => x == y,
        // The escrow-aware rule: increments on the same group commute.
        (Delta(_), Delta(_)) => false,
        _ => false,
    }
}

fn check_conflict_graph(sc: &Scenario, views: &[TxnView<'_>], out: &mut Vec<String>) {
    let universe = group_universe(sc);
    // (txn index in `nodes`, seq, action) for committed txns only.
    let mut nodes: Vec<u64> = Vec::new();
    let mut acts: Vec<(usize, u64, CAction)> = Vec::new();
    for tv in views {
        if !tv.committed {
            continue;
        }
        let idx = nodes.len();
        nodes.push(tv.txn);
        let serializable = tv.isolation == IsolationLevel::Serializable;
        for (seq, action, op) in &tv.actions {
            match action {
                Action::Write { deltas, ok: true, base_write, .. } => {
                    if let Some(id) = base_write {
                        acts.push((idx, *seq, CAction::BaseWrite(*id)));
                    }
                    for &(g, dc, ds) in deltas {
                        if dc != 0 || ds != 0 {
                            acts.push((idx, *seq, CAction::Delta(g)));
                        }
                    }
                }
                Action::Read { grp, .. } if serializable => {
                    acts.push((idx, *seq, CAction::GroupRead(*grp)));
                }
                Action::ReadRow { id, .. } if serializable => {
                    acts.push((idx, *seq, CAction::BaseRead(*id)));
                }
                Action::Scan { .. } if serializable => {
                    // A phantom-protected scan reads every group.
                    for &g in &universe {
                        acts.push((idx, *seq, CAction::GroupRead(g)));
                    }
                }
                _ => {
                    let _ = op;
                }
            }
        }
    }
    // Edges T→U when T's action precedes a conflicting action of U.
    let n = nodes.len();
    let mut adj = vec![vec![false; n]; n];
    for (i, (ti, si, ai)) in acts.iter().enumerate() {
        for (tj, sj, aj) in acts.iter().skip(i + 1) {
            if ti == tj || !conflicts(*ai, *aj) {
                continue;
            }
            if si < sj {
                adj[*ti][*tj] = true;
            } else {
                adj[*tj][*ti] = true;
            }
        }
    }
    // Cycle detection (colors: 0 white, 1 grey, 2 black).
    let mut color = vec![0u8; n];
    fn dfs(v: usize, adj: &[Vec<bool>], color: &mut [u8]) -> bool {
        color[v] = 1;
        for (u, &edge) in adj[v].iter().enumerate() {
            if !edge {
                continue;
            }
            if color[u] == 1 {
                return true;
            }
            if color[u] == 0 && dfs(u, adj, color) {
                return true;
            }
        }
        color[v] = 2;
        false
    }
    for v in 0..n {
        if color[v] == 0 && dfs(v, &adj, &mut color) {
            out.push(format!(
                "[{}] conflict graph over committed txns {:?} has a cycle \
                 (history is not conflict-serializable)",
                sc.name, nodes
            ));
            return;
        }
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut used = vec![false; n];
    fn rec(n: usize, cur: &mut Vec<usize>, used: &mut [bool], out: &mut Vec<Vec<usize>>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(n, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    rec(n, &mut cur, &mut used, &mut out);
    out
}

/// Serial model execution of the committed scripts in `order`.
fn serial_final(
    sc: &Scenario,
    order: &[usize],
) -> (BTreeMap<i64, (i64, i64)>, BTreeMap<i64, (i64, i64)>) {
    let mut base: BTreeMap<i64, (i64, i64)> =
        sc.initial.iter().map(|&(id, g, a)| (id, (g, a))).collect();
    for &w in order {
        for op in &sc.scripts[w].ops {
            match *op {
                SOp::Insert { id, grp, amount } => {
                    base.entry(id).or_insert((grp, amount));
                }
                SOp::Update { id, grp, amount } => {
                    if let Some(v) = base.get_mut(&id) {
                        *v = (grp, amount);
                    }
                }
                SOp::Delete { id } => {
                    base.remove(&id);
                }
                SOp::ReadGroup { .. } | SOp::ScanView | SOp::ReadRow { .. }
                | SOp::ReadChain { .. } => {}
            }
        }
    }
    let mut view: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
    for (_, (g, a)) in &base {
        let e = view.entry(*g).or_insert((0, 0));
        e.0 += 1;
        e.1 += a;
    }
    (base, view)
}

fn check_final_state(sc: &Scenario, views: &[TxnView<'_>], ep: &Episode, out: &mut Vec<String>) {
    let committed: Vec<usize> = views
        .iter()
        .filter(|tv| tv.committed && sc.scripts[tv.worker].end == End::Commit)
        .map(|tv| tv.worker)
        .collect();
    for perm in permutations(committed.len()) {
        let order: Vec<usize> = perm.iter().map(|&i| committed[i]).collect();
        let (base, view) = serial_final(sc, &order);
        if base == ep.base_dump && view == ep.view_dump {
            return;
        }
    }
    out.push(format!(
        "[{}] final state matches NO serial order of committed txns: \
         base={:?} view={:?}",
        sc.name, ep.base_dump, ep.view_dump
    ));
}

fn check_reads(sc: &Scenario, views: &[TxnView<'_>], out: &mut Vec<String>) {
    let initial = initial_aggs(sc);
    let universe = group_universe(sc);
    for tv in views {
        let mut wrote_base = false;
        let mut seen: HashMap<i64, Option<(i64, i64)>> = HashMap::new();
        for (seq, action, _) in &tv.actions {
            if let Action::Write { ok: true, base_write: Some(_), .. } = action {
                wrote_base = true;
            }
            match (tv.isolation, action) {
                (IsolationLevel::Snapshot, Action::Read { grp, observed }) => {
                    if wrote_base {
                        continue; // read-own-writes under snapshot: out of scope
                    }
                    let (c, s) = snapshot_agg(views, &initial, *grp, tv.snapshot_lsn);
                    let expect = if c > 0 { Some((c, s)) } else { None };
                    if *observed != expect {
                        out.push(format!(
                            "[{}] txn {} snapshot read of group {grp} at seq {seq} observed \
                             {observed:?}, but snapshot lsn {} recomputes to {expect:?}",
                            sc.name, tv.txn, tv.snapshot_lsn
                        ));
                    }
                }
                (IsolationLevel::Snapshot, Action::Scan { observed }) => {
                    if wrote_base {
                        continue;
                    }
                    let expect: Vec<(i64, i64, i64)> = universe
                        .iter()
                        .filter_map(|&g| {
                            let (c, s) = snapshot_agg(views, &initial, g, tv.snapshot_lsn);
                            (c > 0).then_some((g, c, s))
                        })
                        .collect();
                    if *observed != expect {
                        out.push(format!(
                            "[{}] txn {} snapshot scan at seq {seq} observed {observed:?}, \
                             but snapshot lsn {} recomputes to {expect:?}",
                            sc.name, tv.txn, tv.snapshot_lsn
                        ));
                    }
                }
                (_, Action::Read { grp, observed }) => {
                    // Locking read (RC or Serializable): exact freshness.
                    let (c, s) = predicted_agg(views, &initial, *grp, *seq, tv.txn);
                    let expect = if c > 0 { Some((c, s)) } else { None };
                    if *observed != expect {
                        out.push(format!(
                            "[{}] txn {} ({:?}) read of group {grp} at seq {seq} observed \
                             {observed:?}, expected {expect:?} (initial + committed-before + \
                             own deltas) — an uncommitted or lost delta was observed",
                            sc.name, tv.txn, tv.isolation
                        ));
                    }
                    if tv.isolation == IsolationLevel::Serializable {
                        if let Some(prev) = seen.get(grp) {
                            if prev != observed {
                                out.push(format!(
                                    "[{}] txn {} (Serializable) re-read of group {grp} at \
                                     seq {seq} observed {observed:?} after first observing \
                                     {prev:?} — repeatable read broken",
                                    sc.name, tv.txn
                                ));
                            }
                        }
                        seen.insert(*grp, *observed);
                    }
                }
                (IsolationLevel::Serializable, Action::Scan { observed }) => {
                    let expect: Vec<(i64, i64, i64)> = universe
                        .iter()
                        .filter_map(|&g| {
                            let (c, s) = predicted_agg(views, &initial, g, *seq, tv.txn);
                            (c > 0).then_some((g, c, s))
                        })
                        .collect();
                    if *observed != expect {
                        out.push(format!(
                            "[{}] txn {} serializable scan at seq {seq} observed \
                             {observed:?}, expected {expect:?}",
                            sc.name, tv.txn
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

/// FIFO fairness: while transaction A is blocked on lock `N` (a plain,
/// non-converting request), a later non-converting request on `N` whose
/// mode is incompatible with A's must not be granted before A. Public so
/// the fairness regression test can also feed it synthetic histories
/// (non-vacuity: the rule must actually fire on an overtake).
pub fn check_fifo(history: &[Event]) -> Vec<String> {
    let mut out = Vec::new();
    for ev in history {
        let EventKind::Hook(SchedEvent::LockBlocked { name, mode, converting: false }) = &ev.kind
        else {
            continue;
        };
        let (a_txn, a_seq, a_mode) = (ev.txn, ev.seq, *mode);
        // A's eventual grant of this blocked request.
        let Some(a_grant) = history.iter().find_map(|e| match &e.kind {
            EventKind::Hook(SchedEvent::LockGranted { name: n, converting: false, .. })
                if e.txn == a_txn && e.seq > a_seq && n == name =>
            {
                Some(e.seq)
            }
            _ => None,
        }) else {
            continue; // A never granted (victim/timeout): nothing to order.
        };
        for req in history {
            let EventKind::Hook(SchedEvent::LockRequest { name: rn, mode: rm }) = &req.kind else {
                continue;
            };
            if req.txn == a_txn || rn != name || !(a_seq < req.seq && req.seq < a_grant) {
                continue;
            }
            if rm.compatible(a_mode) {
                continue; // Compatible requests may be granted together.
            }
            // A requester that already holds the lock (covered re-request or
            // conversion) legitimately bypasses the queue.
            let holds = history
                .iter()
                .filter(|e| e.txn == req.txn && e.seq < req.seq)
                .fold(false, |held, e| match &e.kind {
                    EventKind::Hook(SchedEvent::LockGranted { name: n, .. }) if n == name => true,
                    EventKind::Hook(SchedEvent::LockReleased { name: n }) if n == name => false,
                    _ => held,
                });
            if holds {
                continue;
            }
            let b_grant = history.iter().find_map(|e| match &e.kind {
                EventKind::Hook(SchedEvent::LockGranted { name: n, converting: false, .. })
                    if e.txn == req.txn && e.seq > req.seq && n == name =>
                {
                    Some(e.seq)
                }
                _ => None,
            });
            if let Some(b_grant) = b_grant {
                if b_grant < a_grant {
                    out.push(format!(
                        "FIFO violation on {name}: txn {} blocked in {a_mode} at seq {a_seq} \
                         was overtaken by txn {} ({rm} requested at seq {}, granted at seq \
                         {b_grant} before seq {a_grant})",
                        a_txn, req.txn, req.seq
                    ));
                }
            }
        }
    }
    out
}

fn check_victims(sc: &Scenario, views: &[TxnView<'_>], ep: &Episode, out: &mut Vec<String>) {
    for ev in &ep.history {
        if let EventKind::Hook(SchedEvent::DeadlockVictim { .. }) = ev.kind {
            let committed = views.iter().any(|tv| tv.txn == ev.txn && tv.committed);
            if committed {
                out.push(format!(
                    "[{}] txn {} was chosen as deadlock victim at seq {} yet committed",
                    sc.name, ev.txn, ev.seq
                ));
            }
        }
    }
}

/// Run every oracle rule against one episode. Empty result = correct.
pub fn check_episode(sc: &Scenario, ep: &Episode) -> Vec<String> {
    let mut out = Vec::new();
    if ep.stalled {
        out.push(format!(
            "[{}] scheduler stall: blocked workers with no runnable worker \
             (deadlock detection failed to break a cycle)",
            sc.name
        ));
    }
    if ep.panicked {
        out.push(format!("[{}] a worker thread panicked", sc.name));
    }
    if let Some(e) = &ep.verify_error {
        out.push(format!("[{}] verify_view failed on final state: {e}", sc.name));
    }
    let views = digest(sc, ep);
    check_conflict_graph(sc, &views, &mut out);
    check_final_state(sc, &views, ep, &mut out);
    check_reads(sc, &views, &mut out);
    for v in check_fifo(&ep.history) {
        out.push(format!("[{}] {v}", sc.name));
    }
    check_victims(sc, &views, ep, &mut out);
    out
}
