//! Transaction scripts and the episode runner.
//!
//! A [`Scenario`] is a fixed initial base table plus N transaction
//! [`Script`]s. [`run_episode`] builds a fresh in-memory database, installs
//! a [`VirtualScheduler`](super::sched::VirtualScheduler) as the lock
//! manager's hook, runs every script on its own worker thread under the
//! scheduler's turn token, and returns the full [`Episode`]: the decision
//! list (replayable), the event history, per-transaction outcomes, and the
//! final base/view state.
//!
//! Each worker also maintains a *shadow* of the base table (shared map
//! `id → (grp, amount)`, mutated only under the turn token, with a per-txn
//! undo log reverted on abort). The shadow is sound because base rows are
//! X-locked until commit, so between an op's success and the txn's end no
//! other worker can change the row. It gives the oracle exact view-group
//! deltas for Update/Delete without re-deriving them from engine internals.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{Error, Row, Value};
use txview_txn::IsolationLevel;

use crate::catalog::{AggSpec, MaintenanceMode, Predicate, ViewSource, ViewSpec};
use crate::db::Database;

use super::sched::{Chooser, Event, VirtualScheduler};

/// One scripted operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SOp {
    /// Insert `(id, grp, amount)` into the base table.
    Insert { id: i64, grp: i64, amount: i64 },
    /// Update row `id` to `(grp, amount)`.
    Update { id: i64, grp: i64, amount: i64 },
    /// Delete row `id`.
    Delete { id: i64 },
    /// Read the view row of `grp` (count, sum).
    ReadGroup { grp: i64 },
    /// Full view scan.
    ScanView,
    /// Read base row `id`.
    ReadRow { id: i64 },
    /// Read the derived chain view at identity `level` for `grp`. Only
    /// meaningful when the scenario has `chain_depth > level + 1` (identity
    /// levels mirror `v`'s `(count, sum)` per group, so the freshness
    /// oracle applies unchanged).
    ReadChain { level: usize, grp: i64 },
}

/// Name of the identity chain view at `level` (level 0 derives from `v`).
pub fn chain_level_name(level: usize) -> String {
    format!("c{level}")
}

/// Name of the terminal (global rollup) chain view.
pub const CHAIN_TERMINAL: &str = "ctotal";

/// Names of the derived chain views a scenario with `chain_depth` builds,
/// shallowest first; the last is the global rollup [`CHAIN_TERMINAL`].
pub fn chain_names(chain_depth: usize) -> Vec<String> {
    (0..chain_depth)
        .map(|d| if d + 1 == chain_depth { CHAIN_TERMINAL.into() } else { chain_level_name(d) })
        .collect()
}

/// How a script ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum End {
    /// Commit the transaction.
    Commit,
    /// Roll it back.
    Rollback,
}

/// One transaction's script.
#[derive(Clone, Debug)]
pub struct Script {
    /// Isolation level the transaction runs at.
    pub isolation: IsolationLevel,
    /// Operations, in order.
    pub ops: Vec<SOp>,
    /// Commit or rollback at the end.
    pub end: End,
}

/// A complete test scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Name for reports.
    pub name: String,
    /// View maintenance mode (escrow or xlock baseline).
    pub mode: MaintenanceMode,
    /// Initial committed base rows `(id, grp, amount)`.
    pub initial: Vec<(i64, i64, i64)>,
    /// The concurrent transactions.
    pub scripts: Vec<Script>,
    /// Universe of group keys the scenario can touch (for scan modeling).
    pub groups: Vec<i64>,
    /// Route commits through the leader-based group-commit pipeline.
    pub pipeline: bool,
    /// With the pipeline: early escrow-lock release at log-append time.
    pub elr: bool,
    /// Give the view MIN/MAX aggregates (forcing X-mode maintenance with
    /// the recompute-on-extremum-delete fallback) in addition to the SUM.
    /// The view row grows to `(grp, count, sum, min, max)`; everything the
    /// oracle models reads the `(count, sum)` prefix, which is unchanged.
    pub minmax: bool,
    /// Depth of the derived-view chain stacked on `v` (0 = none). Levels
    /// `0..depth-1` are identity views (`group_by [0]`, sum of the sum
    /// column); the last level is a single-row global rollup.
    pub chain_depth: usize,
}

impl Scenario {
    /// The same scenario with commits routed through the group-commit
    /// pipeline (and, with `elr`, early escrow-lock release). The name
    /// gains a `/pipeline` or `/elr` suffix so reports and replay commands
    /// stay unambiguous.
    pub fn with_pipeline(mut self, elr: bool) -> Scenario {
        self.pipeline = true;
        self.elr = elr;
        self.name = format!("{}/{}", self.name, if elr { "elr" } else { "pipeline" });
        self
    }
}

/// Script-level action recorded into the history.
#[derive(Clone, Debug)]
pub enum Action {
    /// Transaction began.
    Begin {
        /// Isolation level.
        isolation: IsolationLevel,
        /// Snapshot LSN (meaningful for Snapshot isolation).
        snapshot_lsn: u64,
    },
    /// A DML op finished (successfully or not).
    Write {
        /// Base row id written (Some for Insert/Update/Delete that reached
        /// the base table).
        base_write: Option<i64>,
        /// View-group deltas `(grp, dcount, dsum)` produced on success.
        deltas: Vec<(i64, i64, i64)>,
        /// Did the op succeed?
        ok: bool,
        /// Error text when it failed.
        err: Option<String>,
    },
    /// View point read: observed `(count, sum)` or None if group absent.
    Read {
        /// Group key.
        grp: i64,
        /// Observed aggregate, if the group was visible.
        observed: Option<(i64, i64)>,
    },
    /// Base row read: observed `(grp, amount)` or None.
    ReadRow {
        /// Row id.
        id: i64,
        /// Observed values.
        observed: Option<(i64, i64)>,
    },
    /// Full view scan: observed `(grp, count, sum)` rows.
    Scan {
        /// Observed rows in key order.
        observed: Vec<(i64, i64, i64)>,
    },
}

/// How a transaction ended.
#[derive(Clone, Debug)]
pub enum TxnOutcome {
    /// Committed at this LSN.
    Committed {
        /// Commit LSN.
        lsn: u64,
    },
    /// Rolled back (scripted or forced by deadlock/timeout).
    Aborted {
        /// Why.
        reason: String,
    },
}

/// Everything one worker produced.
#[derive(Clone, Debug)]
pub struct WorkerOutcome {
    /// Engine transaction id.
    pub txn: u64,
    /// Commit/abort.
    pub outcome: TxnOutcome,
}

/// Full result of one scheduled execution.
#[derive(Clone, Debug)]
pub struct Episode {
    /// Scheduler decisions `(n_candidates, chosen)` — the replay key.
    pub decisions: Vec<(usize, usize)>,
    /// Interleaved event history.
    pub history: Vec<Event>,
    /// Per-worker outcomes, indexed like `Scenario::scripts`.
    pub workers: Vec<WorkerOutcome>,
    /// Scheduler detected a stall (blocked workers, none runnable).
    pub stalled: bool,
    /// A worker thread panicked.
    pub panicked: bool,
    /// Final base table: id → (grp, amount).
    pub base_dump: BTreeMap<i64, (i64, i64)>,
    /// Final view: grp → (count, sum).
    pub view_dump: BTreeMap<i64, (i64, i64)>,
    /// `verify_view` error text, if the engine's own invariant failed.
    pub verify_error: Option<String>,
    /// ELR commit-dependency edges `(dependent, predecessor)` recorded
    /// during the episode (empty without an ELR pipeline).
    pub dep_edges: Vec<(u64, u64)>,
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("grp", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .expect("static schema")
}

fn build_db(sc: &Scenario) -> Arc<Database> {
    // 2s lock timeout doubles as the stall-recovery bound: if the virtual
    // scheduler ever wedges (oracle reports it), blocked workers time out
    // and the episode still terminates.
    let db = Database::new_in_memory_with(256, Duration::from_secs(2));
    if sc.pipeline {
        db.enable_commit_pipeline(sc.elr);
    }
    let t = db.create_table("items", schema()).expect("create table");
    let aggs = if sc.minmax {
        vec![AggSpec::SumInt { col: 2 }, AggSpec::Min { col: 2 }, AggSpec::Max { col: 2 }]
    } else {
        vec![AggSpec::SumInt { col: 2 }]
    };
    db.create_indexed_view(ViewSpec {
        name: "v".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs,
        filter: Predicate::True,
        maintenance: sc.mode,
        deferred: false,
        eager_group_delete: false,
    })
    .expect("create view");
    // Derived chain: each level sums the previous level's sum column; the
    // terminal level is the global rollup. Registered before the seed rows
    // so cascades — not the initial population scan — carry the deltas.
    let mut parent = "v".to_string();
    for (d, name) in chain_names(sc.chain_depth).into_iter().enumerate() {
        let group_by = if d + 1 == sc.chain_depth { vec![] } else { vec![0] };
        db.create_derived_view(&name, &parent, group_by, vec![AggSpec::SumInt { col: 2 }], sc.mode)
            .expect("create chain view");
        parent = name;
    }
    for &(id, grp, amount) in &sc.initial {
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        db.insert(
            &mut txn,
            "items",
            Row::new(vec![Value::Int(id), Value::Int(grp), Value::Int(amount)]),
        )
        .expect("seed insert");
        db.commit(&mut txn).expect("seed commit");
    }
    db
}

type Shadow = HashMap<i64, (i64, i64)>;

/// Per-op shadow update; returns the view-group deltas of a *successful*
/// op and pushes the inverse onto the undo log.
fn shadow_apply(
    shadow: &mut Shadow,
    undo: &mut Vec<(i64, Option<(i64, i64)>)>,
    op: SOp,
) -> Vec<(i64, i64, i64)> {
    match op {
        SOp::Insert { id, grp, amount } => {
            undo.push((id, shadow.insert(id, (grp, amount))));
            vec![(grp, 1, amount)]
        }
        SOp::Update { id, grp, amount } => {
            let old = shadow.insert(id, (grp, amount));
            undo.push((id, old));
            let (og, oa) = old.expect("engine accepted update ⇒ row existed");
            if og == grp {
                vec![(grp, 0, amount - oa)]
            } else {
                vec![(og, -1, -oa), (grp, 1, amount)]
            }
        }
        SOp::Delete { id } => {
            let old = shadow.remove(&id);
            undo.push((id, old));
            let (og, oa) = old.expect("engine accepted delete ⇒ row existed");
            vec![(og, -1, -oa)]
        }
        SOp::ReadGroup { .. } | SOp::ScanView | SOp::ReadRow { .. } | SOp::ReadChain { .. } => {
            Vec::new()
        }
    }
}

fn shadow_revert(shadow: &mut Shadow, undo: &mut Vec<(i64, Option<(i64, i64)>)>) {
    while let Some((id, old)) = undo.pop() {
        match old {
            Some(v) => {
                shadow.insert(id, v);
            }
            None => {
                shadow.remove(&id);
            }
        }
    }
}

fn row_to_group(r: &Row) -> (i64, i64, i64) {
    let grp = r.get(0).as_int().expect("group col");
    let count = r.get(1).as_int().expect("count col");
    let sum = r.get(2).as_int().expect("sum col");
    (grp, count, sum)
}

fn run_worker(
    db: Arc<Database>,
    sched: Arc<VirtualScheduler>,
    shadow: Arc<Mutex<Shadow>>,
    i: usize,
    script: Script,
) -> WorkerOutcome {
    sched.attach(i);
    // Begin under the turn token so TxnId allocation order is scheduled.
    let mut txn = db.begin(script.isolation);
    let tid = txn.id;
    sched.register_txn(i, tid);
    sched.record_action(
        txn.id,
        Action::Begin { isolation: script.isolation, snapshot_lsn: txn.snapshot_lsn.0 },
    );
    let mut undo: Vec<(i64, Option<(i64, i64)>)> = Vec::new();

    for &op in &script.ops {
        // Snapshot ops take no locks, so give them an explicit yield point;
        // locking ops yield inside `LockManager::acquire`.
        if script.isolation == IsolationLevel::Snapshot {
            sched.script_yield(tid);
        }
        let res: Result<Action, Error> = match op {
            SOp::Insert { id, grp, amount } => db
                .insert(
                    &mut txn,
                    "items",
                    Row::new(vec![Value::Int(id), Value::Int(grp), Value::Int(amount)]),
                )
                .map(|()| {
                    let deltas = shadow_apply(&mut shadow.lock(), &mut undo, op);
                    Action::Write { base_write: Some(id), deltas, ok: true, err: None }
                }),
            SOp::Update { id, grp, amount } => db
                .update(
                    &mut txn,
                    "items",
                    Row::new(vec![Value::Int(id), Value::Int(grp), Value::Int(amount)]),
                )
                .map(|()| {
                    let deltas = shadow_apply(&mut shadow.lock(), &mut undo, op);
                    Action::Write { base_write: Some(id), deltas, ok: true, err: None }
                }),
            SOp::Delete { id } => db.delete(&mut txn, "items", &[Value::Int(id)]).map(|()| {
                let deltas = shadow_apply(&mut shadow.lock(), &mut undo, op);
                Action::Write { base_write: Some(id), deltas, ok: true, err: None }
            }),
            SOp::ReadGroup { grp } => db
                .view_lookup(&mut txn, "v", &[Value::Int(grp)])
                .map(|row| Action::Read {
                    grp,
                    observed: row.map(|r| {
                        let (_, c, s) = row_to_group(&r);
                        (c, s)
                    }),
                }),
            SOp::ScanView => db.view_scan(&mut txn, "v", None, None).map(|rows| Action::Scan {
                observed: rows.iter().map(row_to_group).collect(),
            }),
            SOp::ReadChain { level, grp } => db
                .view_lookup(&mut txn, &chain_level_name(level), &[Value::Int(grp)])
                .map(|row| Action::Read {
                    grp,
                    observed: row.map(|r| {
                        let (_, c, s) = row_to_group(&r);
                        (c, s)
                    }),
                }),
            SOp::ReadRow { id } => db.get_row(&mut txn, "items", &[Value::Int(id)]).map(|row| {
                Action::ReadRow {
                    id,
                    observed: row.map(|r| {
                        (
                            r.get(1).as_int().expect("grp col"),
                            r.get(2).as_int().expect("amount col"),
                        )
                    }),
                }
            }),
        };
        match res {
            Ok(action) => sched.record_action(tid, action),
            Err(e @ (Error::NotFound(_) | Error::DuplicateKey(_))) => {
                // Benign: record and continue the script.
                sched.record_action(
                    tid,
                    Action::Write {
                        base_write: None,
                        deltas: Vec::new(),
                        ok: false,
                        err: Some(e.to_string()),
                    },
                );
            }
            Err(e) => {
                // Deadlock victim / lock timeout: the transaction must roll
                // back. Revert the shadow before releasing locks.
                shadow_revert(&mut shadow.lock(), &mut undo);
                sched.record_action(
                    tid,
                    Action::Write {
                        base_write: None,
                        deltas: Vec::new(),
                        ok: false,
                        err: Some(e.to_string()),
                    },
                );
                let _ = db.rollback(&mut txn);
                sched.finish(i);
                return WorkerOutcome {
                    txn: tid.0,
                    outcome: TxnOutcome::Aborted { reason: e.to_string() },
                };
            }
        }
    }

    let outcome = match script.end {
        End::Commit => match db.commit(&mut txn) {
            Ok(lsn) => TxnOutcome::Committed { lsn: lsn.0 },
            Err(e) => {
                shadow_revert(&mut shadow.lock(), &mut undo);
                let _ = db.rollback(&mut txn);
                TxnOutcome::Aborted { reason: e.to_string() }
            }
        },
        End::Rollback => {
            shadow_revert(&mut shadow.lock(), &mut undo);
            match db.rollback(&mut txn) {
                Ok(()) => TxnOutcome::Aborted { reason: "scripted rollback".into() },
                Err(e) => TxnOutcome::Aborted { reason: format!("rollback failed: {e}") },
            }
        }
    };
    sched.finish(i);
    WorkerOutcome { txn: tid.0, outcome }
}

/// Run one episode of `scenario` under `chooser`. Deterministic: the same
/// chooser decisions reproduce the same episode bit-for-bit.
pub fn run_episode(scenario: &Scenario, chooser: Box<dyn Chooser>) -> Episode {
    let db = build_db(scenario);
    let n = scenario.scripts.len();
    let sched = VirtualScheduler::new(n, chooser);
    let shadow: Arc<Mutex<Shadow>> = Arc::new(Mutex::new(
        scenario.initial.iter().map(|&(id, g, a)| (id, (g, a))).collect(),
    ));

    db.locks().set_hook(Some(sched.clone() as Arc<dyn txview_lock::SchedHook>));
    let mut handles = Vec::with_capacity(n);
    for (i, script) in scenario.scripts.iter().cloned().enumerate() {
        let (db, sched, shadow) = (db.clone(), sched.clone(), shadow.clone());
        handles.push(std::thread::spawn(move || run_worker(db, sched, shadow, i, script)));
    }
    let mut workers = Vec::with_capacity(n);
    let mut panicked = false;
    for h in handles {
        match h.join() {
            Ok(w) => workers.push(w),
            Err(_) => {
                panicked = true;
                workers.push(WorkerOutcome {
                    txn: 0,
                    outcome: TxnOutcome::Aborted { reason: "worker panicked".into() },
                });
            }
        }
    }
    db.locks().set_hook(None);

    let (decisions, history, stalled) = sched.results();
    // Ghost cleanup so the view dump reflects visible rows only, then the
    // engine's own cross-check.
    let _ = db.run_ghost_cleanup();
    let mut verify_error = db.verify_view("v").err().map(|e| e.to_string());
    // Chain views must match both a full recomputation from the base table
    // and a one-level fold of their immediate parent.
    for name in chain_names(scenario.chain_depth) {
        if verify_error.is_some() {
            break;
        }
        verify_error = db
            .verify_view(&name)
            .and_then(|()| db.verify_view_from_parent(&name))
            .err()
            .map(|e| format!("chain view {name}: {e}"));
    }

    let mut base_dump = BTreeMap::new();
    for r in db.dump_table("items").expect("dump table") {
        let id = r.get(0).as_int().expect("id");
        let grp = r.get(1).as_int().expect("grp");
        let amount = r.get(2).as_int().expect("amount");
        base_dump.insert(id, (grp, amount));
    }
    let mut view_dump = BTreeMap::new();
    for r in db.dump_view("v").expect("dump view") {
        let (grp, count, sum) = row_to_group(&r);
        view_dump.insert(grp, (count, sum));
    }

    let dep_edges = db.dep_edges().iter().map(|&(d, p, _)| (d.0, p.0)).collect();

    Episode {
        decisions,
        history,
        workers,
        stalled,
        panicked,
        base_dump,
        view_dump,
        verify_error,
        dep_edges,
    }
}
