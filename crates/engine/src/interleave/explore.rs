//! Schedule exploration: exhaustive bounded DFS and seeded PCT sampling.
//!
//! Both run real episodes via [`run_episode`] and feed each resulting
//! history to the [`oracle`](super::oracle). The DFS is the classic
//! stateless-model-checking loop (CHESS-style): run one episode under a
//! [`ReplayChooser`] for a decision prefix, then branch every decision
//! point after the prefix into its unexplored alternatives. Because an
//! episode is fully determined by its choice list, a violation report is a
//! one-line replay recipe: `replay(scenario, choices)`.

use super::oracle::check_episode;
use super::sched::{PctChooser, ReplayChooser};
use super::script::{run_episode, Episode, Scenario};

/// What an exploration found.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Episodes executed.
    pub schedules: u64,
    /// True when the schedule budget ran out before the frontier emptied.
    pub truncated: bool,
    /// Violations: (replay choice list, message).
    pub violations: Vec<(Vec<usize>, String)>,
    /// Episodes in which at least one transaction aborted as a deadlock
    /// victim or lock timeout (expected in cycle scenarios).
    pub aborted_schedules: u64,
    /// Longest decision list seen.
    pub max_decisions: usize,
    /// Episodes in which some committer parked behind a group-commit
    /// leader (a `LogForceWait` in the history) — non-vacuity evidence for
    /// the pipeline fixtures.
    pub follower_wait_schedules: u64,
    /// Episodes that recorded at least one ELR commit-dependency edge —
    /// non-vacuity evidence for the ELR fixtures.
    pub dep_schedules: u64,
    /// Episodes in which at least one committer flushed a non-empty
    /// cascade queue (a `CascadeFlush` yield in the history) — non-vacuity
    /// evidence for the derived-chain fixtures.
    pub cascade_flush_schedules: u64,
    /// Episodes in which some transaction *blocked* waiting for an X-mode
    /// lock — non-vacuity evidence for the X-lock maintenance fixtures
    /// (e.g. the MIN/MAX delete race: the recompute window must actually
    /// serialize against the concurrent writer in some schedules).
    pub xlock_wait_schedules: u64,
}

fn executed_choices(ep: &Episode) -> Vec<usize> {
    ep.decisions.iter().map(|&(_, pick)| pick).collect()
}

fn scan_episode(report: &mut ExploreReport, sc: &Scenario, ep: &Episode, choices: &[usize]) {
    report.schedules += 1;
    report.max_decisions = report.max_decisions.max(ep.decisions.len());
    if ep.history.iter().any(|e| {
        matches!(
            e.kind,
            super::sched::EventKind::Hook(txview_lock::SchedEvent::LogForceWait { .. })
        )
    }) {
        report.follower_wait_schedules += 1;
    }
    if !ep.dep_edges.is_empty() {
        report.dep_schedules += 1;
    }
    if ep.history.iter().any(|e| {
        matches!(
            e.kind,
            super::sched::EventKind::Hook(txview_lock::SchedEvent::CascadeFlush { .. })
        )
    }) {
        report.cascade_flush_schedules += 1;
    }
    if ep.history.iter().any(|e| {
        matches!(
            e.kind,
            super::sched::EventKind::Hook(txview_lock::SchedEvent::LockBlocked {
                mode: txview_lock::LockMode::X,
                ..
            })
        )
    }) {
        report.xlock_wait_schedules += 1;
    }
    if ep.workers.iter().any(|w| {
        matches!(&w.outcome, super::script::TxnOutcome::Aborted { reason }
            if reason.contains("deadlock") || reason.contains("timeout"))
    }) {
        report.aborted_schedules += 1;
    }
    for v in check_episode(sc, ep) {
        report.violations.push((choices.to_vec(), v));
    }
}

/// Exhaustively explore every interleaving of `sc`, up to `max_schedules`
/// episodes (the frontier is abandoned beyond that and `truncated` set).
pub fn explore_dfs(sc: &Scenario, max_schedules: u64) -> ExploreReport {
    let mut report = ExploreReport::default();
    // Stack of decision prefixes still to run; [] is the canonical
    // lowest-index-first schedule.
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(prefix) = frontier.pop() {
        if report.schedules >= max_schedules {
            report.truncated = true;
            break;
        }
        let ep = run_episode(sc, Box::new(ReplayChooser::new(prefix.clone())));
        let executed = executed_choices(&ep);
        scan_episode(&mut report, sc, &ep, &executed);
        // Branch every decision at or beyond the prefix into alternatives
        // not yet taken. Decisions inside the prefix were branched by the
        // episode that produced them.
        for (i, &(ncand, _)) in ep.decisions.iter().enumerate().skip(prefix.len()) {
            for alt in 1..ncand {
                let mut next = executed[..i].to_vec();
                next.push(alt);
                frontier.push(next);
            }
        }
    }
    report
}

/// PCT-style random exploration: `runs` episodes seeded `seed..seed+runs`,
/// each with `changes` priority-change points.
pub fn explore_pct(sc: &Scenario, seed: u64, runs: u64, changes: usize) -> ExploreReport {
    let mut report = ExploreReport::default();
    for r in 0..runs {
        let chooser = PctChooser::new(seed.wrapping_add(r), changes, 200);
        let ep = run_episode(sc, Box::new(chooser));
        let executed = executed_choices(&ep);
        scan_episode(&mut report, sc, &ep, &executed);
    }
    report
}

/// Re-run one schedule from its choice list; returns the episode and any
/// oracle violations. This is the one-line reproduction entry point for a
/// violation printed by either explorer.
pub fn replay(sc: &Scenario, choices: &[usize]) -> (Episode, Vec<String>) {
    let ep = run_episode(sc, Box::new(ReplayChooser::new(choices.to_vec())));
    let violations = check_episode(sc, &ep);
    (ep, violations)
}
