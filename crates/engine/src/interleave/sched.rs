//! The cooperative virtual scheduler: N worker threads, one turn token.
//!
//! Workers run real engine code on real OS threads, but only one worker is
//! *Running* at a time. Every scheduling-relevant event (lock acquire
//! entry, commit start, rollback start, version publish — see
//! [`txview_lock::SchedHook`]) parks the worker and hands the decision to a
//! [`Chooser`]. Because the engine itself is deterministic once the
//! schedule is fixed (single runner at a time, deterministic release
//! order), the recorded decision list `(n_candidates, chosen)` fully
//! replays an execution: same choices ⇒ same interleaving ⇒ same history.
//!
//! Lock *waits* are cooperative too: [`SchedHook::on_block`] marks the
//! worker Blocked and releases its turn before the thread enters the real
//! condvar wait; the releaser's `pump_queue` calls [`SchedHook::on_grant`]
//! (Blocked → Ready) and the woken thread re-requests a turn via
//! [`SchedHook::on_resume`] before touching shared state. A state where no
//! worker is Ready or Running while some are Blocked is a *stall* (it
//! cannot happen if deadlock detection is sound — cycles abort the
//! requester immediately) and is reported as an oracle violation; the
//! blocked workers then recover via the lock-wait timeout.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use txview_common::rng::Rng;
use txview_common::TxnId;
use txview_lock::{SchedEvent, SchedHook};

use super::script::Action;

/// One recorded history entry: a hook event or a script-level action.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// Lock / transaction event from the hook layer.
    Hook(SchedEvent),
    /// Operation-level record from the script runner (reads with observed
    /// values, writes with their group deltas).
    Action(Action),
}

/// A history entry with its global sequence number.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global order stamp (dense, starts at 0).
    pub seq: u64,
    /// Worker index that produced the event.
    pub worker: usize,
    /// Transaction the event belongs to.
    pub txn: u64,
    /// Payload.
    pub kind: EventKind,
}

/// Picks the next worker to run among the Ready candidates.
pub trait Chooser: Send {
    /// Return an index **into `candidates`** (worker indices, ascending).
    /// Out-of-range returns are clamped.
    fn choose(&mut self, step: usize, candidates: &[usize]) -> usize;
}

/// Replays a recorded choice list; beyond the list it always picks 0
/// (the lowest-index Ready worker) — the DFS explorer's canonical suffix.
pub struct ReplayChooser {
    choices: Vec<usize>,
}

impl ReplayChooser {
    /// Chooser for the given decision prefix.
    pub fn new(choices: Vec<usize>) -> ReplayChooser {
        ReplayChooser { choices }
    }
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, step: usize, _candidates: &[usize]) -> usize {
        self.choices.get(step).copied().unwrap_or(0)
    }
}

/// PCT-style probabilistic scheduler (Burckhardt et al.): each worker gets
/// a random priority; the highest-priority Ready worker runs; at `changes`
/// pre-sampled decision steps the current leader's priority drops below
/// everyone else's. Covers low-probability orderings with few runs.
pub struct PctChooser {
    rng: Rng,
    prio: HashMap<usize, u64>,
    change_steps: Vec<usize>,
    demote_counter: u64,
}

impl PctChooser {
    /// Seeded chooser with `changes` priority-change points in the first
    /// `horizon` decisions.
    pub fn new(seed: u64, changes: usize, horizon: usize) -> PctChooser {
        let mut rng = Rng::new(seed);
        let mut change_steps: Vec<usize> =
            (0..changes).map(|_| rng.below(horizon.max(1) as u64) as usize).collect();
        change_steps.sort_unstable();
        change_steps.dedup();
        PctChooser { rng, prio: HashMap::new(), change_steps, demote_counter: 0 }
    }

    fn prio_of(&mut self, worker: usize) -> u64 {
        if let Some(p) = self.prio.get(&worker) {
            return *p;
        }
        // Priorities in a high band so demotions (counting down from 0
        // backwards) always rank below.
        let p = 1_000_000 + self.rng.below(1_000_000);
        self.prio.insert(worker, p);
        p
    }
}

impl Chooser for PctChooser {
    fn choose(&mut self, step: usize, candidates: &[usize]) -> usize {
        let (mut best, mut best_prio) = (0usize, 0u64);
        for (i, &w) in candidates.iter().enumerate() {
            let p = self.prio_of(w);
            if i == 0 || p > best_prio {
                best = i;
                best_prio = p;
            }
        }
        if self.change_steps.binary_search(&step).is_ok() {
            // Demote the leader below every previously assigned priority.
            self.demote_counter += 1;
            let w = candidates[best];
            let demoted = 1_000 - self.demote_counter.min(999);
            self.prio.insert(w, demoted);
            // Re-pick under the new priorities.
            let (mut b2, mut p2) = (0usize, 0u64);
            for (i, &w) in candidates.iter().enumerate() {
                let p = self.prio_of(w);
                if i == 0 || p > p2 {
                    b2 = i;
                    p2 = p;
                }
            }
            return b2;
        }
        best
    }
}

/// Round-robin rotation: after worker `w` ran, prefer the smallest Ready
/// worker index greater than `w` (wrapping). Produces the canonical
/// "everyone advances one step per round" interleaving used by the
/// youngest-victim deadlock regression.
pub struct RotationChooser {
    last: usize,
}

impl RotationChooser {
    /// Rotation starting before worker 0.
    pub fn new() -> RotationChooser {
        RotationChooser { last: usize::MAX }
    }
}

impl Default for RotationChooser {
    fn default() -> Self {
        Self::new()
    }
}

impl Chooser for RotationChooser {
    fn choose(&mut self, _step: usize, candidates: &[usize]) -> usize {
        let pick = candidates
            .iter()
            .position(|&w| self.last == usize::MAX || w > self.last)
            .unwrap_or(0);
        self.last = candidates[pick];
        pick
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    NotStarted,
    Running,
    Ready,
    Blocked,
    Finished,
}

struct Inner {
    status: Vec<Status>,
    turn: Option<usize>,
    txn_of: HashMap<u64, usize>,
    history: Vec<Event>,
    decisions: Vec<(usize, usize)>,
    chooser: Box<dyn Chooser>,
    stalled: bool,
}

/// The virtual scheduler. Implements [`SchedHook`]; install on the lock
/// manager for the duration of one episode.
pub struct VirtualScheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl VirtualScheduler {
    /// Scheduler for `n_workers` cooperating workers.
    pub fn new(n_workers: usize, chooser: Box<dyn Chooser>) -> Arc<VirtualScheduler> {
        Arc::new(VirtualScheduler {
            inner: Mutex::new(Inner {
                status: vec![Status::NotStarted; n_workers],
                turn: None,
                txn_of: HashMap::new(),
                history: Vec::new(),
                decisions: Vec::new(),
                chooser,
                stalled: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Pick the next worker if no one holds the turn. Call with the inner
    /// mutex held, after any state change.
    fn decide(&self, g: &mut Inner) {
        if g.turn.is_some() || g.status.iter().any(|s| *s == Status::NotStarted) {
            return;
        }
        let candidates: Vec<usize> = (0..g.status.len())
            .filter(|&i| g.status[i] == Status::Ready)
            .collect();
        if candidates.is_empty() {
            let running = g.status.iter().any(|s| *s == Status::Running);
            let blocked = g.status.iter().any(|s| *s == Status::Blocked);
            if !running && blocked {
                // Should be unreachable if deadlock detection is sound:
                // blocked workers wait only on Running/Ready holders.
                g.stalled = true;
            }
            self.cv.notify_all();
            return;
        }
        let step = g.decisions.len();
        let pick = g.chooser.choose(step, &candidates).min(candidates.len() - 1);
        g.decisions.push((candidates.len(), pick));
        g.turn = Some(candidates[pick]);
        self.cv.notify_all();
    }

    /// Park worker `i` until the chooser hands it the turn.
    fn park(&self, i: usize) {
        let mut g = self.inner.lock();
        if g.turn == Some(i) {
            if g.status[i] == Status::Ready {
                // A resuming worker the chooser already picked while its
                // thread was still racing from the real condvar wake
                // toward this park: take the granted turn as-is. Clearing
                // it and re-deciding here would record an extra decision
                // whose presence depends on who won that race, making the
                // schedule tree timing-dependent.
                g.status[i] = Status::Running;
                return;
            }
            g.turn = None;
        }
        g.status[i] = Status::Ready;
        self.decide(&mut g);
        while g.turn != Some(i) {
            self.cv.wait(&mut g);
        }
        g.status[i] = Status::Running;
    }

    /// First call of a worker thread: wait for the first turn.
    pub fn attach(&self, i: usize) {
        self.park(i);
    }

    /// Worker `i` is done (its thread is about to return).
    pub fn finish(&self, i: usize) {
        let mut g = self.inner.lock();
        g.status[i] = Status::Finished;
        if g.turn == Some(i) {
            g.turn = None;
        }
        self.decide(&mut g);
    }

    /// Bind a transaction id to a worker. Events of unregistered
    /// transactions (system transactions, setup) pass through unrecorded.
    pub fn register_txn(&self, i: usize, txn: TxnId) {
        self.inner.lock().txn_of.insert(txn.0, i);
    }

    /// Script-level yield for operations with no natural hook yield
    /// (snapshot reads take no locks).
    pub fn script_yield(&self, txn: TxnId) {
        let worker = self.inner.lock().txn_of.get(&txn.0).copied();
        if let Some(i) = worker {
            self.park(i);
        }
    }

    /// Record a script-level action into the history.
    pub fn record_action(&self, txn: TxnId, action: Action) {
        let mut g = self.inner.lock();
        if let Some(&i) = g.txn_of.get(&txn.0) {
            let seq = g.history.len() as u64;
            g.history.push(Event { seq, worker: i, txn: txn.0, kind: EventKind::Action(action) });
        }
    }

    fn record_hook(&self, g: &mut Inner, txn: TxnId, ev: &SchedEvent) {
        if let Some(&i) = g.txn_of.get(&txn.0) {
            let seq = g.history.len() as u64;
            g.history.push(Event { seq, worker: i, txn: txn.0, kind: EventKind::Hook(ev.clone()) });
        }
    }

    /// Drain the episode's results: (decisions, history, stalled).
    pub fn results(&self) -> (Vec<(usize, usize)>, Vec<Event>, bool) {
        let g = self.inner.lock();
        (g.decisions.clone(), g.history.clone(), g.stalled)
    }
}

impl SchedHook for VirtualScheduler {
    fn yield_point(&self, txn: TxnId, ev: &SchedEvent) {
        let worker = self.inner.lock().txn_of.get(&txn.0).copied();
        let Some(i) = worker else { return };
        self.park(i);
        // Record once the worker actually proceeds, so history order is
        // execution order.
        let mut g = self.inner.lock();
        self.record_hook(&mut g, txn, ev);
    }

    fn observe(&self, txn: TxnId, ev: &SchedEvent) {
        let mut g = self.inner.lock();
        self.record_hook(&mut g, txn, ev);
    }

    fn on_block(&self, txn: TxnId, ev: &SchedEvent) {
        let mut g = self.inner.lock();
        let Some(&i) = g.txn_of.get(&txn.0) else { return };
        self.record_hook(&mut g, txn, ev);
        g.status[i] = Status::Blocked;
        if g.turn == Some(i) {
            g.turn = None;
        }
        self.decide(&mut g);
        // Return without waiting: the thread enters the real lock wait.
    }

    fn on_grant(&self, txn: TxnId, ev: &SchedEvent) {
        let mut g = self.inner.lock();
        let Some(&i) = g.txn_of.get(&txn.0) else { return };
        self.record_hook(&mut g, txn, ev);
        if g.status[i] == Status::Blocked {
            g.status[i] = Status::Ready;
        }
        // No decide: the releasing worker still holds the turn.
    }

    fn on_resume(&self, txn: TxnId) {
        let worker = self.inner.lock().txn_of.get(&txn.0).copied();
        let Some(i) = worker else { return };
        self.park(i);
    }
}
