//! Commit watermark: the snapshot point generator for snapshot isolation.
//!
//! A snapshot reader must only use a snapshot LSN `S` such that every
//! commit with `commit_lsn <= S` has already *published* its versions.
//! Without this, a reader could take `S` covering a commit record that was
//! appended but whose touched rows were not yet stamped — and observe an
//! inconsistent mix of old and new versions across rows.
//!
//! Protocol: a committing transaction registers a ticket (carrying the
//! log's current end as a *floor* — its eventual commit LSN is strictly
//! above it), upgrades the ticket to the actual commit LSN once known, and
//! retires the ticket only after all its versions are published. The
//! watermark is the log end clipped below every live ticket.

use parking_lot::Mutex;
use std::collections::HashMap;
use txview_common::Lsn;
use txview_wal::LogManager;

#[derive(Clone, Copy)]
enum TicketState {
    /// Commit record not appended yet; its LSN will exceed this floor.
    Floor(Lsn),
    /// Commit record appended at this LSN; publication in progress.
    Actual(Lsn),
}

/// The watermark tracker. Also owns active-snapshot registration: both the
/// snapshot point and the version-fold horizon must be computed atomically
/// against the live-ticket set, or a reader beginning in the gap could
/// observe a fold that crossed its snapshot.
#[derive(Default)]
pub struct CommitWatermark {
    inner: Mutex<WatermarkState>,
}

#[derive(Default)]
struct WatermarkState {
    next_ticket: u64,
    live: HashMap<u64, TicketState>,
    /// Refcounted active snapshot LSNs.
    snapshots: std::collections::BTreeMap<u64, u32>,
}

impl WatermarkState {
    fn watermark(&self, log: &LogManager) -> Lsn {
        let mut w = log.last_allocated_lsn();
        for t in self.live.values() {
            let bound = match t {
                // Eventual LSN > floor ⇒ excluding it means w <= floor.
                TicketState::Floor(f) => *f,
                // Exclude the in-flight commit itself.
                TicketState::Actual(l) => Lsn(l.0.saturating_sub(1)),
            };
            w = w.min(bound);
        }
        w
    }
}

impl CommitWatermark {
    /// New tracker.
    pub fn new() -> CommitWatermark {
        CommitWatermark::default()
    }

    /// Register a commit intent. Must be called *before* the commit record
    /// is appended.
    pub fn begin_commit(&self, log: &LogManager) -> u64 {
        let mut st = self.inner.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.live.insert(ticket, TicketState::Floor(log.last_allocated_lsn()));
        ticket
    }

    /// Record the actual commit LSN (called from the commit hook, after the
    /// record is appended).
    pub fn set_lsn(&self, ticket: u64, lsn: Lsn) {
        let mut st = self.inner.lock();
        if let Some(t) = st.live.get_mut(&ticket) {
            *t = TicketState::Actual(lsn);
        }
    }

    /// Retire a ticket once its versions are fully published (or the commit
    /// failed).
    pub fn end_commit(&self, ticket: u64) {
        self.inner.lock().live.remove(&ticket);
    }

    /// The current safe snapshot LSN: every commit at or below it is fully
    /// published.
    pub fn snapshot_lsn(&self, log: &LogManager) -> Lsn {
        self.inner.lock().watermark(log)
    }

    /// Atomically compute a safe snapshot LSN AND register it as active, so
    /// no fold computed after this call can cross it.
    pub fn begin_snapshot(&self, log: &LogManager) -> Lsn {
        let mut st = self.inner.lock();
        let s = st.watermark(log);
        *st.snapshots.entry(s.0).or_insert(0) += 1;
        s
    }

    /// Deregister an active snapshot.
    pub fn end_snapshot(&self, s: Lsn) {
        let mut st = self.inner.lock();
        if let Some(c) = st.snapshots.get_mut(&s.0) {
            *c -= 1;
            if *c == 0 {
                st.snapshots.remove(&s.0);
            }
        }
    }

    /// The version-fold horizon: no fold may absorb an entry newer than
    /// this. It is the minimum of (a) every active snapshot and (b) the
    /// current watermark itself — (b) bounds the snapshot any *future*
    /// reader could obtain (live tickets clip it), closing the race where a
    /// reader registers just after a fold decision.
    pub fn fold_horizon(&self, log: &LogManager) -> Lsn {
        let st = self.inner.lock();
        let w = st.watermark(log);
        match st.snapshots.keys().next() {
            Some(&oldest) => w.min(Lsn(oldest)),
            None => w,
        }
    }

    /// Drop all snapshot registrations (crash simulation).
    pub fn clear_snapshots(&self) {
        self.inner.lock().snapshots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_common::TxnId;
    use txview_wal::record::RecordBody;

    #[test]
    fn watermark_tracks_log_end_when_idle() {
        let log = LogManager::in_memory();
        let wm = CommitWatermark::new();
        let a = log.append(TxnId(1), Lsn::NULL, RecordBody::Commit);
        assert_eq!(wm.snapshot_lsn(&log), a);
    }

    #[test]
    fn inflight_commit_clips_watermark() {
        let log = LogManager::in_memory();
        let wm = CommitWatermark::new();
        let before = log.append(TxnId(1), Lsn::NULL, RecordBody::Commit);
        let ticket = wm.begin_commit(&log);
        // Floor phase: watermark stays at/below the pre-commit log end.
        let commit = log.append(TxnId(2), Lsn::NULL, RecordBody::Commit);
        assert_eq!(wm.snapshot_lsn(&log), before);
        // Actual phase: still excludes the commit itself.
        wm.set_lsn(ticket, commit);
        assert_eq!(wm.snapshot_lsn(&log), Lsn(commit.0 - 1));
        // Retired: watermark advances past it.
        wm.end_commit(ticket);
        assert_eq!(wm.snapshot_lsn(&log), commit);
    }

    #[test]
    fn multiple_tickets_take_the_minimum() {
        let log = LogManager::in_memory();
        let wm = CommitWatermark::new();
        let t1 = wm.begin_commit(&log);
        let c1 = log.append(TxnId(1), Lsn::NULL, RecordBody::Commit);
        wm.set_lsn(t1, c1);
        let _t2 = wm.begin_commit(&log); // floor = c1
        let _c2 = log.append(TxnId(2), Lsn::NULL, RecordBody::Commit);
        // t1 excludes c1; t2's floor is c1 — watermark is c1 - 1.
        assert_eq!(wm.snapshot_lsn(&log), Lsn(c1.0 - 1));
        wm.end_commit(t1);
        assert_eq!(wm.snapshot_lsn(&log), c1, "t2's floor still clips");
    }
}
