//! The database engine: DDL, DML with immediate view maintenance,
//! commit/rollback, ghost cleanup, crash/recovery, verification.
//!
//! ## The maintenance protocol (the paper's contribution)
//!
//! Every DML statement on a base table computes, per dependent view, a
//! [`RowDelta`] and applies it *inside the same user transaction*:
//!
//! * existing group row, all-SUM view, escrow mode → **E lock** on the view
//!   row key + in-place commutative delta (concurrent transactions touch
//!   the same hot row simultaneously); logged with an `Escrow` logical-undo
//!   descriptor;
//! * existing group row, X-lock baseline (or MIN/MAX view) → **X lock**,
//!   full-row rewrite where needed;
//! * missing group row → **X lock** on the key + instant-duration X gap
//!   lock (phantom protection), insert of a fresh row whose undo is the
//!   *inverse delta* — not record removal — because concurrently committed
//!   escrow increments may have piled onto the row by rollback time (the
//!   group come/go anomaly);
//! * decrement to zero → the row becomes *logically absent* (visibility is
//!   `COUNT_BIG > 0`); it is queued for physical removal by a ghost-cleanup
//!   **system transaction** that takes an instant X lock (skipping rows any
//!   transaction still depends on).

use crate::catalog::{
    AggSpec, Catalog, MaintenanceMode, TableDef, ViewDef, ViewSource, ViewSpec,
};
use crate::delta::{derived_delta, fold_derived, join_delta, single_table_delta, update_deltas};
use crate::escrow::{
    self, agg_region_offset, apply_additive, apply_insert_merge, apply_undo_pairs,
    encode_view_row, initial_aggs, RowDelta,
};
use crate::ghosts::GhostQueue;
use crate::hashidx::{HashIndex, DEFAULT_BUCKETS};
use crate::health::{HealthMonitor, HealthState, HealthStatsSnapshot};
use crate::versions::VersionStore;
use crate::watermark::CommitWatermark;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::obs::{Histogram, ObsClock, Snapshot, StripedCounter};
use txview_common::retry::{RetryPolicy, RetryStatsSnapshot};
use txview_common::sharded::ShardMap;
use txview_btree::{LogCtx, OpLog, Tree};
use txview_common::schema::Schema;
use txview_common::value::ValueType;
use txview_common::{Error, IndexId, Key, Lsn, ObjectId, Result, Row, TxnId, Value, ViewId};
use txview_lock::{LockManager, LockMode, LockName};
use txview_storage::buffer::BufferPool;
use txview_storage::disk::{DiskManager, MemDisk};
use txview_txn::{IsolationLevel, Transaction, TxnManager};
use txview_view::{CascadeQueue, PendingDelta, ViewGraph};
use txview_wal::record::{UndoOp, ValueDelta};
use txview_wal::recovery::{recover, RecoveryReport, UndoHandler};
use txview_wal::{LogManager, MemLogStore};

/// Aggregate statistics snapshot for experiment reporting.
#[derive(Clone, Debug, Default)]
pub struct DbStats {
    /// Lock-manager counters.
    pub locks: txview_lock::manager::LockStatsSnapshot,
    /// Log records appended since open.
    pub log_records: u64,
    /// Log bytes appended since open.
    pub log_bytes: u64,
    /// I/O resilience counters (retry layers + health machine).
    pub resilience: ResilienceStats,
}

/// Snapshot of the resilience layer: current health, health-machine
/// counters, per-seam I/O retry counters, and `run_txn` attempt telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Current engine health state.
    pub health: HealthState,
    /// Degradations / rejected writes / heals / fences.
    pub health_counters: HealthStatsSnapshot,
    /// Buffer-pool I/O retries (page writes, resilient reads).
    pub pool_io: RetryStatsSnapshot,
    /// Log-manager I/O retries (appends, syncs, master writes).
    pub log_io: RetryStatsSnapshot,
    /// Transactions started by `run_txn` (first tries + retries).
    pub txn_attempts: u64,
    /// `run_txn` retries after a retryable failure.
    pub txn_retries: u64,
    /// Total backoff slept between `run_txn` attempts, in microseconds.
    pub txn_backoff_micros: u64,
}

/// Result of one ghost-cleanup sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GhostCleanupReport {
    /// Rows physically removed.
    pub removed: usize,
    /// Rows skipped because a transaction still holds a conflicting lock.
    pub skipped_locked: usize,
    /// Rows skipped because they became visible again (resurrected).
    pub skipped_live: usize,
}

/// How a transaction touched one view row, for version publication.
enum Touch {
    /// Net commutative delta accumulated by this transaction.
    Additive(crate::versions::DeltaPairs),
    /// The row was modified under an exclusive lock (MIN/MAX rewrite,
    /// X-lock baseline full paths, eager removal): the physical value at
    /// commit time is a clean committed image.
    Exclusive,
}

/// Per-row touch records of one transaction.
type TouchedRows = HashMap<(IndexId, Vec<u8>), Touch>;

/// The engine. Share via `Arc`; transactions are `&mut` and single-threaded.
pub struct Database {
    pool: Arc<BufferPool>,
    log: Arc<LogManager>,
    pub(crate) locks: Arc<LockManager>,
    pub(crate) txns: TxnManager,
    pub(crate) catalog: RwLock<Catalog>,
    trees: RwLock<HashMap<IndexId, Arc<Tree>>>,
    /// Hash point-read indexes, keyed by the *view tree's* index id (the
    /// id every maintenance site already has in hand when it writes the
    /// tree and must mirror into the hash).
    hashes: RwLock<HashMap<IndexId, Arc<HashIndex>>>,
    pub(crate) versions: VersionStore,
    watermark: CommitWatermark,
    /// View rows touched per transaction (for version publication at
    /// commit), sharded by txn id: every DML statement records touches
    /// here, so a single registry mutex would re-serialize the escrow path.
    touched: ShardMap<TxnId, TouchedRows>,
    /// Ghost-cleanup work queue, striped by key hash with enqueue dedup.
    ghost_queue: GhostQueue,
    /// View-dependency DAG: base views at depth 0, derived (view-over-view)
    /// children below, cycle-rejected at registration.
    graph: RwLock<ViewGraph>,
    /// Per-transaction coalescing queues of pending derived-view deltas,
    /// drained in dependency order by the commit flush.
    cascades: ShardMap<TxnId, CascadeQueue>,
    /// Ablation: propagate each parent delta to children immediately (one
    /// refresh per DML) instead of coalescing to one per (view, group, txn).
    cascade_eager: std::sync::atomic::AtomicBool,
    /// Test probe: when armed, every applied cascade refresh records
    /// `(txn, view, group-key)` — the exactly-once oracle reads this.
    cascade_trace: Mutex<Option<Vec<(TxnId, ViewId, Vec<u8>)>>>,
    /// Pending-delta counters of deferred views (E6 staleness metric).
    deferred_pending: Mutex<HashMap<ViewId, u64>>,
    /// Sidecar path persisting the catalog at each DDL (None = in-memory).
    catalog_path: Mutex<Option<std::path::PathBuf>>,
    /// Health state machine (Healthy → DegradedReadOnly → Fenced).
    health: HealthMonitor,
    /// Tick source installed by [`Database::set_metrics_ticks`], kept so a
    /// commit pipeline enabled later still joins the deterministic clock.
    metrics_ticks: Mutex<Option<Arc<AtomicU64>>>,
    /// Backoff shape for `run_txn` retries (attempts come from the caller;
    /// only the delay curve and jitter seed live here).
    txn_backoff: Mutex<RetryPolicy>,
    /// `run_txn` telemetry: transactions started.
    txn_attempts: AtomicU64,
    /// `run_txn` telemetry: retries after retryable failures.
    txn_retries: AtomicU64,
    /// `run_txn` telemetry: total backoff slept, in microseconds.
    txn_backoff_micros: AtomicU64,
    /// Engine-level observability (escrow vs X-path counters, phase clock).
    pub(crate) obs: EngineObs,
}

/// Engine-level observability: which maintenance path view deltas take,
/// plus the clock the DML phase timers (acquire / maintain) read.
#[derive(Default)]
pub struct EngineObs {
    /// Time source; switched to a logical tick counter in deterministic runs.
    pub clock: ObsClock,
    /// View deltas applied through the escrow (E-lock, in-place) path.
    /// Striped: every update in every writer thread lands here.
    pub escrow_applies: StripedCounter,
    /// View deltas applied through the X-lock full-rewrite (MIN/MAX) path.
    pub minmax_rewrites: StripedCounter,
    /// MIN/MAX deletes that retired the stored extremum and recomputed the
    /// group from base (the expensive fallback; non-extremal deletes fold
    /// in place and never touch base).
    pub minmax_recomputes: StripedCounter,
    /// Point reads answered by a view's hash index (vs B-tree descent).
    pub hash_point_reads: StripedCounter,
    /// Invisible group rows materialized by system transactions.
    pub group_creates: StripedCounter,
    /// Ghost rows physically removed by cleanup sweeps.
    pub ghosts_removed: StripedCounter,
    /// Child deltas projected into per-transaction cascade queues.
    pub cascade_enqueues: StripedCounter,
    /// Enqueues that merged into an existing (view, group) entry — the
    /// work coalescing saved versus eager propagation.
    pub cascade_coalesce_hits: StripedCounter,
    /// Derived-view refreshes actually applied (flush drains + eager mode).
    pub cascade_refreshes: StripedCounter,
    /// Coalesced entries drained per commit flush (flushes with work only).
    pub cascade_flush_entries: Histogram,
    /// Deepest DAG level reached per commit flush.
    pub cascade_flush_depth: Histogram,
}

impl Database {
    /// Fully in-memory database (tests, benches): `MemDisk` + `MemLogStore`.
    pub fn new_in_memory(pool_pages: usize) -> Arc<Database> {
        Database::with_parts(
            Arc::new(MemDisk::new()),
            Box::new(MemLogStore::new()),
            pool_pages,
            Duration::from_secs(10),
        )
        .expect("in-memory open cannot fail")
    }

    /// Fully in-memory database with a custom lock-wait timeout.
    pub fn new_in_memory_with(pool_pages: usize, lock_timeout: Duration) -> Arc<Database> {
        Database::with_parts(
            Arc::new(MemDisk::new()),
            Box::new(MemLogStore::new()),
            pool_pages,
            lock_timeout,
        )
        .expect("in-memory open cannot fail")
    }

    /// Fully in-memory database whose log store spins for a seeded
    /// per-sync latency (`base_us` plus jitter in `[0, jitter_us]`
    /// microseconds) — a deterministic stand-in for a real device fsync,
    /// making commit-path batching (group commit, ELR) measurable in
    /// benches without touching a filesystem.
    pub fn new_in_memory_slow_sync(
        pool_pages: usize,
        lock_timeout: Duration,
        base_us: u64,
        jitter_us: u64,
        seed: u64,
    ) -> Arc<Database> {
        let store = txview_wal::FaultLogStore::new(txview_storage::fault::FaultClock::new());
        store.set_sync_latency(base_us, jitter_us, seed);
        Database::with_parts(Arc::new(MemDisk::new()), Box::new(store), pool_pages, lock_timeout)
            .expect("in-memory open cannot fail")
    }

    /// Assemble a database over arbitrary storage parts.
    pub fn with_parts(
        disk: Arc<dyn DiskManager>,
        log_store: Box<dyn txview_wal::LogStore>,
        pool_pages: usize,
        lock_timeout: Duration,
    ) -> Result<Arc<Database>> {
        let log = Arc::new(LogManager::open(log_store)?);
        let pool = BufferPool::new(disk, pool_pages);
        let l2 = Arc::clone(&log);
        pool.set_wal_flush(Arc::new(move |lsn| l2.flush_to(lsn)));
        let locks = Arc::new(LockManager::new(lock_timeout));
        let txns = TxnManager::new(Arc::clone(&log), Arc::clone(&locks));
        Ok(Arc::new(Database {
            pool,
            log,
            locks,
            txns,
            catalog: RwLock::new(Catalog::new()),
            trees: RwLock::new(HashMap::new()),
            hashes: RwLock::new(HashMap::new()),
            versions: VersionStore::new(),
            watermark: CommitWatermark::new(),
            touched: ShardMap::with_default_shards(),
            ghost_queue: GhostQueue::new(),
            graph: RwLock::new(ViewGraph::new()),
            cascades: ShardMap::with_default_shards(),
            cascade_eager: std::sync::atomic::AtomicBool::new(false),
            cascade_trace: Mutex::new(None),
            deferred_pending: Mutex::new(HashMap::new()),
            catalog_path: Mutex::new(None),
            health: HealthMonitor::new(),
            metrics_ticks: Mutex::new(None),
            txn_backoff: Mutex::new(RetryPolicy::no_delay(0)),
            txn_attempts: AtomicU64::new(0),
            txn_retries: AtomicU64::new(0),
            txn_backoff_micros: AtomicU64::new(0),
            obs: EngineObs::default(),
        }))
    }

    /// Reopen a database over surviving storage parts, as after a crash:
    /// load the catalog snapshot (if any), re-attach the trees, and run
    /// ARIES recovery before handing the database out. This is `open_dir`
    /// without the filesystem — the torture harness reopens frozen
    /// in-memory images through it.
    pub fn with_parts_recovered(
        disk: Arc<dyn DiskManager>,
        log_store: Box<dyn txview_wal::LogStore>,
        catalog: Option<&[u8]>,
        pool_pages: usize,
        lock_timeout: Duration,
    ) -> Result<(Arc<Database>, RecoveryReport)> {
        let db = Database::with_parts(disk, log_store, pool_pages, lock_timeout)?;
        if let Some(bytes) = catalog {
            db.load_catalog(bytes)?;
        }
        let report = recover(&db.log, &db.pool, db.as_ref())?;
        Ok((db, report))
    }

    /// Install a previously-exported catalog and attach its trees. Also
    /// used by the replication follower, whose database is built from parts
    /// and given the leader's exported catalog before replay starts.
    pub(crate) fn load_catalog(&self, bytes: &[u8]) -> Result<()> {
        let cat = Catalog::decode(bytes)?;
        let mut trees = self.trees.write();
        for t in cat.tables() {
            trees.insert(t.index, Arc::new(Tree::open(&self.pool, t.index, t.root)));
        }
        for v in cat.views() {
            trees.insert(v.index, Arc::new(Tree::open(&self.pool, v.index, v.root)));
        }
        for i in cat.indexes() {
            trees.insert(i.index, Arc::new(Tree::open(&self.pool, i.index, i.root)));
        }
        drop(trees);
        let mut hashes = self.hashes.write();
        hashes.clear();
        for v in cat.views() {
            if let Some((hid, dir)) = v.hash {
                hashes.insert(v.index, Arc::new(HashIndex::open(&self.pool, hid, dir)));
            }
        }
        drop(hashes);
        // Rebuild the dependency DAG. View ids are allocated in DDL order,
        // so registering ascending guarantees each parent precedes its
        // children (DDL rejects forward references).
        let mut graph = ViewGraph::new();
        let mut views: Vec<&ViewDef> = cat.views().collect();
        views.sort_by_key(|v| v.id);
        for v in views {
            match &v.source {
                ViewSource::Derived { parent, .. } => {
                    graph.register_derived(v.id, *parent)?;
                }
                _ => graph.register_base(v.id)?,
            }
        }
        *self.graph.write() = graph;
        *self.catalog.write() = cat;
        Ok(())
    }

    /// Serialize the current catalog (what `open_dir` keeps in
    /// `catalog.bin`), for reopening via [`Database::with_parts_recovered`].
    pub fn export_catalog(&self) -> Vec<u8> {
        self.catalog.read().encode()
    }

    /// Open (or create) a durable database in `dir`: `data.db` (pages),
    /// `wal.log` (+ `.master`), and `catalog.bin` (DDL state). Runs crash
    /// recovery before returning, so the database is always consistent.
    pub fn open_dir(
        dir: impl AsRef<std::path::Path>,
        pool_pages: usize,
        lock_timeout: Duration,
    ) -> Result<(Arc<Database>, RecoveryReport)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let disk = Arc::new(txview_storage::disk::FileDisk::open(dir.join("data.db"))?);
        let store = Box::new(txview_wal::FileLogStore::open(dir.join("wal.log"))?);
        let db = Database::with_parts(disk, store, pool_pages, lock_timeout)?;
        let catalog_path = dir.join("catalog.bin");
        if let Ok(bytes) = std::fs::read(&catalog_path) {
            db.load_catalog(&bytes)?;
        }
        *db.catalog_path.lock() = Some(catalog_path);
        let report = recover(&db.log, &db.pool, db.as_ref())?;
        Ok((db, report))
    }

    /// Persist the catalog sidecar if this database is file-backed.
    fn persist_catalog(&self) -> Result<()> {
        if let Some(path) = self.catalog_path.lock().clone() {
            let bytes = self.catalog.read().encode();
            std::fs::write(path, bytes)?;
        }
        Ok(())
    }

    /// The buffer pool (diagnostics, checkpoints).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The log manager (diagnostics).
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The lock manager (diagnostics).
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// Counters for the experiment harness.
    pub fn stats(&self) -> DbStats {
        DbStats {
            locks: self.locks.stats(),
            log_records: self.log.appended_records(),
            log_bytes: self.log.appended_bytes(),
            resilience: self.resilience_stats(),
        }
    }

    // ---- observability ---------------------------------------------------

    /// Engine-level observability handles (clock switching, direct reads).
    pub fn obs(&self) -> &EngineObs {
        &self.obs
    }

    /// Point-in-time metrics snapshot of the whole engine: `engine.*`
    /// counters plus the `lock.*`, `wal.*`, `pool.*`, and `txn.*` sections
    /// merged from each layer. Names stay sorted, so two snapshots of
    /// identically-seeded deterministic runs compare equal structurally.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        s.counter("engine.escrow_applies", self.obs.escrow_applies.get());
        s.counter("engine.minmax_rewrites", self.obs.minmax_rewrites.get());
        s.counter("engine.minmax_recomputes", self.obs.minmax_recomputes.get());
        s.counter("engine.hash_point_reads", self.obs.hash_point_reads.get());
        s.counter("engine.group_creates", self.obs.group_creates.get());
        s.counter("engine.ghosts_removed", self.obs.ghosts_removed.get());
        s.gauge("engine.ghost_backlog", self.ghost_queue.len() as i64);
        s.gauge(
            "engine.deferred_pending",
            self.deferred_pending.lock().values().map(|&v| v as i64).sum(),
        );
        // Cascade (derived-view DAG) surface.
        {
            let g = self.graph.read();
            s.gauge("view.graph.views", g.len() as i64);
            s.gauge("view.graph.max_depth", g.max_depth() as i64);
        }
        s.counter("view.graph.enqueues", self.obs.cascade_enqueues.get());
        s.counter("view.graph.coalesce_hits", self.obs.cascade_coalesce_hits.get());
        s.counter("view.graph.refreshes", self.obs.cascade_refreshes.get());
        s.hist("view.graph.flush_entries", self.obs.cascade_flush_entries.snapshot());
        s.hist("view.graph.flush_depth", self.obs.cascade_flush_depth.snapshot());
        // Health surface: torture oracles and the server layer assert on
        // these instead of reaching into engine internals.
        let hs = self.health.stats();
        s.gauge("engine.health_state", self.health.state().level());
        s.label("engine.health_state_name", self.health.state().name());
        s.label("engine.health_reason", self.health.reason());
        s.counter("engine.health_degradations", hs.degradations);
        s.counter("engine.health_writes_rejected", hs.writes_rejected);
        s.counter("engine.health_heals", hs.heals);
        s.counter("engine.health_fences", hs.fences);
        s.merge(self.locks.obs_snapshot());
        s.merge(self.log.obs_snapshot());
        s.merge(self.pool.obs_snapshot());
        s.merge(self.txns.obs_snapshot());
        s
    }

    /// Human-readable table of [`Database::metrics_snapshot`].
    pub fn metrics_report(&self) -> String {
        self.metrics_snapshot().report()
    }

    /// Switch every layer's metrics clock to a shared logical tick counter
    /// (the torture harness passes the fault clock's event counter, making
    /// recorded "durations" deterministic event-count deltas). One-way:
    /// the first tick source a clock sees wins.
    pub fn set_metrics_ticks(&self, ticks: Arc<AtomicU64>) {
        self.obs.clock.use_ticks(Arc::clone(&ticks));
        self.locks.obs().clock.use_ticks(Arc::clone(&ticks));
        self.log.obs().clock.use_ticks(Arc::clone(&ticks));
        self.pool.obs().clock.use_ticks(Arc::clone(&ticks));
        self.txns.obs().clock.use_ticks(Arc::clone(&ticks));
        if let Some(p) = self.txns.pipeline() {
            p.use_ticks(Arc::clone(&ticks));
        }
        *self.metrics_ticks.lock() = Some(ticks);
    }

    // ---- group commit ----------------------------------------------------

    /// Install the leader-based group-commit pipeline on the commit path.
    /// With `elr = true`, escrow locks additionally release at log-append
    /// time, with commit-dependency tracking protecting readers of
    /// not-yet-durable escrow values.
    pub fn enable_commit_pipeline(&self, elr: bool) {
        self.txns.enable_pipeline(elr);
        if let Some(ticks) = self.metrics_ticks.lock().clone() {
            if let Some(p) = self.txns.pipeline() {
                p.use_ticks(ticks);
            }
        }
    }

    /// The installed commit pipeline, if any (diagnostics, tests).
    pub fn commit_pipeline(&self) -> Option<Arc<txview_txn::CommitPipeline>> {
        self.txns.pipeline()
    }

    /// Quiesce the commit path for shutdown: wait until no group-commit
    /// round is in flight and no parked committer is still pending, then
    /// flush the WAL tail. Callers must have stopped submitting new
    /// commits first (the server stops its workers before calling this);
    /// otherwise drain chases a moving target.
    pub fn drain_commits(&self) -> Result<()> {
        if let Some(p) = self.txns.pipeline() {
            p.drain();
        }
        self.log.flush_all()
    }

    /// Recorded ELR dependency edges `(dependent, pred, pred commit LSN)`
    /// — evidence the torture recovery oracle checks durable commit order
    /// against. Empty without an ELR pipeline.
    pub fn dep_edges(&self) -> Vec<(TxnId, TxnId, Lsn)> {
        self.txns.pipeline().map(|p| p.deps.edges()).unwrap_or_default()
    }

    // ---- resilience ------------------------------------------------------

    /// The health state machine (diagnostics, tests).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Snapshot of the resilience layer across all seams.
    pub fn resilience_stats(&self) -> ResilienceStats {
        ResilienceStats {
            health: self.health.state(),
            health_counters: self.health.stats(),
            pool_io: self.pool.io_retry_stats(),
            log_io: self.log.io_retry_stats(),
            txn_attempts: self.txn_attempts.load(Ordering::Relaxed),
            txn_retries: self.txn_retries.load(Ordering::Relaxed),
            txn_backoff_micros: self.txn_backoff_micros.load(Ordering::Relaxed),
        }
    }

    /// Install one I/O retry policy on both durable seams (buffer pool
    /// page writes and log appends/syncs/master writes).
    pub fn set_io_retry_policy(&self, policy: RetryPolicy) {
        self.pool.set_retry_policy(policy);
        self.log.set_retry_policy(policy);
    }

    /// Shape the deterministic backoff `run_txn` sleeps between attempts
    /// (the default sleeps nothing, preserving tight-loop retry).
    pub fn set_txn_backoff(&self, policy: RetryPolicy) {
        *self.txn_backoff.lock() = policy;
    }

    /// Classify a write-path failure: exhausted transient retries or a
    /// permanent I/O error demote the engine to read-only service. The
    /// caller still sees the original error (nothing was acked).
    fn note_write_result<T>(&self, result: Result<T>, seam: &str) -> Result<T> {
        if let Err(e) = &result {
            if matches!(e, Error::Io(_) | Error::IoTransient(_)) {
                self.health.degrade(&format!("{seam} failed after retries: {e}"));
            }
        }
        result
    }

    /// Classify a commit/checkpoint-path failure: I/O exhaustion degrades
    /// (as above); evidence of corruption in the durable path fences the
    /// engine outright — serving more writes could ack onto a bad log.
    fn note_commit_result<T>(&self, result: Result<T>, seam: &str) -> Result<T> {
        if let Err(e) = &result {
            if matches!(e, Error::Corruption(_)) {
                self.health.fence(&format!("{seam} hit corruption: {e}"));
                return result;
            }
        }
        self.note_write_result(result, seam)
    }

    /// Self-heal probe: while degraded, try one end-to-end durable write
    /// (flush the log, then every dirty page). Success proves the write
    /// path recovered and returns the engine to `Healthy`; failure leaves
    /// it degraded. Fenced engines stay fenced. Returns the state after
    /// the probe.
    pub fn probe_health(&self) -> HealthState {
        if self.health.state() == HealthState::DegradedReadOnly {
            let probe = self.log.flush_all().and_then(|()| self.pool.flush_all());
            if probe.is_ok() {
                self.health.heal();
            }
        }
        self.health.state()
    }

    /// Register a tree for an index id (DDL paths).
    pub(crate) fn register_tree(&self, index: IndexId, tree: Tree) {
        self.trees.write().insert(index, Arc::new(tree));
    }

    /// Persist the catalog sidecar (pub-crate wrapper for DDL modules).
    pub(crate) fn persist_catalog_pub(&self) -> Result<()> {
        self.persist_catalog()
    }

    /// Queue an entry for ghost cleanup (deduped: a key already pending
    /// is not queued twice).
    pub(crate) fn enqueue_ghost(&self, index: IndexId, kb: Vec<u8>) {
        self.ghost_queue.enqueue(index, kb);
    }

    pub(crate) fn tree(&self, index: IndexId) -> Result<Arc<Tree>> {
        self.trees
            .read()
            .get(&index)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("index {}", index.0)))
    }

    /// The hash point-read mirror of a view's tree, if one is attached.
    /// Keyed by the *tree's* index id so maintenance sites can mirror a
    /// write without a catalog lookup. `None` for base tables, secondary
    /// indexes, and views without the fast path.
    pub(crate) fn hash_for(&self, index: IndexId) -> Option<Arc<HashIndex>> {
        self.hashes.read().get(&index).cloned()
    }

    /// Resolve a hash index by its *own* catalog index id — how the undo
    /// executor routes a logical undo whose record was logged against the
    /// hash rather than the tree (each mirror record carries its own undo,
    /// so a crash between the tree append and the hash append reverses
    /// exactly the prefix that survived).
    fn hash_by_own_id(&self, index: IndexId) -> Option<Arc<HashIndex>> {
        self.hashes.read().values().find(|h| h.index_id() == index).cloned()
    }

    // ---- DDL -------------------------------------------------------------

    /// Create a table with a clustered index on its primary key.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<ObjectId> {
        if schema.pk().is_empty() {
            return Err(Error::Schema(format!("table '{name}' needs a primary key")));
        }
        let mut cat = self.catalog.write();
        let id = cat.alloc_object();
        let index = cat.alloc_index();
        let tree = Tree::create(&self.pool, &self.log, index)?;
        let root = tree.root();
        cat.add_table(TableDef { id, name: name.to_string(), schema, index, root })?;
        drop(cat);
        self.trees.write().insert(index, Arc::new(tree));
        self.persist_catalog()?;
        Ok(id)
    }

    /// Create an indexed view and populate it from the current base rows.
    /// DDL is assumed quiesced (no concurrent DML), as in the paper's
    /// system, and is followed by a checkpoint so it is crash-durable.
    pub fn create_indexed_view(&self, spec: ViewSpec) -> Result<ViewId> {
        let def = {
            let mut cat = self.catalog.write();
            // Resolve and validate the source.
            let (group_types, base_schema): (Vec<ValueType>, Schema) = match &spec.source {
                ViewSource::Single { table, group_by } => {
                    let t = cat.table_by_id(*table)?;
                    let types = group_by.iter().map(|&c| t.schema.columns()[c].ty).collect();
                    (types, t.schema.clone())
                }
                ViewSource::Join { fact, dim, dim_group_by, fact_fk_col } => {
                    let f = cat.table_by_id(*fact)?;
                    let d = cat.table_by_id(*dim)?;
                    if d.schema.pk().len() != 1 {
                        return Err(Error::Schema("join-view dim needs a 1-column pk".into()));
                    }
                    if *fact_fk_col >= f.schema.arity() {
                        return Err(Error::Schema("fact fk column out of range".into()));
                    }
                    let types = dim_group_by.iter().map(|&c| d.schema.columns()[c].ty).collect();
                    (types, f.schema.clone())
                }
                ViewSource::Derived { .. } => {
                    return Err(Error::Schema(
                        "derived views go through create_derived_view".into(),
                    ));
                }
            };
            for agg in &spec.aggs {
                agg.stored_type(&base_schema)?;
                if !agg.is_escrow_capable() && matches!(spec.source, ViewSource::Join { .. }) {
                    return Err(Error::Schema("MIN/MAX unsupported on join views".into()));
                }
            }
            // The paper's restriction: MIN/MAX force X-lock maintenance.
            let effective = if spec.aggs.iter().all(AggSpec::is_escrow_capable) {
                spec.maintenance
            } else {
                MaintenanceMode::XLock
            };
            let id = cat.alloc_view();
            let object = cat.alloc_object();
            let index = cat.alloc_index();
            let tree = Tree::create(&self.pool, &self.log, index)?;
            let root = tree.root();
            self.trees.write().insert(index, Arc::new(tree));
            let def = ViewDef {
                id,
                object,
                name: spec.name.clone(),
                source: spec.source.clone(),
                aggs: spec.aggs.clone(),
                filter: spec.filter.clone(),
                maintenance: effective,
                deferred: spec.deferred,
                eager_group_delete: spec.eager_group_delete,
                index,
                root,
                group_types,
                hash: None,
            };
            cat.add_view(def.clone())?;
            def
        };
        self.graph.write().register_base(def.id)?;
        // Populate from existing base rows.
        let rows = self.compute_view_from_base(&def)?;
        if !rows.is_empty() {
            let mut txn = self.begin(IsolationLevel::ReadCommitted);
            let tree = self.tree(def.index)?;
            for (group, (count, aggs)) in rows {
                let key = Key::from_values(&group);
                let bytes = encode_view_row(&group, count, &aggs)?;
                let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
                tree.insert(&key, &bytes, &mut ctx, &OpLog::Update { undo: UndoOp::None })?;
            }
            self.txns.commit(&mut txn)?;
        }
        self.checkpoint()?;
        self.persist_catalog()?;
        Ok(def.id)
    }

    /// Attach a hash point-read index to an existing view and backfill it
    /// from the view's B-tree. Like other DDL this assumes quiesced DML and
    /// checkpoints before returning. Idempotent: a view that already has a
    /// hash is left untouched. Deferred views are rejected — their refresh
    /// path rebuilds rows wholesale and does not mirror single-row writes.
    pub fn create_hash_index(&self, view_name: &str) -> Result<()> {
        self.create_hash_index_sized(view_name, DEFAULT_BUCKETS)
    }

    /// [`create_hash_index`](Self::create_hash_index) with an explicit
    /// directory size. Pick roughly `expected_groups / 100` so a bucket's
    /// entries stay within one page and a point read costs exactly two
    /// fetches (directory + bucket) regardless of how deep the view's
    /// B-tree has grown.
    pub fn create_hash_index_sized(&self, view_name: &str, nbuckets: usize) -> Result<()> {
        if nbuckets == 0 {
            return Err(Error::invalid("hash index needs at least one bucket"));
        }
        let (view_index, hid) = {
            let mut cat = self.catalog.write();
            let v = cat.view(view_name)?;
            if v.hash.is_some() {
                return Ok(());
            }
            if v.deferred {
                return Err(Error::invalid("hash index unsupported on deferred views"));
            }
            let index = v.index;
            let hid = cat.alloc_index();
            (index, hid)
        };
        let hash = HashIndex::create(&self.pool, &self.log, hid, nbuckets)?;
        let dir = hash.dir();
        // Backfill every live (non-ghost) row in one transaction. Logical
        // undo never reaches these records (UndoOp::None), but redo replays
        // them — a crash mid-backfill leaves orphan pages, never a
        // half-attached index, because the catalog update comes last.
        let tree = self.tree(view_index)?;
        let mut txn = self.begin(IsolationLevel::ReadCommitted);
        let (items, _) = tree.scan(None, None, false)?;
        for item in items {
            let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
            hash.put(&item.key, &item.value, &mut ctx, &OpLog::Update { undo: UndoOp::None })?;
        }
        self.txns.commit(&mut txn)?;
        self.catalog.write().view_mut(view_name)?.hash = Some((hid, dir));
        self.hashes.write().insert(view_index, Arc::new(hash));
        self.checkpoint()?;
        self.persist_catalog()?;
        Ok(())
    }

    /// Create a **derived** indexed view — a view over another view — and
    /// populate it from the parent's current contents. Derived views are
    /// maintained by the cascade queue at commit (never by base DML
    /// directly): each parent delta projects linearly onto the child, and
    /// the per-transaction queue coalesces everything to one refresh per
    /// `(view, group)` flushed in dependency order before the commit
    /// record.
    ///
    /// The child's COUNT_BIG tracks the **sum of parent counts** (base
    /// rows, transitively), which keeps propagation linear and preserves
    /// the ghost invariant (count 0 ⇒ sums 0) at every level. `group_by`
    /// and aggregate columns index the parent's *stored row layout*
    /// `[group cols | COUNT_BIG | agg cols]`; an empty `group_by` is a
    /// global rollup under one synthetic `Int(0)` group column. Parents
    /// must be non-deferred and all-SUM (MIN/MAX deltas are not linear).
    /// DDL is quiesced, as elsewhere, and followed by a checkpoint.
    pub fn create_derived_view(
        &self,
        name: &str,
        parent_name: &str,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
        maintenance: MaintenanceMode,
    ) -> Result<ViewId> {
        let def = {
            let mut cat = self.catalog.write();
            let parent = cat.view(parent_name)?.clone();
            if parent.deferred {
                return Err(Error::Schema(format!(
                    "derived view '{name}': parent '{parent_name}' is deferred \
                     (no per-statement deltas to cascade)"
                )));
            }
            if !parent.aggs.iter().all(AggSpec::is_escrow_capable) {
                return Err(Error::Schema(format!(
                    "derived view '{name}': parent '{parent_name}' has MIN/MAX \
                     aggregates (non-linear, cannot cascade)"
                )));
            }
            let pngroup = parent.group_types.len();
            for &c in &group_by {
                if c >= pngroup {
                    return Err(Error::Schema(format!(
                        "derived view '{name}': group column {c} outside the \
                         parent's group region (0..{pngroup})"
                    )));
                }
            }
            for spec in &aggs {
                if !spec.is_escrow_capable() {
                    return Err(Error::Schema(format!(
                        "derived view '{name}': MIN/MAX is unsupported on derived views"
                    )));
                }
                let col = spec.col();
                if col == pngroup {
                    if !matches!(spec, AggSpec::SumInt { .. }) {
                        return Err(Error::Schema(format!(
                            "derived view '{name}': the parent COUNT_BIG column \
                             must be summed as SumInt"
                        )));
                    }
                } else if col > pngroup && col < pngroup + 1 + parent.aggs.len() {
                    // AVG stores its running SUM (COUNT_BIG is the divisor),
                    // so an Avg column composes wherever a same-typed Sum
                    // does — the projection only ever adds stored sums.
                    let int_like = |s: &AggSpec| {
                        matches!(s, AggSpec::SumInt { .. } | AggSpec::Avg { float: false, .. })
                    };
                    let float_like = |s: &AggSpec| {
                        matches!(s, AggSpec::SumFloat { .. } | AggSpec::Avg { float: true, .. })
                    };
                    let parent_spec = &parent.aggs[col - pngroup - 1];
                    let ok = (int_like(spec) && int_like(parent_spec))
                        || (float_like(spec) && float_like(parent_spec));
                    if !ok {
                        return Err(Error::Schema(format!(
                            "derived view '{name}': aggregate column {col} type \
                             mismatch with the parent aggregate"
                        )));
                    }
                } else {
                    return Err(Error::Schema(format!(
                        "derived view '{name}': aggregate column {col} outside \
                         the parent's stored aggregate region"
                    )));
                }
            }
            let group_types: Vec<ValueType> = if group_by.is_empty() {
                vec![ValueType::Int] // synthetic constant Int(0) group
            } else {
                group_by.iter().map(|&c| parent.group_types[c]).collect()
            };
            let id = cat.alloc_view();
            let object = cat.alloc_object();
            let index = cat.alloc_index();
            let tree = Tree::create(&self.pool, &self.log, index)?;
            let root = tree.root();
            self.trees.write().insert(index, Arc::new(tree));
            let def = ViewDef {
                id,
                object,
                name: name.to_string(),
                source: ViewSource::Derived { parent: parent.id, group_by },
                aggs,
                filter: crate::catalog::Predicate::True,
                maintenance,
                deferred: false,
                eager_group_delete: false,
                index,
                root,
                group_types,
                hash: None,
            };
            cat.add_view(def.clone())?;
            def
        };
        let parent_id = match &def.source {
            ViewSource::Derived { parent, .. } => *parent,
            _ => unreachable!("just built as Derived"),
        };
        self.graph.write().register_derived(def.id, parent_id)?;
        // Populate from the parent's current contents (recomputed from
        // base, so a stale parent can never seed a fresh child).
        let rows = self.compute_view_from_base(&def)?;
        if !rows.is_empty() {
            let mut txn = self.begin(IsolationLevel::ReadCommitted);
            let tree = self.tree(def.index)?;
            for (group, (count, aggs)) in rows {
                let key = Key::from_values(&group);
                let bytes = encode_view_row(&group, count, &aggs)?;
                let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
                tree.insert(&key, &bytes, &mut ctx, &OpLog::Update { undo: UndoOp::None })?;
            }
            self.txns.commit(&mut txn)?;
        }
        self.checkpoint()?;
        self.persist_catalog()?;
        Ok(def.id)
    }

    /// Registered depth of a view in the dependency DAG (0 = base view).
    pub fn view_depth(&self, view_name: &str) -> Result<u32> {
        let id = self.catalog.read().view(view_name)?.id;
        self.graph
            .read()
            .depth(id)
            .ok_or_else(|| Error::NotFound(format!("view '{view_name}' not in the graph")))
    }

    /// Ablation toggle: `true` propagates every parent delta to children
    /// immediately (one refresh per DML — the naive baseline BENCH_PR8
    /// measures); `false` (default) coalesces per (view, group, txn) and
    /// flushes once at commit.
    pub fn set_cascade_eager(&self, eager: bool) {
        self.cascade_eager.store(eager, Ordering::Relaxed);
    }

    /// Arm the cascade trace: subsequent refreshes record
    /// `(txn, view, group-key)` until [`Database::take_cascade_trace`].
    pub fn enable_cascade_trace(&self) {
        *self.cascade_trace.lock() = Some(Vec::new());
    }

    /// Drain the armed cascade trace (empty if never armed).
    pub fn take_cascade_trace(&self) -> Vec<(TxnId, ViewId, Vec<u8>)> {
        self.cascade_trace.lock().as_mut().map(std::mem::take).unwrap_or_default()
    }

    // ---- transactions ----------------------------------------------------

    /// Begin a user transaction. Snapshot transactions get their snapshot
    /// point from the commit watermark (every commit at or below it has
    /// fully published its versions).
    pub fn begin(&self, isolation: IsolationLevel) -> Transaction {
        let mut txn = self.txns.begin(isolation);
        if isolation == IsolationLevel::Snapshot {
            txn.snapshot_lsn = self.watermark.begin_snapshot(&self.log);
        }
        txn
    }

    /// Deregister a finished snapshot transaction.
    fn release_snapshot(&self, txn: &Transaction) {
        if txn.isolation == IsolationLevel::Snapshot {
            self.watermark.end_snapshot(txn.snapshot_lsn);
        }
    }

    /// Commit: publishes multiversion entries of touched view rows (while
    /// locks are still held), forces the commit record, releases locks.
    ///
    /// Write transactions force the log (durability of the ack); pure
    /// readers commit no-force — they have nothing to redo, so skipping
    /// the flush is sound *and* lets reads finish while the engine is
    /// degraded to read-only (the write path may be dead).
    pub fn commit(&self, txn: &mut Transaction) -> Result<Lsn> {
        if self.health.state() == HealthState::Fenced {
            return Err(Error::Fenced { reason: self.health.reason() });
        }
        let ticket = self.watermark.begin_commit(&self.log);
        let tid = txn.id;
        // Touched rows move out in the pre-append hook (after the cascade
        // flush, which itself *adds* touches) and are read back in the
        // pre-release hook; the RefCell bridges the two closures.
        let touched_cell: std::cell::RefCell<TouchedRows> = std::cell::RefCell::new(HashMap::new());
        let result = self.txns.commit_with_hooks(
            txn,
            |txn| {
                // Flush coalesced derived-view deltas in dependency order
                // *before* the commit record: the cascade's log records sit
                // ahead of the Commit, so recovery and replication replay
                // see them as ordinary redo — and under ELR they complete
                // before any escrow lock drops.
                self.flush_cascades(txn)?;
                let touched = self.touched.remove(&txn.id).unwrap_or_default();
                // Force is computed after the flush so cascade work
                // upgrades an otherwise no-force commit.
                let force = txn.undo_len() > 0 || !touched.is_empty();
                *touched_cell.borrow_mut() = touched;
                Ok(force)
            },
            |commit_lsn| {
            let touched = touched_cell.borrow();
            self.watermark.set_lsn(ticket, commit_lsn);
            // Interleaving-explorer yield: the latch-free version-store
            // publish is a scheduling point (locks still held, commit
            // record already appended).
            if !touched.is_empty() {
                if let Some(h) = self.locks.hook() {
                    h.yield_point(tid, &txview_lock::SchedEvent::VersionPublish);
                }
            }
            let cat = self.catalog.read();
            for ((index, kb), touch) in touched.iter() {
                let view = cat
                    .views()
                    .find(|v| v.index == *index)
                    .ok_or_else(|| Error::NotFound(format!("view for index {}", index.0)))?;
                let group = Key::from_bytes(kb.clone()).decode_values()?;
                let horizon = self.watermark.fold_horizon(&self.log);
                match touch {
                    Touch::Additive(pairs) => {
                        let mat = view_materializer(view, &group);
                        self.versions
                            .publish_delta(*index, kb, commit_lsn, pairs.clone(), horizon, &mat)?;
                    }
                    Touch::Exclusive => {
                        let tree = self.tree(*index)?;
                        let key = Key::from_bytes(kb.clone());
                        let value = match tree.get(&key)? {
                            Some((false, v)) => Some(v),
                            _ => None,
                        };
                        self.versions.publish_full(*index, kb, commit_lsn, value, horizon);
                    }
                }
            }
            Ok(())
            },
        );
        self.watermark.end_commit(ticket);
        if result.is_ok() {
            self.release_snapshot(txn);
        }
        self.note_commit_result(result, "commit flush")
    }

    /// Roll back completely (logical undo through the engine, CLRs logged).
    pub fn rollback(&self, txn: &mut Transaction) -> Result<()> {
        self.touched.remove(&txn.id);
        // Pending cascade work dies with the transaction: nothing was
        // applied, so there is nothing to undo. (Removed *before* the undo
        // walk so per-op retraction finds an empty queue and no-ops.)
        self.cascades.remove(&txn.id);
        let result = self.txns.rollback(txn, self);
        if result.is_ok() {
            self.release_snapshot(txn);
        }
        result
    }

    /// Savepoint token for [`Database::rollback_to_savepoint`].
    pub fn savepoint(&self, txn: &Transaction) -> usize {
        txn.savepoint()
    }

    /// Partial rollback to a savepoint.
    pub fn rollback_to_savepoint(&self, txn: &mut Transaction, sp: usize) -> Result<()> {
        self.txns.rollback_to_savepoint(txn, sp, self)
    }

    /// Run `body` in a fresh transaction, committing on success and rolling
    /// back + retrying (up to `retries`) on deadlock/timeout/degradation.
    pub fn run_txn<R>(
        &self,
        isolation: IsolationLevel,
        retries: usize,
        body: impl FnMut(&mut Transaction) -> Result<R>,
    ) -> Result<R> {
        self.run_txn_traced(isolation, retries, body).map(|(r, _)| r)
    }

    /// [`Database::run_txn`] with attempt telemetry: also returns how many
    /// transactions were started (1 = first try succeeded). Between
    /// attempts it sleeps the deterministic backoff configured with
    /// [`Database::set_txn_backoff`] (default: none — tight retry).
    pub fn run_txn_traced<R>(
        &self,
        isolation: IsolationLevel,
        retries: usize,
        mut body: impl FnMut(&mut Transaction) -> Result<R>,
    ) -> Result<(R, usize)> {
        let backoff = *self.txn_backoff.lock();
        let mut attempt = 0;
        loop {
            self.txn_attempts.fetch_add(1, Ordering::Relaxed);
            let mut txn = self.begin(isolation);
            match body(&mut txn).and_then(|r| self.commit(&mut txn).map(|_| r)) {
                Ok(r) => return Ok((r, attempt + 1)),
                Err(e) if e.is_retryable() && attempt < retries => {
                    if txn.is_active() {
                        self.rollback(&mut txn)?;
                    }
                    attempt += 1;
                    self.txn_retries.fetch_add(1, Ordering::Relaxed);
                    let delay = backoff.delay_micros(attempt as u32);
                    if delay > 0 {
                        self.txn_backoff_micros.fetch_add(delay, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(delay));
                    }
                }
                Err(e) => {
                    if txn.is_active() {
                        self.rollback(&mut txn)?;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Write a fuzzy checkpoint. Checkpoint failures are classified like
    /// commit failures: I/O exhaustion degrades, corruption fences.
    pub fn checkpoint(&self) -> Result<Lsn> {
        let result = self.txns.checkpoint(&self.pool);
        self.note_commit_result(result, "checkpoint")
    }

    // ---- DML ---------------------------------------------------------

    /// Acquire a base-table lock, charging the wait to the transaction's
    /// *acquire* phase. View-side locks taken inside `maintain` are charged
    /// to the *maintain* phase instead (they are part of maintenance cost).
    fn acquire_phased(&self, txn: &mut Transaction, name: LockName, mode: LockMode) -> Result<()> {
        let t0 = self.obs.clock.now();
        let out = self.locks.acquire(txn.id, name, mode);
        txn.phase_acquire_us += self.obs.clock.now().saturating_sub(t0);
        out
    }

    /// Run both maintenance passes, charging them to the *maintain* phase.
    fn maintain_phased(
        &self,
        txn: &mut Transaction,
        def: &TableDef,
        views: &[ViewDef],
        new: Option<&Row>,
        old: Option<&Row>,
    ) -> Result<()> {
        let t0 = self.obs.clock.now();
        let out = self
            .maintain_secondary(txn, def, new, old)
            .and_then(|()| self.maintain(txn, def, views, new, old));
        txn.phase_maintain_us += self.obs.clock.now().saturating_sub(t0);
        out
    }

    /// Insert a row.
    pub fn insert(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<()> {
        self.health.check_writable()?;
        let result = self.insert_inner(txn, table, row);
        self.note_write_result(result, "insert")
    }

    fn insert_inner(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<()> {
        let (def, views) = self.table_and_views(table)?;
        def.schema.validate(&row)?;
        let key = Key::from_values(&def.schema.pk_values(&row));
        let tree = self.tree(def.index)?;
        self.acquire_phased(txn, LockName::Object(def.id), LockMode::IX)?;
        self.acquire_phased(txn, LockName::key(def.index, key.as_bytes()), LockMode::X)?;
        let ghost_image = match tree.get(&key)? {
            Some((false, _)) => return Err(Error::DuplicateKey(format!("{key:?} in '{table}'"))),
            Some((true, old)) => Some(old),
            None => None,
        };
        // Instant-duration gap lock: no serializable reader may have the
        // target range locked.
        let gap = self.gap_after(&tree, def.index, &key)?;
        self.acquire_phased(txn, gap.clone(), LockMode::X)?;
        let bytes = row.to_bytes();
        if let Some(old) = ghost_image {
            // Revive a ghost: two undoable steps, so rollback restores BOTH
            // the old record image and the ghost flag (a plain "re-ghost"
            // undo would leak the new value into a later resurrection).
            let prev = txn.last_lsn;
            let undo_val = UndoOp::IndexUpdate {
                index: def.index,
                key: key.as_bytes().to_vec(),
                old_row: old,
            };
            {
                let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
                tree.update_value(&key, &bytes, &mut ctx, &OpLog::Update { undo: undo_val.clone() })?;
            }
            txn.push_undo(undo_val, prev);
            let prev = txn.last_lsn;
            let undo_flag = UndoOp::IndexInsert { index: def.index, key: key.as_bytes().to_vec() };
            {
                let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
                tree.set_ghost(&key, false, &mut ctx, &OpLog::Update { undo: undo_flag.clone() })?;
            }
            txn.push_undo(undo_flag, prev);
        } else {
            let prev = txn.last_lsn;
            let undo = UndoOp::IndexInsert { index: def.index, key: key.as_bytes().to_vec() };
            {
                let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
                tree.insert(&key, &bytes, &mut ctx, &OpLog::Update { undo: undo.clone() })?;
            }
            txn.push_undo(undo, prev);
        }
        self.locks.release(txn.id, &gap);
        self.maintain_phased(txn, &def, &views, Some(&row), None)?;
        self.txns.note_progress(txn);
        Ok(())
    }

    /// Delete a row by primary key (logical delete: ghost + cleanup later).
    pub fn delete(&self, txn: &mut Transaction, table: &str, pk: &[Value]) -> Result<()> {
        self.health.check_writable()?;
        let result = self.delete_inner(txn, table, pk);
        self.note_write_result(result, "delete")
    }

    fn delete_inner(&self, txn: &mut Transaction, table: &str, pk: &[Value]) -> Result<()> {
        let (def, views) = self.table_and_views(table)?;
        let key = Key::from_values(pk);
        let tree = self.tree(def.index)?;
        self.acquire_phased(txn, LockName::Object(def.id), LockMode::IX)?;
        self.acquire_phased(txn, LockName::key(def.index, key.as_bytes()), LockMode::X)?;
        let row = match tree.get(&key)? {
            Some((false, value)) => Row::from_bytes(&value)?,
            _ => return Err(Error::NotFound(format!("{key:?} in '{table}'"))),
        };
        let prev = txn.last_lsn;
        let undo = UndoOp::IndexDelete {
            index: def.index,
            key: key.as_bytes().to_vec(),
            row: row.to_bytes(),
        };
        {
            let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
            tree.set_ghost(&key, true, &mut ctx, &OpLog::Update { undo: undo.clone() })?;
        }
        txn.push_undo(undo, prev);
        self.enqueue_ghost(def.index, key.as_bytes().to_vec());
        self.maintain_phased(txn, &def, &views, None, Some(&row))?;
        self.txns.note_progress(txn);
        Ok(())
    }

    /// Update a row in place (primary key must be unchanged).
    pub fn update(&self, txn: &mut Transaction, table: &str, new_row: Row) -> Result<()> {
        self.health.check_writable()?;
        let result = self.update_inner(txn, table, new_row);
        self.note_write_result(result, "update")
    }

    fn update_inner(&self, txn: &mut Transaction, table: &str, new_row: Row) -> Result<()> {
        let (def, views) = self.table_and_views(table)?;
        def.schema.validate(&new_row)?;
        let key = Key::from_values(&def.schema.pk_values(&new_row));
        let tree = self.tree(def.index)?;
        self.acquire_phased(txn, LockName::Object(def.id), LockMode::IX)?;
        self.acquire_phased(txn, LockName::key(def.index, key.as_bytes()), LockMode::X)?;
        let old_row = match tree.get(&key)? {
            Some((false, value)) => Row::from_bytes(&value)?,
            _ => return Err(Error::NotFound(format!("{key:?} in '{table}'"))),
        };
        let prev = txn.last_lsn;
        let undo = UndoOp::IndexUpdate {
            index: def.index,
            key: key.as_bytes().to_vec(),
            old_row: old_row.to_bytes(),
        };
        {
            let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
            tree.update_value(&key, &new_row.to_bytes(), &mut ctx, &OpLog::Update { undo: undo.clone() })?;
        }
        txn.push_undo(undo, prev);
        self.maintain_phased(txn, &def, &views, Some(&new_row), Some(&old_row))?;
        self.txns.note_progress(txn);
        Ok(())
    }

    /// Atomic read-modify-write of one row: X-locks the key, reads the
    /// current row, applies `f`, and updates. This is how transactional
    /// workloads avoid lost updates (read-committed `get_row` + `update`
    /// would release the read lock in between).
    pub fn update_with(
        &self,
        txn: &mut Transaction,
        table: &str,
        pk: &[Value],
        f: impl FnOnce(&Row) -> Row,
    ) -> Result<()> {
        self.health.check_writable()?;
        let def = self.catalog.read().table(table)?.clone();
        let key = Key::from_values(pk);
        let tree = self.tree(def.index)?;
        self.acquire_phased(txn, LockName::Object(def.id), LockMode::IX)?;
        self.acquire_phased(txn, LockName::key(def.index, key.as_bytes()), LockMode::X)?;
        let old_row = match tree.get(&key)? {
            Some((false, value)) => Row::from_bytes(&value)?,
            _ => return Err(Error::NotFound(format!("{key:?} in '{table}'"))),
        };
        let new_row = f(&old_row);
        if self.catalog.read().table(table)?.schema.pk_values(&new_row) != pk {
            return Err(Error::invalid("update_with must not change the primary key"));
        }
        self.update(txn, table, new_row)
    }

    fn table_and_views(&self, table: &str) -> Result<(TableDef, Vec<ViewDef>)> {
        let cat = self.catalog.read();
        let def = cat.table(table)?.clone();
        if !cat.views_with_dim(def.id).is_empty() {
            // Keeping dim-side DML simple: the join-delta probe assumes a
            // stable dimension (see DESIGN.md).
            return Err(Error::invalid(format!(
                "table '{table}' is the dimension of a join view; its DML is frozen"
            )));
        }
        let views = cat.views_on(def.id).into_iter().cloned().collect();
        Ok((def, views))
    }

    /// Lock name of the gap the key would be inserted into.
    pub(crate) fn gap_after(&self, tree: &Tree, index: IndexId, key: &Key) -> Result<LockName> {
        Ok(match tree.next_geq(&key.successor())? {
            Some((next, _)) => LockName::gap(index, next),
            None => LockName::EndGap(index),
        })
    }

    // ---- view maintenance --------------------------------------------

    /// Maintain all `views` for a DML that inserted `new` and/or removed
    /// `old` (update = both).
    fn maintain(
        &self,
        txn: &mut Transaction,
        base: &TableDef,
        views: &[ViewDef],
        new: Option<&Row>,
        old: Option<&Row>,
    ) -> Result<()> {
        for view in views {
            let deltas: Vec<RowDelta> = match &view.source {
                ViewSource::Single { .. } => match (old, new) {
                    (Some(o), Some(n)) => update_deltas(view, o, n)?,
                    (Some(o), None) => single_table_delta(view, o, -1)?.into_iter().collect(),
                    (None, Some(n)) => single_table_delta(view, n, 1)?.into_iter().collect(),
                    (None, None) => vec![],
                },
                ViewSource::Join { dim, fact_fk_col, dim_group_by, .. } => {
                    let mut out = Vec::new();
                    for (row, sign) in [(old, -1i64), (new, 1i64)] {
                        if let Some(r) = row {
                            if let Some(group) =
                                self.probe_dim_group(txn, *dim, *fact_fk_col, dim_group_by, r)?
                            {
                                out.extend(join_delta(view, r, group, sign)?);
                            }
                        }
                    }
                    out
                }
                ViewSource::Derived { .. } => {
                    // `views_on` never returns derived views; they are
                    // maintained only through the cascade queue.
                    return Err(Error::invalid(format!(
                        "derived view '{}' cannot be maintained by base DML",
                        view.name
                    )));
                }
            };
            if view.deferred {
                // Staleness = unapplied view-row deltas, not DML statements:
                // a filtered-out row contributes 0, a group-moving update 2.
                let pending = deltas.iter().filter(|d| !d.is_noop()).count() as u64;
                if pending > 0 {
                    *self.deferred_pending.lock().entry(view.id).or_insert(0) += pending;
                }
                continue;
            }
            // A same-group update on a MIN/MAX view arrives as a
            // (delete, insert) pair. The base row is rewritten before
            // maintenance runs, so if the delete half retires an extremum
            // and recomputes the group from base, the recomputation already
            // includes the *new* value — applying the insert half on top
            // would double-count it.
            let paired_update =
                deltas.len() == 2 && deltas[0].group == deltas[1].group && deltas[0].count < 0;
            for (i, delta) in deltas.iter().enumerate() {
                let recomputed = self.apply_delta(txn, view, Some(base), delta)?;
                if recomputed && paired_update && i == 0 {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Resolve a fact row's group values by probing the dimension table
    /// (short S lock on the dim row: it must not move under us).
    fn probe_dim_group(
        &self,
        txn: &mut Transaction,
        dim: ObjectId,
        fact_fk_col: usize,
        dim_group_by: &[usize],
        fact_row: &Row,
    ) -> Result<Option<Vec<Value>>> {
        let cat = self.catalog.read();
        let d = cat.table_by_id(dim)?.clone();
        drop(cat);
        let fk = fact_row.get(fact_fk_col).clone();
        let key = Key::from_values(std::slice::from_ref(&fk));
        let name = LockName::key(d.index, key.as_bytes());
        self.locks.acquire(txn.id, name.clone(), LockMode::S)?;
        let tree = self.tree(d.index)?;
        let out = match tree.get(&key)? {
            Some((false, value)) => {
                let row = Row::from_bytes(&value)?;
                Some(dim_group_by.iter().map(|&c| row.get(c).clone()).collect())
            }
            _ => None, // inner-join semantics: unmatched fact rows drop out
        };
        self.locks.release(txn.id, &name);
        Ok(out)
    }

    /// Is an encoded view row visible (COUNT_BIG > 0)?
    pub(crate) fn view_row_visible(&self, index: IndexId, value: &[u8]) -> Result<bool> {
        let cat = self.catalog.read();
        let view = cat
            .views()
            .find(|v| v.index == index)
            .ok_or_else(|| Error::NotFound(format!("view for index {}", index.0)))?;
        let row = Row::from_bytes(value)?;
        let count = row.get(row.arity() - 1 - view.aggs.len()).as_int()?;
        Ok(count > 0)
    }

    /// Apply one [`RowDelta`] to a view — the heart of the protocol.
    /// `base` is `None` for derived views (cascade applies): they are
    /// all-SUM by construction, so the MIN/MAX recompute path that needs
    /// the base table is unreachable.
    ///
    /// Returns `true` iff the MIN/MAX fallback recomputed the whole group
    /// from the base table (callers pairing an update's delete/insert
    /// halves must then drop the insert half — the recomputation already
    /// reflects the rewritten base row).
    fn apply_delta(
        &self,
        txn: &mut Transaction,
        view: &ViewDef,
        base: Option<&TableDef>,
        delta: &RowDelta,
    ) -> Result<bool> {
        if delta.is_noop() {
            return Ok(false);
        }
        let key = delta.key();
        let kb = key.as_bytes().to_vec();
        let tree = self.tree(view.index)?;
        self.locks.acquire(txn.id, LockName::Object(view.object), LockMode::IX)?;
        let all_sums = view.aggs.iter().all(AggSpec::is_escrow_capable);

        // Gap lock taken when this transaction materializes a new group row
        // (insert-intention: conflicts with serializable range readers).
        let mut pending_gap: Option<LockName> = None;
        loop {
            let exists = tree.get(&key)?.is_some();
            if !exists {
                if delta.count < 0 {
                    return Err(Error::corruption(format!(
                        "negative delta for missing group {key:?} in view '{}'",
                        view.name
                    )));
                }
                // The paper's trick: the new group row is created *invisible*
                // (COUNT_BIG = 0) by a system transaction that commits and
                // releases immediately — the user transaction then only ever
                // needs an E lock, so concurrent transactions can pile onto
                // a group one of them just created.
                self.ensure_group_row(view, &tree, &key, &delta.group)?;
                self.versions.ensure_base(view.index, &kb, None);
                if pending_gap.is_none() {
                    let gap = self.gap_after(&tree, view.index, &key)?;
                    self.locks.acquire(txn.id, gap.clone(), LockMode::X)?;
                    pending_gap = Some(gap);
                }
                continue;
            }
            let mode = if view.is_escrow() && all_sums { LockMode::E } else { LockMode::X };
            let row_name = LockName::key(view.index, kb.clone());
            self.locks.acquire(txn.id, row_name.clone(), mode)?;
            if mode == LockMode::X {
                // The X path reads the current row image — under ELR it may
                // observe a predecessor's not-yet-durable escrow value.
                self.txns.note_read_dependency(txn, &row_name);
            }
            // Re-check under the lock (ghost cleanup may have removed it).
            let current = tree.get(&key)?;
            let Some((_, cur_value)) = current else { continue };
            self.safeguard_base_version(view, &tree, &key, &kb)?;
            let mut recomputed = false;
            if all_sums {
                self.apply_additive_delta(txn, view, &tree, &key, delta)?;
                self.note_additive(txn.id, view.index, &kb, &delta.to_undo_pairs())?;
                self.obs.escrow_applies.inc();
            } else {
                let base = base.ok_or_else(|| {
                    Error::invalid(format!(
                        "MIN/MAX maintenance of '{}' needs a base table",
                        view.name
                    ))
                })?;
                recomputed =
                    self.apply_minmax_delta(txn, view, base, &tree, &key, &cur_value, delta)?;
                self.note_exclusive(txn.id, view.index, &kb);
                self.obs.minmax_rewrites.inc();
            }
            if let Some(gap) = pending_gap {
                self.locks.release(txn.id, &gap);
            }
            // Propagate to children: project this delta onto each derived
            // view and enqueue (coalescing) or, in eager mode, apply now.
            // (MIN/MAX views cannot have children — derived DDL requires an
            // all-SUM parent — so a recomputed group never skips a child.)
            self.cascade_children(txn, view, delta)?;
            return Ok(recomputed);
        }
    }

    /// Project an applied delta onto the view's children. Coalesced mode
    /// enqueues into the transaction's cascade queue (merged per
    /// `(view, group)`, drained at commit); eager mode recurses through
    /// [`Database::apply_delta`] immediately — the naive baseline.
    fn cascade_children(
        &self,
        txn: &mut Transaction,
        view: &ViewDef,
        delta: &RowDelta,
    ) -> Result<()> {
        let children: Vec<ViewId> = {
            let g = self.graph.read();
            g.children(view.id).to_vec()
        };
        if children.is_empty() {
            return Ok(());
        }
        let eager = self.cascade_eager.load(Ordering::Relaxed);
        for child_id in children {
            let child = self.catalog.read().view_by_id(child_id)?.clone();
            let projected = derived_delta(&child, view, delta)?;
            if projected.is_noop() {
                continue;
            }
            if eager {
                self.apply_delta(txn, &child, None, &projected)?;
                self.obs.cascade_refreshes.inc();
                if let Some(trace) = self.cascade_trace.lock().as_mut() {
                    trace.push((txn.id, child_id, projected.key().as_bytes().to_vec()));
                }
                continue;
            }
            let depth = self
                .graph
                .read()
                .depth(child_id)
                .ok_or_else(|| Error::NotFound(format!("view {} not in graph", child_id.0)))?;
            let kb = projected.key().as_bytes().to_vec();
            let pending = PendingDelta {
                group: projected.group.clone(),
                count: projected.count,
                aggs: projected.aggs.clone(),
            };
            let outcome = self
                .cascades
                .with_entry(txn.id, |q| q.enqueue(depth, child_id, kb, pending))?;
            self.obs.cascade_enqueues.inc();
            if outcome == txview_view::EnqueueOutcome::Coalesced {
                self.obs.cascade_coalesce_hits.inc();
            }
        }
        Ok(())
    }

    /// Drain the transaction's cascade queue in dependency order: ascending
    /// `(depth, view, group)` — applying a level-*d* entry enqueues its own
    /// children at depth > *d*, which this same drain consumes. Runs in the
    /// pre-append commit hook, so every cascade log record precedes the
    /// commit record (ordinary redo for recovery and replication) and, under
    /// ELR, completes before any escrow lock drops.
    fn flush_cascades(&self, txn: &mut Transaction) -> Result<()> {
        let entries = self.cascades.update(&txn.id, |slot| {
            slot.map(|q| q.len()).unwrap_or(0)
        });
        if entries == 0 {
            return Ok(());
        }
        // Yield point, guarded on a non-empty queue so cascade-free
        // scenarios keep their exact schedule counts.
        if let Some(h) = self.locks.hook() {
            h.yield_point(
                txn.id,
                &txview_lock::SchedEvent::CascadeFlush { entries: entries as u64 },
            );
        }
        let mut refreshed = 0u64;
        let mut last_depth: Option<u32> = None;
        loop {
            // Pop through the live map entry (not a drained snapshot):
            // applying an entry re-enters `cascade_children`, which must
            // land grandchildren in this same queue.
            let popped = self.cascades.update(&txn.id, |slot| {
                slot.and_then(|q| q.pop_first())
            });
            let Some((depth, view_id, kb, pending)) = popped else { break };
            if last_depth.is_some_and(|d| depth > d) {
                // Named crash point between DAG levels: the torture
                // probe sweep crashes here to prove mid-cascade atomicity.
                self.log.probe_point("view.cascade.level");
            }
            last_depth = Some(depth);
            if pending.is_noop() {
                continue; // retracted down to nothing by a savepoint undo
            }
            let view = self.catalog.read().view_by_id(view_id)?.clone();
            let delta =
                RowDelta { group: pending.group, count: pending.count, aggs: pending.aggs };
            self.apply_delta(txn, &view, None, &delta)?;
            self.obs.cascade_refreshes.inc();
            refreshed += 1;
            if let Some(trace) = self.cascade_trace.lock().as_mut() {
                trace.push((txn.id, view_id, kb));
            }
        }
        self.cascades.remove(&txn.id);
        self.obs.cascade_flush_entries.record(refreshed);
        if let Some(d) = last_depth {
            self.obs.cascade_flush_depth.record(u64::from(d));
        }
        Ok(())
    }

    /// Materialize an invisible (COUNT_BIG = 0) group row in a system
    /// transaction. Losing a creation race to another transaction is fine.
    fn ensure_group_row(&self, view: &ViewDef, tree: &Tree, key: &Key, group: &[Value]) -> Result<()> {
        let bytes = encode_view_row(group, 0, &escrow::zero_aggs(view))?;
        match self.txns.system(|id, last| {
            let mut ctx = LogCtx { log: &self.log, txn: id, last_lsn: last };
            tree.insert(key, &bytes, &mut ctx, &OpLog::System)?;
            if let Some(h) = self.hash_for(view.index) {
                h.put(key.as_bytes(), &bytes, &mut ctx, &OpLog::System)?;
            }
            Ok(())
        }) {
            Ok(()) => {
                self.obs.group_creates.inc();
                Ok(())
            }
            Err(Error::DuplicateKey(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Record the pre-image version the first time any transaction touches
    /// a view row (so snapshot readers never see in-flight increments).
    /// The read happens inside the version store's critical section: a
    /// concurrent escrow holder that raced past its own safeguard cannot
    /// have modified the row yet, so the captured image is committed-clean.
    fn safeguard_base_version(&self, view: &ViewDef, tree: &Tree, key: &Key, kb: &[u8]) -> Result<()> {
        self.versions.ensure_base_with(view.index, kb, || {
            match tree.get(key)? {
                Some((false, value)) if row_visible(view, &value)? => Ok(Some(value)),
                _ => Ok(None),
            }
        })
    }

    /// Accumulate this transaction's net commutative delta for a view row.
    fn note_additive(&self, txn: TxnId, index: IndexId, kb: &[u8], pairs: &[(u16, txview_wal::record::ValueDelta)]) -> Result<()> {
        self.touched.with_entry(txn, |rows| {
            let entry = rows
                .entry((index, kb.to_vec()))
                .or_insert_with(|| Touch::Additive(Vec::new()));
            match entry {
                Touch::Additive(acc) => escrow::merge_pairs(acc, pairs),
                Touch::Exclusive => Ok(()), // exclusive image already covers it
            }
        })
    }

    /// Mark a view row as exclusively rewritten by this transaction.
    fn note_exclusive(&self, txn: TxnId, index: IndexId, kb: &[u8]) {
        self.touched.with_entry(txn, |rows| {
            rows.insert((index, kb.to_vec()), Touch::Exclusive);
        });
    }

    /// Escrow-capable path: in-place commutative region patch.
    fn apply_additive_delta(
        &self,
        txn: &mut Transaction,
        view: &ViewDef,
        tree: &Tree,
        key: &Key,
        delta: &RowDelta,
    ) -> Result<()> {
        let region_off = agg_region_offset(&delta.group);
        let prev = txn.last_lsn;
        let undo = UndoOp::Escrow {
            index: view.index,
            key: key.as_bytes().to_vec(),
            deltas: delta.to_undo_pairs(),
        };
        let mut new_count = 0i64;
        let mut hash_undo = None;
        {
            let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
            tree.modify_value_region(
                key,
                region_off,
                |old| {
                    let out = apply_additive(old, view, delta)?;
                    new_count = escrow::decode_agg_region(&out, view.aggs.len())?.0;
                    Ok(out)
                },
                &mut ctx,
                &OpLog::Update { undo: undo.clone() },
            )?;
            // Mirror the same commutative patch into the hash fast path.
            // The mirror record carries its *own* logical undo keyed by the
            // hash's index id: each record reverses only its own structure,
            // so a crash that lands between the two appends (the probe
            // window) undoes exactly the prefix that survived.
            if let Some(h) = self.hash_for(view.index) {
                let hu = UndoOp::Escrow {
                    index: h.index_id(),
                    key: key.as_bytes().to_vec(),
                    deltas: delta.to_undo_pairs(),
                };
                let hprev = *ctx.last_lsn;
                h.patch_region(
                    key.as_bytes(),
                    region_off,
                    |old| apply_additive(old, view, delta),
                    &mut ctx,
                    &OpLog::Update { undo: hu.clone() },
                )?;
                hash_undo = Some((hu, hprev));
            }
        }
        txn.push_undo(undo, prev);
        if let Some((hu, hprev)) = hash_undo {
            txn.push_undo(hu, hprev);
        }
        if new_count == 0 {
            if view.eager_group_delete {
                self.eager_delete_group(txn, view, tree, key)?;
            } else {
                self.enqueue_ghost(view.index, key.as_bytes().to_vec());
            }
        }
        Ok(())
    }

    /// E7 ablation: delete an emptied group row inside the user transaction.
    /// Requires converting the row lock to X — the source of the deadlocks
    /// this experiment measures — and re-checking the count under it.
    fn eager_delete_group(&self, txn: &mut Transaction, view: &ViewDef, tree: &Tree, key: &Key) -> Result<()> {
        let kb = key.as_bytes().to_vec();
        let row_name = LockName::key(view.index, kb.clone());
        self.locks.acquire(txn.id, row_name.clone(), LockMode::X)?;
        self.txns.note_read_dependency(txn, &row_name);
        let Some((_, value)) = tree.get(key)? else { return Ok(()) };
        if self.view_row_visible(view.index, &value)? {
            return Ok(()); // somebody legitimately resurrected it before our X
        }
        let prev = txn.last_lsn;
        let undo = UndoOp::IndexDelete { index: view.index, key: kb.clone(), row: value.clone() };
        let mut hash_undo = None;
        {
            let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
            tree.remove_record(key, &mut ctx, &OpLog::Update { undo: undo.clone() })?;
            if let Some(h) = self.hash_for(view.index) {
                let hu = UndoOp::IndexDelete { index: h.index_id(), key: kb, row: value };
                let hprev = *ctx.last_lsn;
                h.remove(key.as_bytes(), &mut ctx, &OpLog::Update { undo: hu.clone() })?;
                hash_undo = Some((hu, hprev));
            }
        }
        txn.push_undo(undo, prev);
        if let Some((hu, hprev)) = hash_undo {
            txn.push_undo(hu, hprev);
        }
        self.note_exclusive(txn.id, view.index, key.as_bytes());
        Ok(())
    }

    /// MIN/MAX (X-lock) path: full-row rewrite with physical-image undo;
    /// deletes that may retire the extremum recompute the group from base.
    #[allow(clippy::too_many_arguments)]
    fn apply_minmax_delta(
        &self,
        txn: &mut Transaction,
        view: &ViewDef,
        base: &TableDef,
        tree: &Tree,
        key: &Key,
        cur_value: &[u8],
        delta: &RowDelta,
    ) -> Result<bool> {
        let region_off = agg_region_offset(&delta.group);
        let mut recomputed = false;
        let new_value = if delta.count >= 0 {
            let mut out = cur_value.to_vec();
            let region = apply_insert_merge(&cur_value[region_off..], view, delta)?;
            out[region_off..].copy_from_slice(&region);
            out
        } else if !escrow::delete_retires_extremum(&cur_value[region_off..], view, delta)? {
            // Non-extremal delete: the departing value sits strictly inside
            // every stored MIN/MAX, so the extrema stand and the additive
            // aggregates fold in place under the row X lock already held —
            // no base-table access, same cost as the escrow path.
            let mut out = cur_value.to_vec();
            let region = escrow::apply_delete_keep_extrema(&cur_value[region_off..], view, delta)?;
            out[region_off..].copy_from_slice(&region);
            out
        } else {
            // The departing row equals a stored extremum: the paper's
            // fallback — recompute this one group from base under an S
            // object lock (serializes with writers; deadlocks are detected
            // and retried upstream). The crash probe sits between the lock
            // grant and the view-row rewrite, the window the crash matrix
            // exercises. A group that vanished from base stores the escrow
            // invariant (count 0, zero sums) so a later resurrection's
            // insert-merge starts from clean aggregates.
            self.locks.acquire(txn.id, LockName::Object(base.id), LockMode::S)?;
            self.log.probe_point("view.minmax.recompute");
            self.obs.minmax_recomputes.inc();
            recomputed = true;
            let (count, aggs) = match self.compute_group_from_base(view, base, &delta.group)? {
                Some(v) => v,
                None => (0, escrow::zero_aggs(view)),
            };
            encode_view_row(&delta.group, count, &aggs)?
        };
        let prev = txn.last_lsn;
        let undo = UndoOp::IndexUpdate {
            index: view.index,
            key: key.as_bytes().to_vec(),
            old_row: cur_value.to_vec(),
        };
        let mut hash_undo = None;
        {
            let mut ctx = LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
            tree.update_value(key, &new_value, &mut ctx, &OpLog::Update { undo: undo.clone() })?;
            if let Some(h) = self.hash_for(view.index) {
                let hu = UndoOp::IndexUpdate {
                    index: h.index_id(),
                    key: key.as_bytes().to_vec(),
                    old_row: cur_value.to_vec(),
                };
                let hprev = *ctx.last_lsn;
                h.put(key.as_bytes(), &new_value, &mut ctx, &OpLog::Update { undo: hu.clone() })?;
                hash_undo = Some((hu, hprev));
            }
        }
        txn.push_undo(undo, prev);
        if let Some((hu, hprev)) = hash_undo {
            txn.push_undo(hu, hprev);
        }
        let count = escrow::decode_agg_region(&new_value[region_off..], view.aggs.len())?.0;
        if count == 0 {
            self.enqueue_ghost(view.index, key.as_bytes().to_vec());
        }
        Ok(recomputed)
    }

    // ---- recompute / verify / deferred ---------------------------------

    /// Compute a view's contents from its base table(s) by direct scans
    /// (no locks — callers quiesce or hold object locks).
    #[allow(clippy::type_complexity)]
    pub fn compute_view_from_base(
        &self,
        view: &ViewDef,
    ) -> Result<HashMap<Vec<Value>, (i64, Vec<Value>)>> {
        let cat = self.catalog.read();
        let mut out: HashMap<Vec<Value>, (i64, Vec<Value>)> = HashMap::new();
        let mut add = |view: &ViewDef, group: Vec<Value>, row: &Row| -> Result<()> {
            if let Some(contrib) = crate::delta::row_contribution(view, row, 1)? {
                let delta = RowDelta { group, count: 1, aggs: contrib };
                match out.entry(delta.group.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let (count, aggs) = e.get_mut();
                        let region = escrow::encode_agg_region(*count, aggs);
                        let merged = apply_insert_merge(&region, view, &delta)?;
                        let (c, a) = escrow::decode_agg_region(&merged, view.aggs.len())?;
                        *count = c;
                        *aggs = a;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((1, initial_aggs(view, &delta)?));
                    }
                }
            }
            Ok(())
        };
        match &view.source {
            ViewSource::Derived { parent, .. } => {
                // Recurse through the parent (transitively down to base).
                // Clone the parent def and RELEASE the catalog guard first:
                // parking_lot read locks are not recursive under a waiting
                // writer, and the recursion re-reads the catalog.
                let p = cat.view_by_id(*parent)?.clone();
                drop(cat);
                let parent_rows = self.compute_view_from_base(&p)?;
                return fold_derived(view, &p, &parent_rows);
            }
            ViewSource::Single { table, group_by } => {
                let t = cat.table_by_id(*table)?;
                let tree = self.tree(t.index)?;
                let (items, _) = tree.scan(None, None, false)?;
                for item in items {
                    let row = Row::from_bytes(&item.value)?;
                    let group = group_by.iter().map(|&c| row.get(c).clone()).collect();
                    add(view, group, &row)?;
                }
            }
            ViewSource::Join { fact, dim, fact_fk_col, dim_group_by } => {
                let f = cat.table_by_id(*fact)?;
                let d = cat.table_by_id(*dim)?;
                let ftree = self.tree(f.index)?;
                let dtree = self.tree(d.index)?;
                let (items, _) = ftree.scan(None, None, false)?;
                for item in items {
                    let row = Row::from_bytes(&item.value)?;
                    let fk = row.get(*fact_fk_col).clone();
                    let dkey = Key::from_values(std::slice::from_ref(&fk));
                    if let Some((false, dval)) = dtree.get(&dkey)? {
                        let drow = Row::from_bytes(&dval)?;
                        let group = dim_group_by.iter().map(|&c| drow.get(c).clone()).collect();
                        add(view, group, &row)?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Recompute one group's `(COUNT_BIG, aggregates)` from the base table
    /// — the MIN/MAX retirement fallback. Scoped to a single group so an
    /// extremal delete pays one base scan filtered to its own group, not a
    /// full view rebuild. `None` if no live base row maps to the group.
    /// Single-table sources only: MIN/MAX is rejected on join and derived
    /// views at DDL, so this path can never see them.
    fn compute_group_from_base(
        &self,
        view: &ViewDef,
        base: &TableDef,
        group: &[Value],
    ) -> Result<Option<(i64, Vec<Value>)>> {
        let ViewSource::Single { group_by, .. } = &view.source else {
            return Err(Error::invalid("group recompute on a non-single-table view"));
        };
        let tree = self.tree(base.index)?;
        let (items, _) = tree.scan(None, None, false)?;
        let mut acc: Option<(i64, Vec<Value>)> = None;
        for item in items {
            let row = Row::from_bytes(&item.value)?;
            if !group_by.iter().zip(group).all(|(&c, g)| row.get(c) == g) {
                continue;
            }
            let Some(contrib) = crate::delta::row_contribution(view, &row, 1)? else {
                continue; // filtered out
            };
            let delta = RowDelta { group: group.to_vec(), count: 1, aggs: contrib };
            acc = Some(match acc {
                None => (1, initial_aggs(view, &delta)?),
                Some((count, aggs)) => {
                    let region = escrow::encode_agg_region(count, &aggs);
                    let merged = apply_insert_merge(&region, view, &delta)?;
                    escrow::decode_agg_region(&merged, view.aggs.len())?
                }
            });
        }
        Ok(acc)
    }

    /// Verify that a view's stored rows exactly match a recomputation from
    /// base (the correctness spine of every experiment). For derived views
    /// this recomputes *transitively* down to the base tables. Quiesced
    /// only.
    pub fn verify_view(&self, view_name: &str) -> Result<()> {
        let view = self.catalog.read().view(view_name)?.clone();
        let expected = self.compute_view_from_base(&view)?;
        self.check_view_against(&view, view_name, &expected)
    }

    /// Verify a derived view against its **immediate parent's stored
    /// rows** (not a base recomputation): the one-level fold must match
    /// exactly. Combined with [`Database::verify_view`] on every level,
    /// this pins blame to a single propagation step when a chain diverges.
    /// Non-derived views fall back to the transitive check.
    pub fn verify_view_from_parent(&self, view_name: &str) -> Result<()> {
        let view = self.catalog.read().view(view_name)?.clone();
        let ViewSource::Derived { parent, .. } = &view.source else {
            return self.verify_view(view_name);
        };
        let p = self.catalog.read().view_by_id(*parent)?.clone();
        let parent_rows = self.scan_view_rows(&p)?;
        let expected = fold_derived(&view, &p, &parent_rows)?;
        self.check_view_against(&view, view_name, &expected)
    }

    /// Materialize a view's stored visible rows as `group → (count, aggs)`.
    #[allow(clippy::type_complexity)]
    fn scan_view_rows(&self, view: &ViewDef) -> Result<HashMap<Vec<Value>, (i64, Vec<Value>)>> {
        let tree = self.tree(view.index)?;
        let (items, _) = tree.scan(None, None, false)?;
        let mut out = HashMap::new();
        for item in items {
            let row = Row::from_bytes(&item.value)?;
            let ngroup = view.group_types.len();
            let group: Vec<Value> = (0..ngroup).map(|i| row.get(i).clone()).collect();
            let count = row.get(ngroup).as_int()?;
            if count == 0 {
                continue; // logically absent
            }
            let aggs: Vec<Value> =
                (0..view.aggs.len()).map(|i| row.get(ngroup + 1 + i).clone()).collect();
            out.insert(group, (count, aggs));
        }
        Ok(out)
    }

    /// Compare a view's stored rows against an expected recomputation.
    fn check_view_against(
        &self,
        view: &ViewDef,
        view_name: &str,
        expected: &HashMap<Vec<Value>, (i64, Vec<Value>)>,
    ) -> Result<()> {
        let tree = self.tree(view.index)?;
        let (items, _) = tree.scan(None, None, false)?;
        let mut seen = 0usize;
        for item in items {
            let row = Row::from_bytes(&item.value)?;
            let ngroup = view.group_types.len();
            let group: Vec<Value> = (0..ngroup).map(|i| row.get(i).clone()).collect();
            let count = row.get(ngroup).as_int()?;
            let aggs: Vec<Value> = (0..view.aggs.len()).map(|i| row.get(ngroup + 1 + i).clone()).collect();
            if count == 0 {
                continue; // logically absent
            }
            if count < 0 {
                return Err(Error::corruption(format!(
                    "view '{view_name}' group {group:?} has negative count {count}"
                )));
            }
            seen += 1;
            match expected.get(&group) {
                Some((ec, ea)) if *ec == count && *ea == aggs => {}
                Some((ec, ea)) => {
                    return Err(Error::corruption(format!(
                        "view '{view_name}' group {group:?}: stored ({count}, {aggs:?}) != expected ({ec}, {ea:?})"
                    )))
                }
                None => {
                    return Err(Error::corruption(format!(
                        "view '{view_name}' has spurious group {group:?}"
                    )))
                }
            }
        }
        if seen != expected.len() {
            return Err(Error::corruption(format!(
                "view '{view_name}' has {seen} visible groups, expected {}",
                expected.len()
            )));
        }
        // Hash-mirror oracle: when the view carries a point-read index, its
        // entry set must be byte-identical to the tree's live records
        // (count-0 rows included — both structures drop them together at
        // ghost cleanup). Runs inside every verify, so the crash and
        // replication tortures audit the hash for free.
        if let Some(h) = self.hash_for(view.index) {
            let (items, _) = tree.scan(None, None, false)?;
            let tree_rows: HashMap<Vec<u8>, Vec<u8>> =
                items.into_iter().map(|i| (i.key, i.value)).collect();
            let hash_rows = h.scan_all()?;
            if hash_rows.len() != tree_rows.len() {
                return Err(Error::corruption(format!(
                    "view '{view_name}' hash has {} entries, tree has {}",
                    hash_rows.len(),
                    tree_rows.len()
                )));
            }
            for (k, v) in hash_rows {
                match tree_rows.get(&k) {
                    Some(tv) if *tv == v => {}
                    Some(_) => {
                        return Err(Error::corruption(format!(
                            "view '{view_name}' hash entry {k:?} differs from tree value"
                        )))
                    }
                    None => {
                        return Err(Error::corruption(format!(
                            "view '{view_name}' hash has spurious entry {k:?}"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Pending (unapplied) delta count of a deferred view.
    pub fn deferred_staleness(&self, view_name: &str) -> Result<u64> {
        let view = self.catalog.read().view(view_name)?.clone();
        Ok(*self.deferred_pending.lock().get(&view.id).unwrap_or(&0))
    }

    /// Rebuild a deferred view from base (bulk refresh). Quiesced only.
    ///
    /// Delete and rebuild run in *one* user transaction with logged
    /// logical undo, so a crash anywhere inside the refresh rolls the
    /// whole thing back — the view is never left empty-yet-"fresh" (the
    /// old code deleted in a separate committed system transaction first).
    /// The staleness counter is reset by subtracting the pre-refresh
    /// value, so increments that land during the rebuild are kept.
    pub fn refresh_deferred_view(&self, view_name: &str) -> Result<usize> {
        let view = self.catalog.read().view(view_name)?.clone();
        let tree = self.tree(view.index)?;
        let pre_refresh = *self.deferred_pending.lock().get(&view.id).unwrap_or(&0);
        let rows = self.compute_view_from_base(&view)?;
        let n = rows.len();
        let mut txn = self.begin(IsolationLevel::ReadCommitted);
        let result = (|| -> Result<()> {
            let (items, _) = tree.scan(None, None, true)?;
            for item in &items {
                let key = Key::from_bytes(item.key.clone());
                let prev = txn.last_lsn;
                let undo = UndoOp::IndexDelete {
                    index: view.index,
                    key: item.key.clone(),
                    row: item.value.clone(),
                };
                {
                    let mut ctx =
                        LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
                    tree.remove_record(&key, &mut ctx, &OpLog::Update { undo: undo.clone() })?;
                }
                txn.push_undo(undo, prev);
            }
            for (group, (count, aggs)) in rows {
                let key = Key::from_values(&group);
                let bytes = encode_view_row(&group, count, &aggs)?;
                let prev = txn.last_lsn;
                let undo = UndoOp::IndexInsert { index: view.index, key: key.as_bytes().to_vec() };
                {
                    let mut ctx =
                        LogCtx { log: &self.log, txn: txn.id, last_lsn: &mut txn.last_lsn };
                    tree.insert(&key, &bytes, &mut ctx, &OpLog::Update { undo: undo.clone() })?;
                }
                txn.push_undo(undo, prev);
            }
            Ok(())
        })();
        if let Err(e) = result {
            let _ = self.rollback(&mut txn);
            return Err(e);
        }
        self.txns.commit(&mut txn)?;
        // Fetch-and-subtract, not zero: DML racing the rebuild keeps its
        // staleness contribution.
        let mut pending = self.deferred_pending.lock();
        let slot = pending.entry(view.id).or_insert(0);
        *slot = slot.saturating_sub(pre_refresh);
        Ok(n)
    }

    // ---- ghost cleanup ---------------------------------------------------

    /// One cleanup sweep: physically remove queued ghosts/zero-count rows
    /// whose keys can be X-locked instantly, each in its own system
    /// transaction.
    pub fn run_ghost_cleanup(&self) -> Result<GhostCleanupReport> {
        // Enqueue-time dedup guarantees the drained batch has no
        // duplicates already.
        let work = self.ghost_queue.drain();
        let mut report = GhostCleanupReport::default();
        for (index, kb) in work {
            let key = Key::from_bytes(kb.clone());
            let tree = self.tree(index)?;
            let cleaner = self.log.alloc_txn_id();
            let name = LockName::key(index, kb.clone());
            if !self.locks.try_acquire(cleaner, name.clone(), LockMode::X)? {
                report.skipped_locked += 1;
                self.ghost_queue.enqueue(index, kb);
                continue;
            }
            let removable = match tree.get(&key)? {
                None => false,
                Some((true, _)) => true, // base-table ghost
                Some((false, value)) => {
                    // A view row is removable when its count settled at 0.
                    let is_view = self.catalog.read().views().any(|v| v.index == index);
                    is_view && !self.view_row_visible(index, &value)?
                }
            };
            if removable {
                self.txns.system(|id, last| {
                    let mut ctx = LogCtx { log: &self.log, txn: id, last_lsn: last };
                    tree.remove_record(&key, &mut ctx, &OpLog::System)?;
                    if let Some(h) = self.hash_for(index) {
                        h.remove(key.as_bytes(), &mut ctx, &OpLog::System)?;
                    }
                    Ok(())
                })?;
                report.removed += 1;
                self.obs.ghosts_removed.inc();
            } else {
                report.skipped_live += 1;
            }
            self.locks.release_all(cleaner);
        }
        Ok(report)
    }

    /// Number of entries waiting for ghost cleanup.
    pub fn ghost_backlog(&self) -> usize {
        self.ghost_queue.len()
    }

    /// Debug: dump the version chain of a view row (tests/diagnostics).
    #[doc(hidden)]
    pub fn debug_chain(&self, view_name: &str, group: &[Value]) -> Result<Vec<(u64, bool, Option<crate::versions::DeltaPairs>)>> {
        let view = self.catalog.read().view(view_name)?.clone();
        let key = Key::from_values(group);
        Ok(self.versions.debug_chain(view.index, key.as_bytes()))
    }

    /// Snapshot read of one view row at snapshot LSN `s`: reconstruct from
    /// the version chain, or read directly when the row was never modified.
    /// Returns the full row bytes iff the group is visible at `s`.
    pub(crate) fn snapshot_view_value(
        &self,
        view: &ViewDef,
        kb: &[u8],
        s: Lsn,
    ) -> Result<Option<Vec<u8>>> {
        let key = Key::from_bytes(kb.to_vec());
        let group = key.decode_values()?;
        let mat = view_materializer(view, &group);
        let reconstructed = loop {
            match self.versions.read_at(view.index, kb, s, &mat)? {
                Some(v) => break v,
                None => {
                    // No chain: the physical image should be stable — but a
                    // writer may create the chain and modify the row between
                    // our check and the read. Re-check afterwards; a chain
                    // that appeared means the bytes we read may carry an
                    // uncommitted delta, so resolve through the chain.
                    let tree = self.tree(view.index)?;
                    let phys = match tree.get(&key)? {
                        Some((false, v)) => Some(v),
                        _ => None,
                    };
                    if !self.versions.has_chain(view.index, kb) {
                        break phys;
                    }
                }
            }
        };
        match reconstructed {
            Some(v) if row_visible(view, &v)? => Ok(Some(v)),
            _ => Ok(None),
        }
    }

    // ---- crash & recovery --------------------------------------------

    /// Simulate a hard crash (volatile state lost; each dirty page was
    /// "stolen" to disk with probability `steal_probability`) and run ARIES
    /// recovery. Requires no active transactions on the calling side.
    pub fn crash_and_recover(&self, steal_probability: f64, seed: u64) -> Result<RecoveryReport> {
        let mut rng = txview_common::rng::Rng::new(seed);
        self.pool.simulate_crash(steal_probability, &mut rng)?;
        self.log.simulate_crash();
        self.versions.clear();
        self.touched.clear();
        self.cascades.clear();
        self.ghost_queue.clear();
        self.watermark.clear_snapshots();
        self.locks.reset();
        self.txns.reset_active();
        if let Some(p) = self.txns.pipeline() {
            p.deps.clear();
        }
        self.health.reset();
        recover(&self.log, &self.pool, self)
    }
}

/// Build the version-store materializer for one view row: applies forward
/// escrow pairs to a (possibly absent) row image. Absent rows materialize
/// from the invisible zero row of this group.
#[allow(clippy::type_complexity)]
fn view_materializer<'a>(
    view: &'a ViewDef,
    group: &'a [Value],
) -> impl Fn(Option<Vec<u8>>, &[(u16, txview_wal::record::ValueDelta)]) -> Result<Option<Vec<u8>>> + 'a {
    move |base, pairs| {
        let mut value = match base {
            Some(b) => b,
            None => encode_view_row(group, 0, &escrow::zero_aggs(view))?,
        };
        let off = agg_region_offset(group);
        let region = escrow::apply_forward_pairs(&value[off..], view.aggs.len(), pairs)?;
        value[off..].copy_from_slice(&region);
        Ok(Some(value))
    }
}

/// Is an encoded view row visible (COUNT_BIG > 0)? Catalog-free.
fn row_visible(view: &ViewDef, value: &[u8]) -> Result<bool> {
    let row = Row::from_bytes(value)?;
    let count = row.get(view.group_types.len()).as_int()?;
    Ok(count > 0)
}

impl UndoHandler for Database {
    /// Logical undo executor: runs during runtime rollback AND crash
    /// recovery. Every page change is logged as a CLR chaining `undo_next`.
    fn undo(&self, txn: TxnId, op: &UndoOp, undo_next: Lsn, chain: &mut Lsn) -> Result<()> {
        let last = chain;
        let how = OpLog::Clr { undo_next };
        match op {
            UndoOp::IndexInsert { index, key } => {
                // A hash-logged insert undoes by removing the entry.
                if let Some(h) = self.hash_by_own_id(*index) {
                    let mut ctx = LogCtx { log: &self.log, txn, last_lsn: last };
                    h.remove(key, &mut ctx, &how)?;
                    return Ok(());
                }
                // Undo a base-row insert: ghost it (X lock held by owner).
                let tree = self.tree(*index)?;
                let k = Key::from_bytes(key.clone());
                let mut ctx = LogCtx { log: &self.log, txn, last_lsn: last };
                tree.set_ghost(&k, true, &mut ctx, &how)?;
                self.enqueue_ghost(*index, key.clone());
            }
            UndoOp::IndexDelete { index, key, row } => {
                // A hash-logged remove undoes by re-inserting the entry.
                if let Some(h) = self.hash_by_own_id(*index) {
                    let mut ctx = LogCtx { log: &self.log, txn, last_lsn: last };
                    h.put(key, row, &mut ctx, &how)?;
                    return Ok(());
                }
                // Undo a base-row delete: resurrect the ghost.
                let tree = self.tree(*index)?;
                let k = Key::from_bytes(key.clone());
                let mut ctx = LogCtx { log: &self.log, txn, last_lsn: last };
                match tree.set_ghost(&k, false, &mut ctx, &how) {
                    Ok(_) => {}
                    Err(Error::NotFound(_)) => {
                        // Defensive: re-insert from the logged image.
                        tree.insert(&k, &row_value_bytes(row)?, &mut ctx, &how_as_update(&how))?;
                    }
                    Err(e) => return Err(e),
                }
            }
            UndoOp::IndexUpdate { index, key, old_row } => {
                // A hash-logged replace undoes by restoring the old entry.
                if let Some(h) = self.hash_by_own_id(*index) {
                    let mut ctx = LogCtx { log: &self.log, txn, last_lsn: last };
                    h.put(key, old_row, &mut ctx, &how)?;
                    return Ok(());
                }
                let tree = self.tree(*index)?;
                let k = Key::from_bytes(key.clone());
                let mut ctx = LogCtx { log: &self.log, txn, last_lsn: last };
                tree.update_value(&k, old_row, &mut ctx, &how)?;
            }
            UndoOp::Escrow { index, key, deltas } => {
                // A hash-logged escrow patch undoes by the inverse patch —
                // commutative, so concurrent E-holders compose, exactly as
                // on the tree. None of the tree arm's bookkeeping applies
                // (the accumulator and cascade queues key the tree's id).
                if let Some(h) = self.hash_by_own_id(*index) {
                    let k = Key::from_bytes(key.clone());
                    let group = k.decode_values()?;
                    let region_off = agg_region_offset(&group);
                    let n_aggs = deltas.iter().map(|(p, _)| *p as usize).max().unwrap_or(0);
                    let mut ctx = LogCtx { log: &self.log, txn, last_lsn: last };
                    h.patch_region(
                        key,
                        region_off,
                        |old| apply_undo_pairs(old, n_aggs, deltas),
                        &mut ctx,
                        &how,
                    )?;
                    return Ok(());
                }
                let tree = self.tree(*index)?;
                let k = Key::from_bytes(key.clone());
                let group = k.decode_values()?;
                let cat = self.catalog.read();
                let parent = cat
                    .views()
                    .find(|v| v.index == *index)
                    .cloned()
                    .ok_or_else(|| Error::NotFound(format!("view for index {}", index.0)))?;
                drop(cat);
                let n_aggs = parent.aggs.len();
                let region_off = agg_region_offset(&group);
                let mut new_count = 0i64;
                let mut ctx = LogCtx { log: &self.log, txn, last_lsn: last };
                tree.modify_value_region(
                    &k,
                    region_off,
                    |old| {
                        let out = apply_undo_pairs(old, n_aggs, deltas)?;
                        new_count = escrow::decode_agg_region(&out, n_aggs)?.0;
                        Ok(out)
                    },
                    &mut ctx,
                    &how,
                )?;
                if new_count == 0 {
                    self.enqueue_ghost(*index, key.clone());
                }
                // Keep the version-publication accumulator in sync with a
                // partial (savepoint) rollback: subtract the undone pairs.
                let inverse: Vec<(u16, txview_wal::record::ValueDelta)> =
                    deltas.iter().map(|(p, d)| (*p, d.inverse())).collect();
                self.touched.update(&txn, |slot| -> Result<()> {
                    if let Some(rows) = slot {
                        if let Some(Touch::Additive(acc)) = rows.get_mut(&(*index, key.clone())) {
                            escrow::merge_pairs(acc, &inverse)?;
                        }
                    }
                    Ok(())
                })?;
                // Mirror the accumulator fix in the cascade queue: a
                // savepoint rollback of a parent delta retracts its
                // projection from any still-queued child entries, so the
                // later commit flush applies only surviving work. (Views
                // with children are all-SUM by DDL validation, so the
                // undo pairs reconstruct a complete forward delta: pos 0
                // is COUNT_BIG, pos 1.. the aggregates.)
                if self.graph.read().has_children(parent.id) {
                    let mut fwd = RowDelta {
                        group,
                        count: 0,
                        aggs: parent
                            .aggs
                            .iter()
                            .map(|a| match a {
                                AggSpec::SumFloat { .. } | AggSpec::Avg { float: true, .. } => {
                                    ValueDelta::Float(0.0)
                                }
                                _ => ValueDelta::Int(0),
                            })
                            .collect(),
                    };
                    for (pos, d) in deltas {
                        if *pos == 0 {
                            if let ValueDelta::Int(c) = d {
                                fwd.count = *c;
                            }
                        } else if let Some(slot) = fwd.aggs.get_mut(*pos as usize - 1) {
                            *slot = *d;
                        }
                    }
                    let inv = fwd.inverse();
                    let children: Vec<ViewId> = self.graph.read().children(parent.id).to_vec();
                    for child_id in children {
                        let child = self.catalog.read().view_by_id(child_id)?.clone();
                        let projected = derived_delta(&child, &parent, &inv)?;
                        if projected.is_noop() {
                            continue;
                        }
                        let depth = self.graph.read().depth(child_id).unwrap_or(0);
                        let kb = projected.key().as_bytes().to_vec();
                        let pending = PendingDelta {
                            group: projected.group,
                            count: projected.count,
                            aggs: projected.aggs,
                        };
                        // `update`, not `with_entry`: recovery undo (and a
                        // full rollback, which drops the queue first) must
                        // not materialize an empty queue as a side effect.
                        self.cascades.update(&txn, |slot| match slot {
                            Some(q) => q.retract(depth, child_id, &kb, &pending),
                            None => Ok(()),
                        })?;
                    }
                }
            }
            UndoOp::None | UndoOp::Page { .. } => {}
        }
        Ok(())
    }
}

fn row_value_bytes(row: &[u8]) -> Result<Vec<u8>> {
    Ok(row.to_vec())
}

fn how_as_update(how: &OpLog) -> OpLog {
    how.clone()
}
