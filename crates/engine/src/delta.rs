//! Delta computation: how one DML statement on a base table translates
//! into [`RowDelta`]s against each dependent view.
//!
//! This is the "maintenance plan" of the paper's system, reduced to the
//! group-by/aggregate shape indexed views take: project the group-by
//! columns, evaluate the filter, and emit signed aggregate contributions.
//! Join views differ only in where the group values come from (a probe of
//! the dimension table, done by the caller).

use crate::catalog::{AggSpec, ViewDef, ViewSource};
use crate::escrow::RowDelta;
use txview_common::{Error, Result, Row, Value};
use txview_wal::record::ValueDelta;

/// The aggregate contributions of one qualifying row, with `sign` +1 for
/// inserts and −1 for deletes. Returns `None` if the row fails the filter.
/// For MIN/MAX columns the "delta" carries the contributing value (signs do
/// not apply; deletes of MIN/MAX contributors trigger recomputation
/// upstream).
pub fn row_contribution(view: &ViewDef, row: &Row, sign: i64) -> Result<Option<Vec<ValueDelta>>> {
    if !view.filter.eval(row) {
        return Ok(None);
    }
    let mut out = Vec::with_capacity(view.aggs.len());
    for spec in &view.aggs {
        let v = row.get(spec.col());
        if v.is_null() {
            return Err(Error::Schema(format!(
                "NULL in aggregated column {} (view '{}')",
                spec.col(),
                view.name
            )));
        }
        let d = match spec {
            AggSpec::SumInt { .. } => ValueDelta::Int(v.as_int()? * sign),
            AggSpec::SumFloat { .. } => ValueDelta::Float(v.as_float()? * sign as f64),
            AggSpec::Min { .. } | AggSpec::Max { .. } => match v {
                Value::Int(i) => ValueDelta::Int(*i),
                Value::Float(f) => ValueDelta::Float(*f),
                other => {
                    return Err(Error::Schema(format!("MIN/MAX over {other:?} unsupported")))
                }
            },
        };
        out.push(d);
    }
    Ok(Some(out))
}

/// Delta of a single-table view for an inserted (+1) or deleted (−1) row.
pub fn single_table_delta(view: &ViewDef, row: &Row, sign: i64) -> Result<Option<RowDelta>> {
    let group_by = match &view.source {
        ViewSource::Single { group_by, .. } => group_by,
        ViewSource::Join { .. } => {
            return Err(Error::invalid("single_table_delta on a join view"))
        }
    };
    Ok(row_contribution(view, row, sign)?.map(|aggs| RowDelta {
        group: group_by.iter().map(|&c| row.get(c).clone()).collect(),
        count: sign,
        aggs,
    }))
}

/// Delta of a join view for a fact-row insert/delete, given the group
/// values resolved by probing the dimension table.
pub fn join_delta(
    view: &ViewDef,
    fact_row: &Row,
    group: Vec<Value>,
    sign: i64,
) -> Result<Option<RowDelta>> {
    Ok(row_contribution(view, fact_row, sign)?.map(|aggs| RowDelta { group, count: sign, aggs }))
}

/// Deltas of a single-table view for an update `old → new`.
///
/// If the group is unchanged and both rows qualify, the two contributions
/// are merged into one delta with count 0 (the common fast path: only the
/// aggregated columns moved). Otherwise a −1 delta for the old row and a
/// +1 delta for the new row are emitted. MIN/MAX views never merge (the
/// departing value may have been the extremum).
pub fn update_deltas(view: &ViewDef, old: &Row, new: &Row) -> Result<Vec<RowDelta>> {
    let d_old = single_table_delta(view, old, -1)?;
    let d_new = single_table_delta(view, new, 1)?;
    let mergeable = view.aggs.iter().all(AggSpec::is_escrow_capable);
    match (d_old, d_new) {
        (None, None) => Ok(vec![]),
        (Some(o), None) => Ok(vec![o]),
        (None, Some(n)) => Ok(vec![n]),
        (Some(o), Some(n)) => {
            if mergeable && o.group == n.group {
                let aggs = o
                    .aggs
                    .iter()
                    .zip(&n.aggs)
                    .map(|(a, b)| merge_delta(*a, *b))
                    .collect::<Result<Vec<_>>>()?;
                Ok(vec![RowDelta { group: n.group, count: 0, aggs }])
            } else {
                Ok(vec![o, n])
            }
        }
    }
}

fn merge_delta(a: ValueDelta, b: ValueDelta) -> Result<ValueDelta> {
    match (a, b) {
        (ValueDelta::Int(x), ValueDelta::Int(y)) => x
            .checked_add(y)
            .map(ValueDelta::Int)
            .ok_or_else(|| Error::invalid("delta overflow")),
        (ValueDelta::Float(x), ValueDelta::Float(y)) => Ok(ValueDelta::Float(x + y)),
        _ => Err(Error::corruption("mismatched delta types")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CmpOp, MaintenanceMode, Predicate};
    use txview_common::row;
    use txview_common::value::ValueType;
    use txview_common::{IndexId, ObjectId, PageId, ViewId};

    fn sum_view(filter: Predicate) -> ViewDef {
        ViewDef {
            id: ViewId(1),
            object: ObjectId(10),
            name: "v".into(),
            source: ViewSource::Single { table: ObjectId(1), group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
            index: IndexId(2),
            root: PageId(1),
            group_types: vec![ValueType::Int],
        }
    }

    #[test]
    fn insert_delta_projects_group_and_sums() {
        let v = sum_view(Predicate::True);
        let d = single_table_delta(&v, &row![1i64, 7i64, 100i64], 1).unwrap().unwrap();
        assert_eq!(d.group, vec![Value::Int(7)]);
        assert_eq!(d.count, 1);
        assert_eq!(d.aggs, vec![ValueDelta::Int(100)]);
    }

    #[test]
    fn delete_delta_is_negative() {
        let v = sum_view(Predicate::True);
        let d = single_table_delta(&v, &row![1i64, 7i64, 100i64], -1).unwrap().unwrap();
        assert_eq!(d.count, -1);
        assert_eq!(d.aggs, vec![ValueDelta::Int(-100)]);
    }

    #[test]
    fn filter_suppresses_delta() {
        let v = sum_view(Predicate::Cmp { col: 2, op: CmpOp::Ge, value: Value::Int(1000) });
        assert!(single_table_delta(&v, &row![1i64, 7i64, 100i64], 1).unwrap().is_none());
        assert!(single_table_delta(&v, &row![1i64, 7i64, 2000i64], 1).unwrap().is_some());
    }

    #[test]
    fn update_same_group_merges_to_count_zero() {
        let v = sum_view(Predicate::True);
        let ds = update_deltas(&v, &row![1i64, 7i64, 100i64], &row![1i64, 7i64, 130i64]).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].count, 0);
        assert_eq!(ds[0].aggs, vec![ValueDelta::Int(30)]);
    }

    #[test]
    fn update_group_move_emits_two_deltas() {
        let v = sum_view(Predicate::True);
        let ds = update_deltas(&v, &row![1i64, 7i64, 100i64], &row![1i64, 8i64, 100i64]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].group, vec![Value::Int(7)]);
        assert_eq!(ds[0].count, -1);
        assert_eq!(ds[1].group, vec![Value::Int(8)]);
        assert_eq!(ds[1].count, 1);
    }

    #[test]
    fn update_into_filter_emits_insert_only() {
        let v = sum_view(Predicate::Cmp { col: 2, op: CmpOp::Ge, value: Value::Int(150) });
        let ds = update_deltas(&v, &row![1i64, 7i64, 100i64], &row![1i64, 7i64, 200i64]).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].count, 1);
    }

    #[test]
    fn min_max_view_never_merges_updates() {
        let mut v = sum_view(Predicate::True);
        v.aggs = vec![AggSpec::Min { col: 2 }];
        let ds = update_deltas(&v, &row![1i64, 7i64, 100i64], &row![1i64, 7i64, 130i64]).unwrap();
        assert_eq!(ds.len(), 2, "MIN views need delete+insert handling");
    }

    #[test]
    fn null_in_aggregated_column_is_an_error() {
        let v = sum_view(Predicate::True);
        let mut r = row![1i64, 7i64];
        r.push(Value::Null);
        assert!(single_table_delta(&v, &r, 1).is_err());
    }

    #[test]
    fn join_delta_uses_provided_group() {
        let mut v = sum_view(Predicate::True);
        v.source = ViewSource::Join {
            fact: ObjectId(1),
            fact_fk_col: 1,
            dim: ObjectId(2),
            dim_group_by: vec![1],
        };
        let d = join_delta(&v, &row![1i64, 7i64, 100i64], vec![Value::Str("west".into())], 1)
            .unwrap()
            .unwrap();
        assert_eq!(d.group, vec![Value::Str("west".into())]);
        assert_eq!(d.aggs, vec![ValueDelta::Int(100)]);
    }
}
