//! Delta computation: how one DML statement on a base table translates
//! into [`RowDelta`]s against each dependent view.
//!
//! This is the "maintenance plan" of the paper's system, reduced to the
//! group-by/aggregate shape indexed views take: project the group-by
//! columns, evaluate the filter, and emit signed aggregate contributions.
//! Join views differ only in where the group values come from (a probe of
//! the dimension table, done by the caller).

use crate::catalog::{AggSpec, ViewDef, ViewSource};
use crate::escrow::RowDelta;
use txview_common::{Error, Result, Row, Value};
use txview_wal::record::ValueDelta;

/// The aggregate contributions of one qualifying row, with `sign` +1 for
/// inserts and −1 for deletes. Returns `None` if the row fails the filter.
/// For MIN/MAX columns the "delta" carries the contributing value (signs do
/// not apply; deletes of MIN/MAX contributors trigger recomputation
/// upstream).
pub fn row_contribution(view: &ViewDef, row: &Row, sign: i64) -> Result<Option<Vec<ValueDelta>>> {
    if !view.filter.eval(row) {
        return Ok(None);
    }
    let mut out = Vec::with_capacity(view.aggs.len());
    for spec in &view.aggs {
        let v = row.get(spec.col());
        if v.is_null() {
            return Err(Error::Schema(format!(
                "NULL in aggregated column {} (view '{}')",
                spec.col(),
                view.name
            )));
        }
        let d = match spec {
            AggSpec::SumInt { .. } | AggSpec::Avg { float: false, .. } => {
                ValueDelta::Int(v.as_int()? * sign)
            }
            AggSpec::SumFloat { .. } | AggSpec::Avg { float: true, .. } => {
                ValueDelta::Float(v.as_float()? * sign as f64)
            }
            AggSpec::Min { .. } | AggSpec::Max { .. } => match v {
                Value::Int(i) => ValueDelta::Int(*i),
                Value::Float(f) => ValueDelta::Float(*f),
                other => {
                    return Err(Error::Schema(format!("MIN/MAX over {other:?} unsupported")))
                }
            },
        };
        out.push(d);
    }
    Ok(Some(out))
}

/// Delta of a single-table view for an inserted (+1) or deleted (−1) row.
pub fn single_table_delta(view: &ViewDef, row: &Row, sign: i64) -> Result<Option<RowDelta>> {
    let group_by = match &view.source {
        ViewSource::Single { group_by, .. } => group_by,
        ViewSource::Join { .. } => {
            return Err(Error::invalid("single_table_delta on a join view"))
        }
        ViewSource::Derived { .. } => {
            return Err(Error::invalid("single_table_delta on a derived view"))
        }
    };
    Ok(row_contribution(view, row, sign)?.map(|aggs| RowDelta {
        group: group_by.iter().map(|&c| row.get(c).clone()).collect(),
        count: sign,
        aggs,
    }))
}

/// Delta of a join view for a fact-row insert/delete, given the group
/// values resolved by probing the dimension table.
pub fn join_delta(
    view: &ViewDef,
    fact_row: &Row,
    group: Vec<Value>,
    sign: i64,
) -> Result<Option<RowDelta>> {
    Ok(row_contribution(view, fact_row, sign)?.map(|aggs| RowDelta { group, count: sign, aggs }))
}

/// Deltas of a single-table view for an update `old → new`.
///
/// If the group is unchanged and both rows qualify, the two contributions
/// are merged into one delta with count 0 (the common fast path: only the
/// aggregated columns moved). Otherwise a −1 delta for the old row and a
/// +1 delta for the new row are emitted. MIN/MAX views never merge (the
/// departing value may have been the extremum).
pub fn update_deltas(view: &ViewDef, old: &Row, new: &Row) -> Result<Vec<RowDelta>> {
    let d_old = single_table_delta(view, old, -1)?;
    let d_new = single_table_delta(view, new, 1)?;
    let mergeable = view.aggs.iter().all(AggSpec::is_escrow_capable);
    match (d_old, d_new) {
        (None, None) => Ok(vec![]),
        (Some(o), None) => Ok(vec![o]),
        (None, Some(n)) => Ok(vec![n]),
        (Some(o), Some(n)) => {
            if mergeable && o.group == n.group {
                let aggs = o
                    .aggs
                    .iter()
                    .zip(&n.aggs)
                    .map(|(a, b)| merge_delta(*a, *b))
                    .collect::<Result<Vec<_>>>()?;
                Ok(vec![RowDelta { group: n.group, count: 0, aggs }])
            } else {
                Ok(vec![o, n])
            }
        }
    }
}

/// The group values of a derived-view row for a given parent group.
/// An empty `group_by` is a global rollup, stored under one synthetic
/// constant `Int(0)` group column (an empty key is the B-tree's leftmost
/// fence and cannot name a row).
pub fn derived_group(group_by: &[usize], parent_group: &[Value]) -> Vec<Value> {
    if group_by.is_empty() {
        vec![Value::Int(0)]
    } else {
        group_by.iter().map(|&c| parent_group[c].clone()).collect()
    }
}

/// Project a parent view's delta into a derived child's delta — the linear
/// propagation step of the cascade. The child's COUNT_BIG tracks the sum of
/// parent counts (so the projection is exactly the parent's count delta),
/// and each child aggregate indexes the parent's stored row layout:
/// `col == parent_ngroup` sums the parent's COUNT_BIG, `col ==
/// parent_ngroup + 1 + i` sums parent aggregate `i`. Linearity is what
/// makes this sound under concurrent uncommitted escrow increments — the
/// projection never reads the parent row, only the delta.
pub fn derived_delta(child: &ViewDef, parent: &ViewDef, d: &RowDelta) -> Result<RowDelta> {
    let group_by = match &child.source {
        ViewSource::Derived { group_by, .. } => group_by,
        _ => return Err(Error::invalid("derived_delta on a non-derived view")),
    };
    let pngroup = parent.group_types.len();
    let mut aggs = Vec::with_capacity(child.aggs.len());
    for spec in &child.aggs {
        let col = spec.col();
        let projected = if col == pngroup {
            // Sums the parent's COUNT_BIG column.
            match spec {
                AggSpec::SumInt { .. } => ValueDelta::Int(d.count),
                _ => {
                    return Err(Error::Schema(format!(
                        "derived view '{}' must sum the parent count as SumInt",
                        child.name
                    )))
                }
            }
        } else if col > pngroup && col < pngroup + 1 + parent.aggs.len() {
            let src = d.aggs[col - pngroup - 1];
            match (spec, src) {
                (AggSpec::SumInt { .. } | AggSpec::Avg { float: false, .. }, ValueDelta::Int(_))
                | (
                    AggSpec::SumFloat { .. } | AggSpec::Avg { float: true, .. },
                    ValueDelta::Float(_),
                ) => src,
                _ => {
                    return Err(Error::corruption(format!(
                        "derived view '{}' aggregate {col} type mismatch",
                        child.name
                    )))
                }
            }
        } else {
            return Err(Error::Schema(format!(
                "derived view '{}' aggregate column {col} outside the parent's \
                 aggregate region",
                child.name
            )));
        };
        aggs.push(projected);
    }
    Ok(RowDelta { group: derived_group(group_by, &d.group), count: d.count, aggs })
}

/// Fold a parent's materialized contents `group → (count, aggs)` into the
/// derived child's expected contents — the recompute reference used to
/// populate a new derived view, to verify one against its immediate
/// parent, and by the differential oracles. Runs each parent row through
/// [`derived_delta`] so population and incremental maintenance share one
/// projection.
#[allow(clippy::type_complexity)]
pub fn fold_derived(
    child: &ViewDef,
    parent: &ViewDef,
    parent_rows: &std::collections::HashMap<Vec<Value>, (i64, Vec<Value>)>,
) -> Result<std::collections::HashMap<Vec<Value>, (i64, Vec<Value>)>> {
    let mut out: std::collections::HashMap<Vec<Value>, (i64, Vec<Value>)> =
        std::collections::HashMap::new();
    for (pgroup, (pcount, paggs)) in parent_rows {
        if *pcount == 0 {
            continue; // logically absent parent row contributes nothing
        }
        let aggs = paggs
            .iter()
            .map(|v| match v {
                Value::Int(i) => Ok(ValueDelta::Int(*i)),
                Value::Float(f) => Ok(ValueDelta::Float(*f)),
                other => Err(Error::corruption(format!(
                    "non-numeric parent aggregate {other:?} in '{}'",
                    parent.name
                ))),
            })
            .collect::<Result<Vec<_>>>()?;
        let d = RowDelta { group: pgroup.clone(), count: *pcount, aggs };
        let cd = derived_delta(child, parent, &d)?;
        let entry = out.entry(cd.group.clone()).or_insert_with(|| {
            let zeros = child
                .aggs
                .iter()
                .map(|a| match a {
                    AggSpec::SumFloat { .. } | AggSpec::Avg { float: true, .. } => {
                        Value::Float(0.0)
                    }
                    _ => Value::Int(0),
                })
                .collect();
            (0i64, zeros)
        });
        entry.0 += cd.count;
        for (slot, dv) in entry.1.iter_mut().zip(&cd.aggs) {
            *slot = dv.apply_to(slot)?;
        }
    }
    Ok(out)
}

fn merge_delta(a: ValueDelta, b: ValueDelta) -> Result<ValueDelta> {
    match (a, b) {
        (ValueDelta::Int(x), ValueDelta::Int(y)) => x
            .checked_add(y)
            .map(ValueDelta::Int)
            .ok_or_else(|| Error::invalid("delta overflow")),
        (ValueDelta::Float(x), ValueDelta::Float(y)) => Ok(ValueDelta::Float(x + y)),
        _ => Err(Error::corruption("mismatched delta types")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CmpOp, MaintenanceMode, Predicate};
    use txview_common::row;
    use txview_common::value::ValueType;
    use txview_common::{IndexId, ObjectId, PageId, ViewId};

    fn sum_view(filter: Predicate) -> ViewDef {
        ViewDef {
            id: ViewId(1),
            object: ObjectId(10),
            name: "v".into(),
            source: ViewSource::Single { table: ObjectId(1), group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
            index: IndexId(2),
            root: PageId(1),
            group_types: vec![ValueType::Int],
            hash: None,
        }
    }

    #[test]
    fn insert_delta_projects_group_and_sums() {
        let v = sum_view(Predicate::True);
        let d = single_table_delta(&v, &row![1i64, 7i64, 100i64], 1).unwrap().unwrap();
        assert_eq!(d.group, vec![Value::Int(7)]);
        assert_eq!(d.count, 1);
        assert_eq!(d.aggs, vec![ValueDelta::Int(100)]);
    }

    #[test]
    fn delete_delta_is_negative() {
        let v = sum_view(Predicate::True);
        let d = single_table_delta(&v, &row![1i64, 7i64, 100i64], -1).unwrap().unwrap();
        assert_eq!(d.count, -1);
        assert_eq!(d.aggs, vec![ValueDelta::Int(-100)]);
    }

    #[test]
    fn filter_suppresses_delta() {
        let v = sum_view(Predicate::Cmp { col: 2, op: CmpOp::Ge, value: Value::Int(1000) });
        assert!(single_table_delta(&v, &row![1i64, 7i64, 100i64], 1).unwrap().is_none());
        assert!(single_table_delta(&v, &row![1i64, 7i64, 2000i64], 1).unwrap().is_some());
    }

    #[test]
    fn update_same_group_merges_to_count_zero() {
        let v = sum_view(Predicate::True);
        let ds = update_deltas(&v, &row![1i64, 7i64, 100i64], &row![1i64, 7i64, 130i64]).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].count, 0);
        assert_eq!(ds[0].aggs, vec![ValueDelta::Int(30)]);
    }

    #[test]
    fn update_group_move_emits_two_deltas() {
        let v = sum_view(Predicate::True);
        let ds = update_deltas(&v, &row![1i64, 7i64, 100i64], &row![1i64, 8i64, 100i64]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].group, vec![Value::Int(7)]);
        assert_eq!(ds[0].count, -1);
        assert_eq!(ds[1].group, vec![Value::Int(8)]);
        assert_eq!(ds[1].count, 1);
    }

    #[test]
    fn update_into_filter_emits_insert_only() {
        let v = sum_view(Predicate::Cmp { col: 2, op: CmpOp::Ge, value: Value::Int(150) });
        let ds = update_deltas(&v, &row![1i64, 7i64, 100i64], &row![1i64, 7i64, 200i64]).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].count, 1);
    }

    #[test]
    fn min_max_view_never_merges_updates() {
        let mut v = sum_view(Predicate::True);
        v.aggs = vec![AggSpec::Min { col: 2 }];
        let ds = update_deltas(&v, &row![1i64, 7i64, 100i64], &row![1i64, 7i64, 130i64]).unwrap();
        assert_eq!(ds.len(), 2, "MIN views need delete+insert handling");
    }

    #[test]
    fn null_in_aggregated_column_is_an_error() {
        let v = sum_view(Predicate::True);
        let mut r = row![1i64, 7i64];
        r.push(Value::Null);
        assert!(single_table_delta(&v, &r, 1).is_err());
    }

    fn derived_view(parent: &ViewDef, group_by: Vec<usize>, aggs: Vec<AggSpec>) -> ViewDef {
        ViewDef {
            id: ViewId(parent.id.0 + 1),
            object: ObjectId(parent.object.0 + 1),
            name: format!("d{}", parent.id.0),
            source: ViewSource::Derived { parent: parent.id, group_by: group_by.clone() },
            aggs,
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
            index: IndexId(parent.index.0 + 1),
            root: PageId(1),
            group_types: if group_by.is_empty() {
                vec![ValueType::Int]
            } else {
                group_by.iter().map(|&c| parent.group_types[c]).collect()
            },
            hash: None,
        }
    }

    #[test]
    fn derived_delta_projects_count_and_aggs() {
        // Parent layout: [grp@0, count@1, sum@2]. Identity child keeps the
        // group and sums both the parent count and the parent sum.
        let p = sum_view(Predicate::True);
        let c = derived_view(&p, vec![0], vec![AggSpec::SumInt { col: 1 }, AggSpec::SumInt { col: 2 }]);
        let d = RowDelta { group: vec![Value::Int(7)], count: 1, aggs: vec![ValueDelta::Int(100)] };
        let out = derived_delta(&c, &p, &d).unwrap();
        assert_eq!(out.group, vec![Value::Int(7)]);
        assert_eq!(out.count, 1);
        assert_eq!(out.aggs, vec![ValueDelta::Int(1), ValueDelta::Int(100)]);
    }

    #[test]
    fn derived_global_rollup_uses_synthetic_group() {
        let p = sum_view(Predicate::True);
        let c = derived_view(&p, vec![], vec![AggSpec::SumInt { col: 2 }]);
        let d = RowDelta { group: vec![Value::Int(9)], count: -1, aggs: vec![ValueDelta::Int(-30)] };
        let out = derived_delta(&c, &p, &d).unwrap();
        assert_eq!(out.group, vec![Value::Int(0)], "global rollup keys on Int(0)");
        assert_eq!(out.count, -1);
        assert_eq!(out.aggs, vec![ValueDelta::Int(-30)]);
    }

    #[test]
    fn derived_delta_rejects_group_region_aggregates() {
        let p = sum_view(Predicate::True);
        // col 0 is the parent's group column — not summable.
        let c = derived_view(&p, vec![0], vec![AggSpec::SumInt { col: 0 }]);
        let d = RowDelta { group: vec![Value::Int(7)], count: 1, aggs: vec![ValueDelta::Int(1)] };
        assert!(derived_delta(&c, &p, &d).is_err());
        // And past the aggregate region.
        let c = derived_view(&p, vec![0], vec![AggSpec::SumInt { col: 3 }]);
        assert!(derived_delta(&c, &p, &d).is_err());
    }

    #[test]
    fn join_delta_uses_provided_group() {
        let mut v = sum_view(Predicate::True);
        v.source = ViewSource::Join {
            fact: ObjectId(1),
            fact_fk_col: 1,
            dim: ObjectId(2),
            dim_group_by: vec![1],
        };
        let d = join_delta(&v, &row![1i64, 7i64, 100i64], vec![Value::Str("west".into())], 1)
            .unwrap()
            .unwrap();
        assert_eq!(d.group, vec![Value::Str("west".into())]);
        assert_eq!(d.aggs, vec![ValueDelta::Int(100)]);
    }
}
