//! The commutative-delta machinery for aggregate view rows.
//!
//! A view row is an encoded [`Row`] of the shape
//!
//! ```text
//! [ group values ... | COUNT_BIG | agg_1 | agg_2 | ... ]
//! ```
//!
//! where every aggregate column (including the count) is stored as a
//! *fixed-width* INT or FLOAT value — 9 encoded bytes each — so escrow
//! increments can be applied as same-length in-place patches of the record's
//! trailing "aggregate region". The region's byte offset depends only on the
//! group values, which never change for a given row.
//!
//! `COUNT_BIG(*)` doubles as the row's existence flag: a view row is
//! *visible* iff its count is positive. Decrement-to-zero therefore "ghosts"
//! the row without any non-commutative operation (a later increment
//! resurrects it; the ghost-cleanup system transaction removes settled
//! zero-count rows physically).

use crate::catalog::{AggSpec, ViewDef};
use txview_common::codec::{Reader, Writer};
use txview_common::{Error, Key, Result, Row, Value};
use txview_wal::record::ValueDelta;

/// A maintenance delta for one view row: how DML on the base table changes
/// one group's aggregates.
#[derive(Clone, PartialEq, Debug)]
pub struct RowDelta {
    /// The group-by values (the view key).
    pub group: Vec<Value>,
    /// COUNT_BIG delta (+1 per qualifying inserted row, −1 per delete).
    pub count: i64,
    /// Per-aggregate deltas, aligned with `ViewDef::aggs`. For MIN/MAX these
    /// carry the *contributing value* instead of an additive delta.
    pub aggs: Vec<ValueDelta>,
}

impl RowDelta {
    /// The view key for this delta.
    pub fn key(&self) -> Key {
        Key::from_values(&self.group)
    }

    /// The inverse delta (rollback).
    pub fn inverse(&self) -> RowDelta {
        RowDelta {
            group: self.group.clone(),
            count: -self.count,
            aggs: self.aggs.iter().map(|d| d.inverse()).collect(),
        }
    }

    /// True when applying this delta changes nothing: zero count delta and
    /// every aggregate delta exactly zero. Used both to skip no-op applies
    /// and to keep deferred-staleness accounting honest.
    pub fn is_noop(&self) -> bool {
        self.count == 0
            && self.aggs.iter().all(|d| match d {
                ValueDelta::Int(v) => *v == 0,
                ValueDelta::Float(v) => *v == 0.0,
            })
    }

    /// Flatten into the `(region position, delta)` pairs stored in
    /// [`txview_wal::record::UndoOp::Escrow`]: position 0 is the count,
    /// positions 1.. are the aggregates.
    pub fn to_undo_pairs(&self) -> Vec<(u16, ValueDelta)> {
        let mut out = Vec::with_capacity(1 + self.aggs.len());
        out.push((0u16, ValueDelta::Int(self.count)));
        for (i, d) in self.aggs.iter().enumerate() {
            out.push(((i + 1) as u16, *d));
        }
        out
    }
}

/// Encoded byte length of one fixed-width aggregate value (tag + 8).
pub const AGG_VALUE_BYTES: usize = 9;

/// Byte offset of the aggregate region within an encoded view row whose
/// group values are `group`: the row header (arity) plus the group values.
pub fn agg_region_offset(group: &[Value]) -> usize {
    let mut w = Writer::new();
    for v in group {
        v.encode(&mut w);
    }
    2 + w.len()
}

/// Byte length of the aggregate region for a view with `n_aggs` user
/// aggregates (count included).
pub fn agg_region_len(n_aggs: usize) -> usize {
    (1 + n_aggs) * AGG_VALUE_BYTES
}

/// Encode a full view row (group values + count + aggregates).
pub fn encode_view_row(group: &[Value], count: i64, aggs: &[Value]) -> Result<Vec<u8>> {
    for a in aggs {
        match a {
            Value::Int(_) | Value::Float(_) => {}
            other => {
                return Err(Error::Schema(format!(
                    "aggregate values must be INT/FLOAT, got {other:?}"
                )))
            }
        }
    }
    let mut row = Row::new(group.to_vec());
    row.push(Value::Int(count));
    for a in aggs {
        row.push(a.clone());
    }
    Ok(row.to_bytes())
}

/// Decode the aggregate region bytes into `(count, aggregates)`.
pub fn decode_agg_region(region: &[u8], n_aggs: usize) -> Result<(i64, Vec<Value>)> {
    if region.len() != agg_region_len(n_aggs) {
        return Err(Error::corruption(format!(
            "aggregate region is {} bytes, expected {}",
            region.len(),
            agg_region_len(n_aggs)
        )));
    }
    let mut r = Reader::new(region);
    let count = match Value::decode(&mut r)? {
        Value::Int(c) => c,
        other => return Err(Error::corruption(format!("count column is {other:?}"))),
    };
    let mut aggs = Vec::with_capacity(n_aggs);
    for _ in 0..n_aggs {
        aggs.push(Value::decode(&mut r)?);
    }
    Ok((count, aggs))
}

/// Re-encode `(count, aggregates)` as region bytes.
pub fn encode_agg_region(count: i64, aggs: &[Value]) -> Vec<u8> {
    let mut w = Writer::with_capacity(agg_region_len(aggs.len()));
    Value::Int(count).encode(&mut w);
    for a in aggs {
        a.encode(&mut w);
    }
    w.into_bytes()
}

/// Apply `d` to a stored aggregate value, rejecting any type-changing
/// coercion: an `Int` delta may only reach an `Int` aggregate and a
/// `Float` delta a `Float` aggregate. The permissive alternative —
/// delegating straight to [`ValueDelta::apply_to`] — silently *promotes*
/// `Int + Float` to `Float`, mutating the stored type of the aggregate
/// column mid-flight; every escrow apply path routes through this check
/// instead so a mistyped delta is an error, not a corruption.
pub fn apply_delta_checked(d: ValueDelta, v: &Value) -> Result<Value> {
    match (d, v) {
        (ValueDelta::Int(_), Value::Int(_)) | (ValueDelta::Float(_), Value::Float(_)) => {
            d.apply_to(v)
        }
        (d, v) => Err(Error::type_mismatch(
            format!("{} delta for stored aggregate {v:?}", stored_kind(v)),
            format!("{d:?}"),
        )),
    }
}

fn stored_kind(v: &Value) -> &'static str {
    match v {
        Value::Int(_) => "Int",
        Value::Float(_) => "Float",
        _ => "numeric",
    }
}

/// Apply an *additive* delta to a region: count += delta.count and each
/// SUM aggregate gets its delta added. Used by forward escrow maintenance
/// and (with the inverse delta) by logical undo. MIN/MAX columns must not
/// reach this path.
pub fn apply_additive(region: &[u8], view: &ViewDef, delta: &RowDelta) -> Result<Vec<u8>> {
    let (count, mut aggs) = decode_agg_region(region, view.aggs.len())?;
    let new_count = count.checked_add(delta.count).ok_or_else(|| {
        Error::invalid("COUNT_BIG overflow")
    })?;
    for (i, (spec, d)) in view.aggs.iter().zip(&delta.aggs).enumerate() {
        if !spec.is_escrow_capable() {
            return Err(Error::invalid(
                "additive apply on non-commutative aggregate (MIN/MAX)",
            ));
        }
        aggs[i] = apply_delta_checked(*d, &aggs[i])?;
    }
    Ok(encode_agg_region(new_count, &aggs))
}

/// Apply inverse escrow pairs (from an `UndoOp::Escrow`) to a region.
/// `pairs` are the *forward* pairs as logged; this applies their inverses.
pub fn apply_undo_pairs(region: &[u8], n_aggs: usize, pairs: &[(u16, ValueDelta)]) -> Result<Vec<u8>> {
    let (mut count, mut aggs) = decode_agg_region(region, n_aggs)?;
    for (pos, d) in pairs {
        let inv = d.inverse();
        if *pos == 0 {
            match inv {
                ValueDelta::Int(dc) => {
                    count = count
                        .checked_add(dc)
                        .ok_or_else(|| Error::invalid("COUNT_BIG overflow in undo"))?;
                }
                ValueDelta::Float(_) => {
                    return Err(Error::corruption("float delta on COUNT_BIG"));
                }
            }
        } else {
            let i = (*pos - 1) as usize;
            if i >= aggs.len() {
                return Err(Error::corruption("escrow undo position out of range"));
            }
            aggs[i] = apply_delta_checked(inv, &aggs[i])?;
        }
    }
    Ok(encode_agg_region(count, &aggs))
}

/// Apply *forward* escrow pairs (as logged / as published to the version
/// store) to a region.
pub fn apply_forward_pairs(region: &[u8], n_aggs: usize, pairs: &[(u16, ValueDelta)]) -> Result<Vec<u8>> {
    let (mut count, mut aggs) = decode_agg_region(region, n_aggs)?;
    for (pos, d) in pairs {
        if *pos == 0 {
            match d {
                ValueDelta::Int(dc) => {
                    count = count
                        .checked_add(*dc)
                        .ok_or_else(|| Error::invalid("COUNT_BIG overflow"))?;
                }
                ValueDelta::Float(_) => {
                    return Err(Error::corruption("float delta on COUNT_BIG"));
                }
            }
        } else {
            let i = (*pos - 1) as usize;
            if i >= aggs.len() {
                return Err(Error::corruption("escrow position out of range"));
            }
            aggs[i] = apply_delta_checked(*d, &aggs[i])?;
        }
    }
    Ok(encode_agg_region(count, &aggs))
}

/// Merge two sets of forward pairs (a transaction touching the same view
/// row repeatedly accumulates one net delta per row).
pub fn merge_pairs(acc: &mut Vec<(u16, ValueDelta)>, add: &[(u16, ValueDelta)]) -> Result<()> {
    for (pos, d) in add {
        if let Some((_, existing)) = acc.iter_mut().find(|(p, _)| p == pos) {
            *existing = match (*existing, d) {
                (ValueDelta::Int(a), ValueDelta::Int(b)) => ValueDelta::Int(
                    a.checked_add(*b).ok_or_else(|| Error::invalid("delta overflow"))?,
                ),
                (ValueDelta::Float(a), ValueDelta::Float(b)) => ValueDelta::Float(a + b),
                _ => return Err(Error::corruption("mismatched delta types in merge")),
            };
        } else {
            acc.push((*pos, *d));
        }
    }
    Ok(())
}

/// Apply a MIN/MAX-style *merge* for inserts under X-lock maintenance:
/// each non-escrow aggregate takes min/max of the stored value and the
/// contributed value; escrow-capable ones are added.
pub fn apply_insert_merge(region: &[u8], view: &ViewDef, delta: &RowDelta) -> Result<Vec<u8>> {
    let (count, mut aggs) = decode_agg_region(region, view.aggs.len())?;
    let new_count = count
        .checked_add(delta.count)
        .ok_or_else(|| Error::invalid("COUNT_BIG overflow"))?;
    for (i, (spec, d)) in view.aggs.iter().zip(&delta.aggs).enumerate() {
        match spec {
            AggSpec::SumInt { .. } | AggSpec::SumFloat { .. } | AggSpec::Avg { .. } => {
                aggs[i] = apply_delta_checked(*d, &aggs[i])?;
            }
            AggSpec::Min { .. } => {
                let v = delta_value(d);
                if count == 0 || v.total_cmp(&aggs[i]).is_lt() {
                    aggs[i] = v;
                }
            }
            AggSpec::Max { .. } => {
                let v = delta_value(d);
                if count == 0 || v.total_cmp(&aggs[i]).is_gt() {
                    aggs[i] = v;
                }
            }
        }
    }
    Ok(encode_agg_region(new_count, &aggs))
}

/// Neutral aggregate values for a freshly materialized (invisible,
/// COUNT_BIG = 0) group row. MIN/MAX placeholders are overwritten by the
/// first merge (count 0 ⇒ take the contributed value unconditionally).
pub fn zero_aggs(view: &ViewDef) -> Vec<Value> {
    view.aggs
        .iter()
        .map(|spec| match spec {
            AggSpec::SumFloat { .. } | AggSpec::Avg { float: true, .. } => Value::Float(0.0),
            _ => Value::Int(0),
        })
        .collect()
}

/// Decide whether a single-row delete (`delta.count < 0`) retires a stored
/// extremum: the deleted contribution equals (or, on a corrupt view, beats)
/// the stored MIN/MAX on some column while the group stays visible. A
/// retiring delete must recompute the group from base; a non-retiring one
/// applies cheaply via [`apply_delete_keep_extrema`]. A delete that empties
/// the group never retires — a COUNT_BIG of zero ghosts the row, and the
/// next insert-merge overwrites the stale extrema unconditionally.
pub fn delete_retires_extremum(region: &[u8], view: &ViewDef, delta: &RowDelta) -> Result<bool> {
    let (count, aggs) = decode_agg_region(region, view.aggs.len())?;
    let new_count = count
        .checked_add(delta.count)
        .ok_or_else(|| Error::invalid("COUNT_BIG overflow"))?;
    if new_count <= 0 {
        return Ok(false);
    }
    for (i, (spec, d)) in view.aggs.iter().zip(&delta.aggs).enumerate() {
        let retired = match spec {
            AggSpec::Min { .. } => delta_value(d).total_cmp(&aggs[i]).is_le(),
            AggSpec::Max { .. } => delta_value(d).total_cmp(&aggs[i]).is_ge(),
            _ => false,
        };
        if retired {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Apply a non-extremal delete under X-lock maintenance: COUNT_BIG and the
/// escrow-capable aggregates take their (negative) additive deltas; MIN/MAX
/// values are untouched because the deleted row was strictly inside them.
pub fn apply_delete_keep_extrema(
    region: &[u8],
    view: &ViewDef,
    delta: &RowDelta,
) -> Result<Vec<u8>> {
    let (count, mut aggs) = decode_agg_region(region, view.aggs.len())?;
    let new_count = count
        .checked_add(delta.count)
        .ok_or_else(|| Error::invalid("COUNT_BIG overflow"))?;
    for (i, (spec, d)) in view.aggs.iter().zip(&delta.aggs).enumerate() {
        if spec.is_escrow_capable() {
            aggs[i] = apply_delta_checked(*d, &aggs[i])?;
        }
    }
    Ok(encode_agg_region(new_count, &aggs))
}

/// The contributed value carried by a MIN/MAX delta.
pub fn delta_value(d: &ValueDelta) -> Value {
    match d {
        ValueDelta::Int(v) => Value::Int(*v),
        ValueDelta::Float(v) => Value::Float(*v),
    }
}

/// Initial aggregate values for a brand-new group row receiving `delta`.
/// A delta whose type disagrees with the aggregate spec is rejected with
/// [`Error::TypeMismatch`] — the old behaviour silently truncated a
/// `Float` delta into a `SumInt` aggregate with `as i64`, losing the
/// fractional part forever on the first row of a group.
pub fn initial_aggs(view: &ViewDef, delta: &RowDelta) -> Result<Vec<Value>> {
    view.aggs
        .iter()
        .zip(&delta.aggs)
        .map(|(spec, d)| match (spec, d) {
            (AggSpec::SumInt { .. }, ValueDelta::Int(v)) => Ok(Value::Int(*v)),
            (AggSpec::SumInt { .. }, ValueDelta::Float(v)) => {
                Err(Error::type_mismatch("Int delta for SUM(int)", format!("Float({v})")))
            }
            (AggSpec::SumFloat { .. }, ValueDelta::Float(v)) => Ok(Value::Float(*v)),
            (AggSpec::SumFloat { .. }, ValueDelta::Int(v)) => {
                Err(Error::type_mismatch("Float delta for SUM(float)", format!("Int({v})")))
            }
            (AggSpec::Avg { float: false, .. }, ValueDelta::Int(v)) => Ok(Value::Int(*v)),
            (AggSpec::Avg { float: true, .. }, ValueDelta::Float(v)) => Ok(Value::Float(*v)),
            (AggSpec::Avg { float, .. }, d) => Err(Error::type_mismatch(
                if *float { "Float delta for AVG(float)" } else { "Int delta for AVG(int)" },
                format!("{d:?}"),
            )),
            (AggSpec::Min { .. } | AggSpec::Max { .. }, d) => Ok(delta_value(d)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MaintenanceMode, Predicate, ViewSource};
    use txview_common::value::ValueType;
    use txview_common::{IndexId, ObjectId, PageId, ViewId};

    fn view(aggs: Vec<AggSpec>) -> ViewDef {
        ViewDef {
            id: ViewId(1),
            object: ObjectId(10),
            name: "v".into(),
            source: ViewSource::Single { table: ObjectId(1), group_by: vec![1] },
            aggs,
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
            index: IndexId(2),
            root: PageId(1),
            group_types: vec![ValueType::Int],
            hash: None,
        }
    }

    fn sum_view() -> ViewDef {
        view(vec![AggSpec::SumInt { col: 2 }, AggSpec::SumFloat { col: 3 }])
    }

    #[test]
    fn region_offset_matches_row_encoding() {
        let group = vec![Value::Int(7), Value::Str("g".into())];
        let row_bytes = encode_view_row(&group, 3, &[Value::Int(10), Value::Float(0.5)]).unwrap();
        let off = agg_region_offset(&group);
        let (count, aggs) = decode_agg_region(&row_bytes[off..], 2).unwrap();
        assert_eq!(count, 3);
        assert_eq!(aggs, vec![Value::Int(10), Value::Float(0.5)]);
        assert_eq!(row_bytes.len() - off, agg_region_len(2));
    }

    #[test]
    fn additive_apply_and_inverse_cancel() {
        let v = sum_view();
        let region = encode_agg_region(2, &[Value::Int(100), Value::Float(1.5)]);
        let delta = RowDelta {
            group: vec![Value::Int(1)],
            count: 1,
            aggs: vec![ValueDelta::Int(40), ValueDelta::Float(0.25)],
        };
        let after = apply_additive(&region, &v, &delta).unwrap();
        let (c, a) = decode_agg_region(&after, 2).unwrap();
        assert_eq!(c, 3);
        assert_eq!(a, vec![Value::Int(140), Value::Float(1.75)]);
        // Undo via the logged pairs restores exactly.
        let restored = apply_undo_pairs(&after, 2, &delta.to_undo_pairs()).unwrap();
        assert_eq!(restored, region);
    }

    #[test]
    fn additive_apply_preserves_length_always() {
        let v = sum_view();
        let region = encode_agg_region(0, &[Value::Int(0), Value::Float(0.0)]);
        let delta = RowDelta {
            group: vec![Value::Int(1)],
            count: -5,
            aggs: vec![ValueDelta::Int(i64::MIN / 2), ValueDelta::Float(-1e300)],
        };
        let after = apply_additive(&region, &v, &delta).unwrap();
        assert_eq!(after.len(), region.len());
    }

    #[test]
    fn count_overflow_checked() {
        let v = sum_view();
        let region = encode_agg_region(i64::MAX, &[Value::Int(0), Value::Float(0.0)]);
        let delta = RowDelta {
            group: vec![],
            count: 1,
            aggs: vec![ValueDelta::Int(0), ValueDelta::Float(0.0)],
        };
        assert!(apply_additive(&region, &v, &delta).is_err());
    }

    #[test]
    fn min_max_merge_on_insert() {
        let v = view(vec![AggSpec::Min { col: 2 }, AggSpec::Max { col: 2 }]);
        let region = encode_agg_region(1, &[Value::Int(50), Value::Int(50)]);
        let d = |x: i64| RowDelta {
            group: vec![],
            count: 1,
            aggs: vec![ValueDelta::Int(x), ValueDelta::Int(x)],
        };
        let after = apply_insert_merge(&region, &v, &d(30)).unwrap();
        let (_, a) = decode_agg_region(&after, 2).unwrap();
        assert_eq!(a, vec![Value::Int(30), Value::Int(50)]);
        let after = apply_insert_merge(&after, &v, &d(90)).unwrap();
        let (c, a) = decode_agg_region(&after, 2).unwrap();
        assert_eq!(c, 3);
        assert_eq!(a, vec![Value::Int(30), Value::Int(90)]);
    }

    #[test]
    fn min_max_rejected_on_additive_path() {
        let v = view(vec![AggSpec::Min { col: 2 }]);
        let region = encode_agg_region(1, &[Value::Int(5)]);
        let delta = RowDelta { group: vec![], count: 1, aggs: vec![ValueDelta::Int(1)] };
        assert!(apply_additive(&region, &v, &delta).is_err());
    }

    #[test]
    fn initial_aggs_for_new_group() {
        let v = sum_view();
        let delta = RowDelta {
            group: vec![Value::Int(1)],
            count: 1,
            aggs: vec![ValueDelta::Int(7), ValueDelta::Float(2.5)],
        };
        assert_eq!(
            initial_aggs(&v, &delta).unwrap(),
            vec![Value::Int(7), Value::Float(2.5)]
        );
    }

    #[test]
    fn initial_aggs_rejects_float_into_sum_int() {
        // Regression: this used to truncate 2.5 → 2 with `as i64`.
        let v = sum_view();
        let delta = RowDelta {
            group: vec![Value::Int(1)],
            count: 1,
            aggs: vec![ValueDelta::Float(2.5), ValueDelta::Float(0.0)],
        };
        match initial_aggs(&v, &delta) {
            Err(Error::TypeMismatch { got, .. }) => assert!(got.contains("2.5")),
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn initial_aggs_rejects_int_into_sum_float() {
        let v = sum_view();
        let delta = RowDelta {
            group: vec![Value::Int(1)],
            count: 1,
            aggs: vec![ValueDelta::Int(7), ValueDelta::Int(3)],
        };
        assert!(matches!(initial_aggs(&v, &delta), Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn additive_apply_rejects_mistyped_deltas() {
        let v = sum_view();
        let region = encode_agg_region(1, &[Value::Int(10), Value::Float(1.0)]);
        // Float delta on the SUM(int) column.
        let d1 = RowDelta {
            group: vec![],
            count: 1,
            aggs: vec![ValueDelta::Float(0.5), ValueDelta::Float(0.0)],
        };
        assert!(matches!(apply_additive(&region, &v, &d1), Err(Error::TypeMismatch { .. })));
        // Int delta on the SUM(float) column.
        let d2 = RowDelta {
            group: vec![],
            count: 1,
            aggs: vec![ValueDelta::Int(1), ValueDelta::Int(1)],
        };
        assert!(matches!(apply_additive(&region, &v, &d2), Err(Error::TypeMismatch { .. })));
        // The region is untouched semantics: a well-typed delta still works.
        let ok = RowDelta {
            group: vec![],
            count: 1,
            aggs: vec![ValueDelta::Int(1), ValueDelta::Float(0.5)],
        };
        assert!(apply_additive(&region, &v, &ok).is_ok());
    }

    #[test]
    fn forward_and_undo_pairs_reject_mistyped_deltas() {
        let region = encode_agg_region(1, &[Value::Int(10)]);
        // Position 1 holds an Int aggregate; a Float pair must not coerce it.
        let bad = vec![(1u16, ValueDelta::Float(0.5))];
        assert!(matches!(
            apply_forward_pairs(&region, 1, &bad),
            Err(Error::TypeMismatch { .. })
        ));
        assert!(matches!(
            apply_undo_pairs(&region, 1, &bad),
            Err(Error::TypeMismatch { .. })
        ));
        // Float on COUNT_BIG stays rejected (pre-existing guard).
        let bad_count = vec![(0u16, ValueDelta::Float(1.0))];
        assert!(apply_forward_pairs(&region, 1, &bad_count).is_err());
        assert!(apply_undo_pairs(&region, 1, &bad_count).is_err());
        // Int pair on a Float aggregate rejected symmetrically.
        let fregion = encode_agg_region(1, &[Value::Float(1.5)]);
        let bad_f = vec![(1u16, ValueDelta::Int(2))];
        assert!(matches!(
            apply_forward_pairs(&fregion, 1, &bad_f),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn insert_merge_rejects_mistyped_sum_delta() {
        let v = sum_view();
        let region = encode_agg_region(1, &[Value::Int(10), Value::Float(1.0)]);
        let bad = RowDelta {
            group: vec![],
            count: 1,
            aggs: vec![ValueDelta::Float(0.5), ValueDelta::Float(0.5)],
        };
        assert!(matches!(
            apply_insert_merge(&region, &v, &bad),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn avg_is_additive_everywhere() {
        // AVG stores its SUM: zero/initial/additive all behave like a sum.
        let v = view(vec![AggSpec::Avg { col: 2, float: false }, AggSpec::Avg { col: 3, float: true }]);
        assert_eq!(zero_aggs(&v), vec![Value::Int(0), Value::Float(0.0)]);
        let delta = RowDelta {
            group: vec![Value::Int(1)],
            count: 1,
            aggs: vec![ValueDelta::Int(8), ValueDelta::Float(0.5)],
        };
        assert_eq!(initial_aggs(&v, &delta).unwrap(), vec![Value::Int(8), Value::Float(0.5)]);
        let region = encode_agg_region(2, &[Value::Int(10), Value::Float(1.0)]);
        let after = apply_additive(&region, &v, &delta).unwrap();
        let (c, a) = decode_agg_region(&after, 2).unwrap();
        assert_eq!(c, 3);
        assert_eq!(a, vec![Value::Int(18), Value::Float(1.5)]);
        // Mistyped deltas stay hard errors.
        let bad = RowDelta {
            group: vec![],
            count: 1,
            aggs: vec![ValueDelta::Float(0.5), ValueDelta::Float(0.5)],
        };
        assert!(matches!(initial_aggs(&v, &bad), Err(Error::TypeMismatch { .. })));
        assert!(matches!(apply_additive(&region, &v, &bad), Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn delete_retirement_classification() {
        let v = view(vec![AggSpec::Min { col: 2 }, AggSpec::Max { col: 2 }]);
        let region = encode_agg_region(3, &[Value::Int(10), Value::Int(90)]);
        let del = |x: i64| RowDelta {
            group: vec![],
            count: -1,
            aggs: vec![ValueDelta::Int(x), ValueDelta::Int(x)],
        };
        // Strictly inside both extrema: cheap.
        assert!(!delete_retires_extremum(&region, &v, &del(50)).unwrap());
        // Equal to the stored min / max: must recompute.
        assert!(delete_retires_extremum(&region, &v, &del(10)).unwrap());
        assert!(delete_retires_extremum(&region, &v, &del(90)).unwrap());
        // Emptying the group never retires (ghosted row, extrema unread).
        let region1 = encode_agg_region(1, &[Value::Int(10), Value::Int(10)]);
        assert!(!delete_retires_extremum(&region1, &v, &del(10)).unwrap());
    }

    #[test]
    fn non_extremal_delete_keeps_extrema_and_sums_sums() {
        let v = view(vec![AggSpec::Min { col: 2 }, AggSpec::SumInt { col: 2 }]);
        let region = encode_agg_region(3, &[Value::Int(10), Value::Int(150)]);
        let delta = RowDelta {
            group: vec![],
            count: -1,
            aggs: vec![ValueDelta::Int(50), ValueDelta::Int(-50)],
        };
        assert!(!delete_retires_extremum(&region, &v, &delta).unwrap());
        let after = apply_delete_keep_extrema(&region, &v, &delta).unwrap();
        let (c, a) = decode_agg_region(&after, 2).unwrap();
        assert_eq!(c, 2);
        assert_eq!(a, vec![Value::Int(10), Value::Int(100)]);
    }

    #[test]
    fn undo_pairs_layout() {
        let delta = RowDelta {
            group: vec![],
            count: -1,
            aggs: vec![ValueDelta::Int(-7)],
        };
        assert_eq!(
            delta.to_undo_pairs(),
            vec![(0, ValueDelta::Int(-1)), (1, ValueDelta::Int(-7))]
        );
    }

    #[test]
    fn bad_region_rejected() {
        assert!(decode_agg_region(&[0u8; 5], 1).is_err());
        let region = encode_agg_region(1, &[Value::Int(1)]);
        assert!(decode_agg_region(&region, 2).is_err());
    }
}
