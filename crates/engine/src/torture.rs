//! Crash-torture harness: deterministic fault-injection episodes with a
//! recovery oracle.
//!
//! One **episode** builds a database over a [`FaultDisk`] + [`FaultLogStore`]
//! sharing a [`FaultClock`], runs a mixed committed/uncommitted workload
//! (a ledger-audited bank plus group-churn, in either escrow or X-lock
//! maintenance mode), lets the armed fault schedule crash it at a chosen
//! event, reboots onto the frozen durable image through ARIES recovery,
//! and interrogates the **oracle**:
//!
//! * every indexed view equals recomputation from its base table;
//! * every *acknowledged* commit (commit returned before the crash fired)
//!   survives — checked against a ledger table that records each transfer;
//! * account balances equal the initial load plus a replay of the durable
//!   ledger (so no transaction is ever half-applied, and no loser's delta
//!   survives);
//! * recovery is idempotent — a second crash+recovery applies zero redo
//!   and finds zero losers;
//! * leftover ghosts are cleanable, and cleanup preserves all of the above.
//!
//! A **sweep** measures the fault-free event horizon of the workload, then
//! replays the identical episode once per crash point. Everything is a pure
//! function of the seed: the same seed yields the same schedule, the same
//! crash points, and the same pass/fail outcome.

use crate::catalog::{AggSpec, MaintenanceMode, Predicate, ViewSource, ViewSpec};
use crate::db::{Database, GhostCleanupReport, ResilienceStats};
use crate::health::HealthState;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use txview_common::retry::RetryPolicy;
use txview_common::rng::Rng;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{row, Error, Result, Row, Value};
use txview_storage::fault::{
    FaultClock, FaultDisk, FaultPoint, FaultSchedule, FaultStatsSnapshot,
};
use txview_txn::IsolationLevel;
use txview_wal::recovery::RecoveryReport;
use txview_wal::FaultLogStore;

/// Bank view name (mirrors the workload crate's bank).
pub const BANK_VIEW: &str = "branch_balance";
/// Churn view name.
pub const CHURN_VIEW: &str = "group_totals";
/// Terminal view of the derived chain (global rollup over the bank view).
pub const CHAIN_TOTAL_VIEW: &str = "bank_total";
/// MIN/MAX/AVG stats view over the `readings` table (only built when
/// [`TortureConfig::minmax`] is set).
pub const MINMAX_VIEW: &str = "reading_stats";

/// Names of the derived chain views, shallowest first: `chain_depth - 1`
/// identity levels over [`BANK_VIEW`], then the global [`CHAIN_TOTAL_VIEW`].
pub fn chain_view_names(chain_depth: usize) -> Vec<String> {
    (1..=chain_depth)
        .map(|d| {
            if d == chain_depth {
                CHAIN_TOTAL_VIEW.to_string()
            } else {
                format!("bank_chain_{d}")
            }
        })
        .collect()
}

/// Torture workload parameters. Defaults are sized so one episode runs in
/// milliseconds while still exercising splits, ghosts, and evictions.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// Bank accounts (ids 0..accounts).
    pub accounts: i64,
    /// Branches (= bank view rows = escrow contention points).
    pub branches: i64,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// Single-row churn groups (ids 0..groups; even ones pre-populated).
    pub churn_groups: i64,
    /// Transactions attempted by the workload.
    pub txns: usize,
    /// View maintenance protocol under test.
    pub mode: MaintenanceMode,
    /// Buffer-pool pages (small, to force evictions through the
    /// WAL-before-data window).
    pub pool_pages: usize,
    /// Workload RNG seed; with the schedule, fully determines an episode.
    pub seed: u64,
    /// Route commits through the leader-based group-commit pipeline.
    pub pipeline: bool,
    /// With the pipeline: release escrow locks at log-append time (early
    /// lock release), tracked by commit dependencies.
    pub elr: bool,
    /// Depth of the derived-view chain over the bank view (0 = none):
    /// `chain_depth - 1` identity levels, then a global rollup whose single
    /// row must always equal `accounts × initial_balance` (transfers
    /// conserve money) — the conservation invariant the chain oracle pins.
    pub chain_depth: usize,
    /// Build the MIN/MAX/AVG stats view over a `readings` table, attach
    /// hash point-read indexes to it and to [`CHURN_VIEW`], and mix
    /// extremum-deleting churn into the workload. Off by default so
    /// existing horizons and pinned schedules stay byte-identical.
    pub minmax: bool,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            accounts: 32,
            branches: 4,
            initial_balance: 100,
            churn_groups: 8,
            txns: 36,
            mode: MaintenanceMode::Escrow,
            pool_pages: 64,
            seed: 1,
            pipeline: false,
            elr: false,
            chain_depth: 0,
            minmax: false,
        }
    }
}

/// What one episode's workload acknowledged before the crash.
#[derive(Clone, Debug, Default)]
pub struct WorkloadTrace {
    /// Transactions attempted.
    pub attempted: usize,
    /// Transfers `(seq, from, to, amount)` whose commit returned *before*
    /// the crash fired — the durability contract covers exactly these.
    pub acked_transfers: Vec<(i64, i64, i64, i64)>,
    /// Commits acknowledged in total (transfers + churn).
    pub acked_commits: usize,
    /// Operations that failed at runtime (injected transient faults,
    /// duplicate-key races) and were rolled back.
    pub rolled_back: usize,
    /// Transactions abandoned in-flight (rollback itself failed); crash
    /// recovery must undo these as losers.
    pub abandoned: usize,
}

/// Outcome of one crash episode.
#[derive(Clone, Debug)]
pub struct EpisodeReport {
    /// The schedule the episode ran under.
    pub schedule: FaultSchedule,
    /// Clock counters at the end of the episode.
    pub fault_stats: FaultStatsSnapshot,
    /// Absolute event the crash fired at (None = schedule never fired).
    pub crash_event: Option<u64>,
    /// What the workload observed.
    pub trace: WorkloadTrace,
    /// First (real) recovery.
    pub recovery: RecoveryReport,
    /// Second recovery (idempotence check).
    pub second_recovery: RecoveryReport,
    /// Ghost-cleanup sweep after recovery.
    pub ghost_cleanup: GhostCleanupReport,
    /// Oracle violations; empty = the episode passed.
    pub violations: Vec<String>,
}

/// Outcome of a crash-point sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Fault-free event horizon of the workload window.
    pub horizon: u64,
    /// Episodes run.
    pub episodes: usize,
    /// Distinct absolute crash events exercised.
    pub crash_events: Vec<u64>,
    /// All violations, tagged with the crash offset that produced them.
    pub violations: Vec<(u64, String)>,
    /// Total acknowledged commits across episodes.
    pub acked_commits: usize,
    /// Total transactions recovery undid across episodes.
    pub losers_undone: u64,
}

pub(crate) struct Parts {
    pub(crate) clock: Arc<FaultClock>,
    pub(crate) disk: FaultDisk,
    pub(crate) store: FaultLogStore,
}

pub(crate) fn install_probes(db: &Database, clock: &Arc<FaultClock>) {
    let c = Arc::clone(clock);
    db.pool().set_crash_probe(Arc::new(move |p| {
        c.tick(FaultPoint::Probe(p));
    }));
    let c = Arc::clone(clock);
    db.log().set_crash_probe(Arc::new(move |p| {
        c.tick(FaultPoint::Probe(p));
    }));
}

/// Build the fault-injected database and load the initial state: bank
/// accounts, pre-populated even churn groups, an empty ledger, and a
/// checkpoint so every episode starts from the same durable image.
pub(crate) fn build(cfg: &TortureConfig) -> Result<(Arc<Database>, Parts)> {
    let clock = FaultClock::new();
    let disk = FaultDisk::new(Arc::clone(&clock));
    let store = FaultLogStore::new(Arc::clone(&clock));
    let db = Database::with_parts(
        Arc::new(disk.clone()),
        Box::new(store.clone()),
        cfg.pool_pages,
        Duration::from_secs(2),
    )?;
    install_probes(&db, &clock);
    // Metrics run on the fault clock's event counter: recorded "durations"
    // are event-count deltas, so identically-seeded episodes produce
    // identical snapshots. Wired before any DDL/load so no sample ever
    // comes from wall time.
    db.set_metrics_ticks(clock.events_handle());
    if cfg.pipeline {
        db.enable_commit_pipeline(cfg.elr);
    }

    let accounts = db.create_table(
        "accounts",
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("branch", ValueType::Int),
                Column::new("balance", ValueType::Int),
            ],
            vec![0],
        )?,
    )?;
    db.create_indexed_view(ViewSpec {
        name: BANK_VIEW.into(),
        source: ViewSource::Single { table: accounts, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: cfg.mode,
        deferred: false,
        eager_group_delete: false,
    })?;
    // Derived chain over the bank view. The bank view's stored layout is
    // `[branch | COUNT_BIG | SUM(balance)]`, so group_by [0] + SumInt on
    // column 2 is an identity level; the terminal level rolls everything
    // into one global row.
    let names = chain_view_names(cfg.chain_depth);
    let mut chain_parent = BANK_VIEW.to_string();
    for (i, name) in names.iter().enumerate() {
        let last = i + 1 == names.len();
        let group_by = if last { vec![] } else { vec![0] };
        db.create_derived_view(
            name,
            &chain_parent,
            group_by,
            vec![AggSpec::SumInt { col: 2 }],
            cfg.mode,
        )?;
        chain_parent = name.clone();
    }
    let items = db.create_table(
        "items",
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("grp", ValueType::Int),
                Column::new("val", ValueType::Int),
            ],
            vec![0],
        )?,
    )?;
    db.create_indexed_view(ViewSpec {
        name: CHURN_VIEW.into(),
        source: ViewSource::Single { table: items, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: cfg.mode,
        deferred: false,
        eager_group_delete: false,
    })?;
    if cfg.minmax {
        let readings = db.create_table(
            "readings",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("grp", ValueType::Int),
                    Column::new("val", ValueType::Int),
                ],
                vec![0],
            )?,
        )?;
        // MIN/MAX force X-lock maintenance regardless of cfg.mode; AVG and
        // SUM ride along so one row exercises every aggregate kind at once.
        db.create_indexed_view(ViewSpec {
            name: MINMAX_VIEW.into(),
            source: ViewSource::Single { table: readings, group_by: vec![1] },
            aggs: vec![
                AggSpec::SumInt { col: 2 },
                AggSpec::Min { col: 2 },
                AggSpec::Max { col: 2 },
                AggSpec::Avg { col: 2, float: false },
            ],
            filter: Predicate::True,
            maintenance: MaintenanceMode::XLock,
            deferred: false,
            eager_group_delete: false,
        })?;
        // Hash point-read mirrors: one over the X-lock stats view (put/
        // remove mirrors) and one over the escrow churn view (patch_region
        // mirrors), so both mirror flavors sit under the crash schedule.
        db.create_hash_index(MINMAX_VIEW)?;
        db.create_hash_index(CHURN_VIEW)?;
    }
    db.create_table(
        "ledger",
        Schema::new(
            vec![
                Column::new("seq", ValueType::Int),
                Column::new("src", ValueType::Int),
                Column::new("dst", ValueType::Int),
                Column::new("amount", ValueType::Int),
            ],
            vec![0],
        )?,
    )?;

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for i in 0..cfg.accounts {
        db.insert(&mut txn, "accounts", row![i, i % cfg.branches, cfg.initial_balance])?;
    }
    for g in (0..cfg.churn_groups).step_by(2) {
        db.insert(&mut txn, "items", row![g, g, 7i64])?;
    }
    if cfg.minmax {
        // Three distinct values per group so the workload's extremal
        // deletes have a real MIN/MAX to retire from the very first txn.
        for g in 0..4i64 {
            for k in 0..3i64 {
                db.insert(&mut txn, "readings", row![g * 3 + k, g, 10 * (k + 1)])?;
            }
        }
    }
    db.commit(&mut txn)?;
    db.checkpoint()?;
    Ok((db, Parts { clock, disk, store }))
}

pub(crate) fn add_int(r: &Row, col: usize, d: i64) -> Row {
    let mut out = r.clone();
    let v = r.get(col).as_int().expect("INT column");
    out.set(col, Value::Int(v + d));
    out
}

pub(crate) fn do_transfer(
    db: &Database,
    txn: &mut txview_txn::Transaction,
    seq: i64,
    from: i64,
    to: i64,
    amount: i64,
) -> Result<()> {
    db.insert(txn, "ledger", row![seq, from, to, amount])?;
    db.update_with(txn, "accounts", &[Value::Int(from)], |r| add_int(r, 2, -amount))?;
    db.update_with(txn, "accounts", &[Value::Int(to)], |r| add_int(r, 2, amount))?;
    Ok(())
}

pub(crate) fn do_toggle(db: &Database, txn: &mut txview_txn::Transaction, g: i64) -> Result<()> {
    let pk = [Value::Int(g)];
    match db.delete(txn, "items", &pk) {
        Ok(()) => Ok(()),
        Err(Error::NotFound(_)) => match db.insert(txn, "items", row![g, g, 7i64]) {
            Ok(()) => Ok(()),
            Err(Error::DuplicateKey(_)) => db.delete(txn, "items", &pk),
            Err(e) => Err(e),
        },
        Err(e) => Err(e),
    }
}

/// One reading op for the MIN/MAX workload: mostly inserts with random
/// values, plus deletes that alternate between the tracked extremum (the
/// stored MAX — forces the recompute-from-base fallback under its X lock)
/// and an arbitrary victim (the cheap keep-extrema path). `live` is the
/// workload's optimistic shadow of surviving rows; rollbacks desync it, so
/// deletes tolerate `NotFound` exactly like [`do_toggle`] does.
pub(crate) fn do_reading(
    db: &Database,
    txn: &mut txview_txn::Transaction,
    live: &mut Vec<(i64, i64)>,
    next_id: &mut i64,
    rng: &mut Rng,
) -> Result<()> {
    if live.is_empty() || rng.below(5) < 3 {
        let id = *next_id;
        *next_id += 1;
        let val = rng.range_inclusive(1, 99);
        db.insert(txn, "readings", row![id, id % 4, val])?;
        live.push((id, val));
        return Ok(());
    }
    let idx = if rng.below(2) == 0 {
        let mut best = 0usize;
        for (i, &(_, v)) in live.iter().enumerate() {
            if v > live[best].1 {
                best = i;
            }
        }
        best
    } else {
        rng.below(live.len() as u64) as usize
    };
    let (id, _) = live.remove(idx);
    match db.delete(txn, "readings", &[Value::Int(id)]) {
        Ok(()) | Err(Error::NotFound(_)) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Run the deterministic single-threaded workload: two transfer
/// transactions, then one churn transaction, repeating. Injected faults
/// surface as errors → rollback; commits acknowledged while the clock has
/// not fired are recorded as the durability contract.
pub(crate) fn run_workload(db: &Database, cfg: &TortureConfig, clock: &FaultClock) -> WorkloadTrace {
    let mut rng = Rng::new(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut trace = WorkloadTrace::default();
    let mut seq = 0i64;
    // Shadow of the readings rows seeded by `build` (ids g*3+k, vals
    // 10/20/30 per group); only consulted when cfg.minmax is set.
    let mut next_reading = 12i64;
    let mut live_readings: Vec<(i64, i64)> = (0..4i64)
        .flat_map(|g| (0..3i64).map(move |k| (g * 3 + k, 10 * (k + 1))))
        .collect();
    for t in 0..cfg.txns {
        trace.attempted += 1;
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        let transfer = if t % 3 == 2 {
            None
        } else {
            let from = rng.below(cfg.accounts as u64) as i64;
            let mut to = rng.below(cfg.accounts as u64) as i64;
            if to == from {
                to = (to + 1) % cfg.accounts;
            }
            seq += 1;
            Some((seq, from, to, rng.range_inclusive(1, 9)))
        };
        let body = match transfer {
            Some((s, from, to, amount)) => do_transfer(db, &mut txn, s, from, to, amount),
            None => {
                let a = rng.below(cfg.churn_groups as u64) as i64;
                let b = rng.below(cfg.churn_groups as u64) as i64;
                do_toggle(db, &mut txn, a).and_then(|()| {
                    if b != a {
                        do_toggle(db, &mut txn, b)
                    } else {
                        Ok(())
                    }
                })
            }
        };
        // With minmax on, every transaction also touches the stats view, so
        // extremum recomputes and hash-bucket writes interleave with the
        // bank/churn traffic under the same crash schedule.
        let body = body.and_then(|()| {
            if cfg.minmax {
                do_reading(db, &mut txn, &mut live_readings, &mut next_reading, &mut rng)
            } else {
                Ok(())
            }
        });
        // Every few transactions, force the in-flight records durable (as
        // a page steal would) so a crash in the window before the commit
        // record lands leaves a *loser with durable work* — the case that
        // actually exercises recovery's undo pass. A third of those then
        // roll back at runtime, putting CLRs into the durable log too.
        let body = body.and_then(|()| {
            if t % 4 == 1 {
                db.log().flush_all()?;
            }
            Ok(())
        });
        if body.is_ok() && t % 12 == 5 {
            if db.rollback(&mut txn).is_ok() {
                trace.rolled_back += 1;
            } else {
                trace.abandoned += 1;
                std::mem::forget(txn);
            }
            continue;
        }
        match body.and_then(|()| db.commit(&mut txn).map(|_| ())) {
            Ok(()) => {
                if !clock.fired() {
                    trace.acked_commits += 1;
                    if let Some(tr) = transfer {
                        trace.acked_transfers.push(tr);
                    }
                }
            }
            Err(_) => {
                if txn.is_active() && db.rollback(&mut txn).is_ok() {
                    trace.rolled_back += 1;
                } else {
                    // Leave it in-flight: recovery must undo it.
                    trace.abandoned += 1;
                    std::mem::forget(txn);
                }
            }
        }
    }
    trace
}

/// Interrogate the oracle on a recovered database; push violations.
pub(crate) fn check_oracle(
    db: &Database,
    cfg: &TortureConfig,
    trace: &WorkloadTrace,
    stage: &str,
    violations: &mut Vec<String>,
) {
    let mut views = vec![BANK_VIEW, CHURN_VIEW];
    if cfg.minmax {
        // verify_view also audits any attached hash index byte-for-byte
        // against the B-tree, so this one call covers MIN/MAX recompute
        // correctness AND hash/tree coherence after recovery.
        views.push(MINMAX_VIEW);
    }
    for view in views {
        if let Err(e) = db.verify_view(view) {
            violations.push(format!("[{stage}] view '{view}' != recomputation from base: {e}"));
        }
    }
    // Chain oracle: each level must equal both the transitive recomputation
    // from base AND the one-step fold of its immediate parent's stored
    // rows, and the terminal global row must conserve total money.
    for view in chain_view_names(cfg.chain_depth) {
        if let Err(e) = db.verify_view(&view) {
            violations.push(format!(
                "[{stage}] chain view '{view}' != transitive recomputation: {e}"
            ));
        }
        if let Err(e) = db.verify_view_from_parent(&view) {
            violations.push(format!(
                "[{stage}] chain view '{view}' != fold of immediate parent: {e}"
            ));
        }
    }
    if cfg.chain_depth > 0 {
        match db.dump_view(CHAIN_TOTAL_VIEW) {
            Ok(rows) => {
                let total: i64 =
                    rows.iter().map(|r| r.get(2).as_int().unwrap_or(i64::MIN)).sum();
                let want = cfg.accounts * cfg.initial_balance;
                if rows.len() != 1 || total != want {
                    violations.push(format!(
                        "[{stage}] conservation: '{CHAIN_TOTAL_VIEW}' has {} rows totalling \
                         {total}, expected 1 row totalling {want}",
                        rows.len()
                    ));
                }
            }
            Err(e) => violations.push(format!("[{stage}] '{CHAIN_TOTAL_VIEW}' unreadable: {e}")),
        }
    }
    let ledger = match db.dump_table("ledger") {
        Ok(rows) => rows,
        Err(e) => {
            violations.push(format!("[{stage}] ledger unreadable: {e}"));
            return;
        }
    };
    let mut durable_seqs = HashSet::new();
    let mut expected = vec![cfg.initial_balance; cfg.accounts as usize];
    for r in &ledger {
        let (seq, from, to, amount) = (
            r.get(0).as_int().unwrap_or(-1),
            r.get(1).as_int().unwrap_or(0),
            r.get(2).as_int().unwrap_or(0),
            r.get(3).as_int().unwrap_or(0),
        );
        durable_seqs.insert(seq);
        expected[from as usize] -= amount;
        expected[to as usize] += amount;
    }
    for &(seq, ..) in &trace.acked_transfers {
        if !durable_seqs.contains(&seq) {
            violations.push(format!(
                "[{stage}] durability: acked transfer #{seq} missing from ledger"
            ));
        }
    }
    match db.dump_table("accounts") {
        Ok(rows) => {
            if rows.len() != cfg.accounts as usize {
                violations.push(format!(
                    "[{stage}] accounts table has {} rows, expected {}",
                    rows.len(),
                    cfg.accounts
                ));
            }
            for r in &rows {
                let id = r.get(0).as_int().unwrap_or(-1);
                let bal = r.get(2).as_int().unwrap_or(i64::MIN);
                if id < 0 || id >= cfg.accounts || bal != expected[id as usize] {
                    violations.push(format!(
                        "[{stage}] atomicity: account {id} balance {bal} != ledger replay {}",
                        expected.get(id.max(0) as usize).copied().unwrap_or(i64::MIN)
                    ));
                }
            }
        }
        Err(e) => violations.push(format!("[{stage}] accounts unreadable: {e}")),
    }
}

/// ELR durable-ordering oracle: a transaction that read a predecessor's
/// not-yet-durable escrow value (a recorded dependency edge) may itself be
/// cleanly durable-committed only if that predecessor is too. "Cleanly
/// committed" = a Commit record in the durable log and no Abort — a failed
/// group flush can leave a retracted Commit record behind, and a dependent
/// acked on top of it would be durability out of order.
fn check_elr_ordering(
    db: &Database,
    edges: &[(txview_common::TxnId, txview_common::TxnId, txview_common::Lsn)],
    violations: &mut Vec<String>,
) {
    if edges.is_empty() {
        return;
    }
    let records = match db.log().read_durable_from(0) {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!("[elr] durable log unreadable: {e}"));
            return;
        }
    };
    let mut committed = HashSet::new();
    let mut aborted = HashSet::new();
    for (_, rec) in &records {
        match rec.body {
            txview_wal::RecordBody::Commit => {
                committed.insert(rec.txn);
            }
            txview_wal::RecordBody::Abort => {
                aborted.insert(rec.txn);
            }
            _ => {}
        }
    }
    let clean = |t: &txview_common::TxnId| committed.contains(t) && !aborted.contains(t);
    for (dependent, pred, lsn) in edges {
        if clean(dependent) && !clean(pred) {
            violations.push(format!(
                "[elr] durability out of order: {dependent:?} committed durably but its \
                 escrow predecessor {pred:?} (commit {lsn:?}) did not"
            ));
        }
    }
}

/// Run one crash episode under `schedule` and interrogate the oracle.
pub fn run_episode(cfg: &TortureConfig, schedule: &FaultSchedule) -> Result<EpisodeReport> {
    let (db, parts) = build(cfg)?;
    let catalog = db.export_catalog();
    parts.clock.arm(schedule);
    let trace = run_workload(&db, cfg, &parts.clock);
    let fault_stats = parts.clock.stats();
    let elr_edges = db.dep_edges();
    drop(db);

    // Reboot: fall back to what actually reached stable storage.
    parts.disk.crash_restore();
    parts.store.crash_restore();
    parts.clock.disarm();
    let (db, recovery) = Database::with_parts_recovered(
        Arc::new(parts.disk.clone()),
        Box::new(parts.store.clone()),
        Some(&catalog),
        cfg.pool_pages,
        Duration::from_secs(2),
    )?;

    let mut violations = Vec::new();
    check_oracle(&db, cfg, &trace, "recovered", &mut violations);
    check_elr_ordering(&db, &elr_edges, &mut violations);

    // Idempotence: crash again immediately (full steal so every page is
    // durable) — redo must find nothing to do and undo no one.
    let second_recovery = db.crash_and_recover(1.0, cfg.seed)?;
    if second_recovery.redo_applied != 0 {
        violations.push(format!(
            "[second] redo not idempotent: {} records re-applied",
            second_recovery.redo_applied
        ));
    }
    if second_recovery.losers != 0 {
        violations.push(format!(
            "[second] first undo pass did not stick: {} losers remained",
            second_recovery.losers
        ));
    }
    check_oracle(&db, cfg, &trace, "second", &mut violations);

    // Leftover ghosts (from undone inserts / churn deletes) are cleanable.
    let ghost_cleanup = db.run_ghost_cleanup()?;
    check_oracle(&db, cfg, &trace, "post-cleanup", &mut violations);

    // The recovered database accepts new work.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let post = do_transfer(&db, &mut txn, i64::MAX, 0, cfg.accounts - 1, 1)
        .and_then(|()| db.commit(&mut txn).map(|_| ()));
    match post {
        Ok(()) => {
            if let Err(e) = db.verify_view(BANK_VIEW) {
                violations.push(format!("[post-write] view diverged: {e}"));
            }
        }
        Err(e) => violations.push(format!("[post-write] recovered db rejected work: {e}")),
    }

    Ok(EpisodeReport {
        schedule: schedule.clone(),
        crash_event: fault_stats.crash_event,
        fault_stats,
        trace,
        recovery,
        second_recovery,
        ghost_cleanup,
        violations,
    })
}

/// Count the events the workload window spans when no fault fires — the
/// sweepable crash-point horizon.
pub fn measure_horizon(cfg: &TortureConfig) -> Result<u64> {
    let (db, parts) = build(cfg)?;
    let before = parts.clock.events();
    let _ = run_workload(&db, cfg, &parts.clock);
    Ok(parts.clock.events() - before)
}

/// Sweep crash points over the workload window: up to `max_points`
/// episodes, evenly strided across the fault-free horizon, each crashing
/// at a distinct event and asserting the full oracle.
pub fn run_sweep(cfg: &TortureConfig, max_points: usize) -> Result<SweepReport> {
    let horizon = measure_horizon(cfg)?;
    let mut report = SweepReport { horizon, ..Default::default() };
    if horizon == 0 || max_points == 0 {
        return Ok(report);
    }
    let stride = (horizon as usize / max_points.min(horizon as usize)).max(1);
    let mut offset = 0u64;
    while offset < horizon && report.episodes < max_points {
        let ep = run_episode(cfg, &FaultSchedule::crash_at(offset))?;
        report.episodes += 1;
        report.acked_commits += ep.trace.acked_commits;
        report.losers_undone += ep.recovery.losers;
        match ep.crash_event {
            Some(ev) => report.crash_events.push(ev),
            None => report
                .violations
                .push((offset, "scheduled crash never fired inside the workload".into())),
        }
        for v in ep.violations {
            report.violations.push((offset, v));
        }
        offset += stride as u64;
    }
    report.crash_events.sort_unstable();
    report.crash_events.dedup();
    Ok(report)
}

// ---- pipeline-seam sweep -------------------------------------------------

/// The group-commit pipeline's crash seams: mid-batch (commit records
/// appended for some batch members but not all), post-append (the whole
/// batch handed to the store, nothing synced, followers not yet woken),
/// and pre-sync (the leader about to fsync — with ELR, escrow locks are
/// already released here).
pub const PIPELINE_PROBES: [&str; 3] = [
    "wal.pipeline.mid_batch",
    "wal.pipeline.post_append_pre_wake",
    "wal.pipeline.pre_leader_sync",
];

/// Replay the fault-free workload once, recording the relative event
/// offset of every occurrence of each named probe. Offsets are relative to
/// the post-build event count — the same base [`FaultClock::arm`] uses in
/// [`run_episode`] — so `crash_at(offset)` lands the crash exactly on that
/// probe tick.
pub(crate) fn measure_probe_offsets(
    cfg: &TortureConfig,
    names: &'static [&'static str],
) -> Result<Vec<(&'static str, u64)>> {
    let (db, parts) = build(cfg)?;
    let base = parts.clock.events();
    let hits: Arc<parking_lot::Mutex<Vec<(&'static str, u64)>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let c = Arc::clone(&parts.clock);
    let h = Arc::clone(&hits);
    // Replace the log's probe hook with one that still ticks the clock
    // identically but also records where the pipeline seams fall.
    db.log().set_crash_probe(Arc::new(move |p| {
        if names.contains(&p) {
            h.lock().push((p, c.events()));
        }
        c.tick(FaultPoint::Probe(p));
    }));
    let _ = run_workload(&db, cfg, &parts.clock);
    let out = hits.lock().iter().map(|&(n, abs)| (n, abs - base)).collect();
    Ok(out)
}

/// Outcome of a pipeline-seam sweep: one crash episode per sampled
/// occurrence of each pipeline probe.
#[derive(Clone, Debug, Default)]
pub struct ProbeSweepReport {
    /// Episodes run per probe name.
    pub per_probe: Vec<(&'static str, usize)>,
    /// Episodes run in total.
    pub episodes: usize,
    /// Violations, tagged with the crash offset that produced them.
    pub violations: Vec<(u64, String)>,
    /// Total acknowledged commits across episodes.
    pub acked_commits: usize,
}

/// Crash exactly at the pipeline's seams: sample up to `per_probe`
/// occurrences of each probe in [`PIPELINE_PROBES`], run one crash episode
/// per sampled offset, and assert the full oracle (including the ELR
/// durable-ordering check) on each. Requires `cfg.pipeline`; without it the
/// probes never fire and the sweep reports zero episodes.
pub fn run_pipeline_probe_sweep(
    cfg: &TortureConfig,
    per_probe: usize,
) -> Result<ProbeSweepReport> {
    run_probe_sweep(cfg, &PIPELINE_PROBES, per_probe)
}

/// The cascade flush's mid-chain crash seam: fires between DAG levels
/// inside one transaction's commit flush (needs `chain_depth >= 2`).
pub const CASCADE_PROBES: [&str; 1] = ["view.cascade.level"];

/// Crash exactly *between cascade levels*: sample up to `per_probe`
/// occurrences of [`CASCADE_PROBES`], run one crash episode per sampled
/// offset, and assert the full oracle — a crash between level *k* and
/// *k*+1 must either replay the whole chain as redo or undo it entirely,
/// never leave a half-propagated DAG.
pub fn run_cascade_probe_sweep(
    cfg: &TortureConfig,
    per_probe: usize,
) -> Result<ProbeSweepReport> {
    run_probe_sweep(cfg, &CASCADE_PROBES, per_probe)
}

/// The two seams this PR's maintenance paths open: the window between the
/// MIN/MAX recomputer's X-lock grant and the view-row rewrite, and every
/// redo-logged hash-bucket write (mirror inserts, escrow patches, removes).
pub const MINMAX_PROBES: [&str; 2] = ["view.minmax.recompute", "hash.bucket.write"];

/// Crash exactly inside the MIN/MAX recompute window and on hash-bucket
/// writes: sample up to `per_probe` occurrences of [`MINMAX_PROBES`], run
/// one crash episode per sampled offset, and assert the full oracle — the
/// recomputed extremum must land atomically with its group row, and the
/// hash index must replay to byte-equality with the B-tree. Requires
/// `cfg.minmax`; without it the probes never fire and the sweep reports
/// zero episodes.
pub fn run_minmax_probe_sweep(
    cfg: &TortureConfig,
    per_probe: usize,
) -> Result<ProbeSweepReport> {
    run_probe_sweep(cfg, &MINMAX_PROBES, per_probe)
}

fn run_probe_sweep(
    cfg: &TortureConfig,
    probes: &'static [&'static str],
    per_probe: usize,
) -> Result<ProbeSweepReport> {
    let offsets = measure_probe_offsets(cfg, probes)?;
    let mut report = ProbeSweepReport::default();
    for &name in probes {
        let occurrences: Vec<u64> =
            offsets.iter().filter(|(n, _)| *n == name).map(|&(_, o)| o).collect();
        let stride = (occurrences.len() / per_probe.max(1)).max(1);
        let mut ran = 0usize;
        for &offset in occurrences.iter().step_by(stride).take(per_probe) {
            let ep = run_episode(cfg, &FaultSchedule::crash_at(offset))?;
            report.episodes += 1;
            ran += 1;
            report.acked_commits += ep.trace.acked_commits;
            if ep.crash_event.is_none() {
                report
                    .violations
                    .push((offset, format!("crash scheduled at {name} never fired")));
            }
            for v in ep.violations {
                report.violations.push((offset, v));
            }
        }
        report.per_probe.push((name, ran));
    }
    Ok(report)
}

// ---- transient-storm mode ------------------------------------------------
//
// Storms are the *other* half of the resilience contract: where crash
// episodes prove recovery repairs what a fault destroyed, storm episodes
// prove the retry layers make transient faults **invisible** — same acks,
// same committed bytes, no degradation — because a storm's consecutive-run
// cap (≤ 3) sits strictly inside the retry budget (5 attempts per seam).

/// Outcome of one transient-storm episode (faults, no crash, no reboot).
#[derive(Clone, Debug)]
pub struct StormReport {
    /// The transient-only schedule the episode ran under.
    pub schedule: FaultSchedule,
    /// Clock counters at the end of the episode.
    pub fault_stats: FaultStatsSnapshot,
    /// What the workload observed under the storm.
    pub trace: WorkloadTrace,
    /// Resilience counters: retries absorbed, health transitions.
    pub resilience: ResilienceStats,
    /// Oracle violations; empty = the storm was fully absorbed.
    pub violations: Vec<String>,
}

/// Outcome of a storm sweep: many distinct transient-only schedules, each
/// checked for full absorption against one fault-free reference run.
#[derive(Clone, Debug, Default)]
pub struct StormSweepReport {
    /// Fault-free event horizon storms are scattered over.
    pub horizon: u64,
    /// Distinct storm schedules exercised (== episodes run).
    pub episodes: usize,
    /// Transient faults injected across all episodes.
    pub transient_faults: u64,
    /// I/O retries the resilience layer absorbed across all episodes.
    pub io_retries: u64,
    /// Commits acknowledged across all episodes.
    pub acked_commits: usize,
    /// Violations, tagged with the storm seed that produced them.
    pub violations: Vec<(u64, String)>,
}

/// Chain depth inferred from the catalog: how many of the views `build`
/// registers for a chained config actually exist in `db`. Lets fingerprints
/// taken without a config (replication followers, promoted leaders) cover
/// the chain automatically.
pub(crate) fn detect_chain_depth(db: &Database) -> usize {
    if db.view_depth(CHAIN_TOTAL_VIEW).is_err() {
        return 0;
    }
    let mut depth = 1;
    while db.view_depth(&format!("bank_chain_{depth}")).is_ok() {
        depth += 1;
    }
    depth
}

/// Byte-exact fingerprint of the committed state: every base-table row and
/// every visible view row (chain views included), length-framed, in key
/// order.
pub(crate) fn fingerprint(db: &Database) -> Result<Vec<u8>> {
    fingerprint_with_chain(db, detect_chain_depth(db))
}

/// [`fingerprint`] extended with the derived chain views of `chain_depth`.
pub(crate) fn fingerprint_with_chain(db: &Database, chain_depth: usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let frame = |out: &mut Vec<u8>, rows: Vec<Row>| {
        for r in rows {
            let b = r.to_bytes();
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(&b);
        }
    };
    for table in ["accounts", "items", "ledger"] {
        out.extend_from_slice(table.as_bytes());
        frame(&mut out, db.dump_table(table)?);
    }
    let mut views: Vec<String> = vec![BANK_VIEW.into(), CHURN_VIEW.into()];
    views.extend(chain_view_names(chain_depth));
    for view in &views {
        out.extend_from_slice(view.as_bytes());
        frame(&mut out, db.dump_view(view)?);
    }
    Ok(out)
}

/// The fault-free reference of a config: the trace and committed-state
/// fingerprint of the identical workload with no schedule armed.
pub(crate) fn reference_run(cfg: &TortureConfig) -> Result<(WorkloadTrace, Vec<u8>)> {
    let (db, parts) = build(cfg)?;
    let trace = run_workload(&db, cfg, &parts.clock);
    let fp = fingerprint_with_chain(&db, cfg.chain_depth)?;
    Ok((trace, fp))
}

/// Run one transient-storm episode and assert the absorption oracle:
/// zero lost acked commits, zero degradations, and a committed state
/// byte-identical to the fault-free run of the same seed.
pub fn run_storm_episode(cfg: &TortureConfig, schedule: &FaultSchedule) -> Result<StormReport> {
    let (ref_trace, ref_fp) = reference_run(cfg)?;
    storm_episode_with_reference(cfg, schedule, &ref_trace, &ref_fp)
}

fn storm_episode_with_reference(
    cfg: &TortureConfig,
    schedule: &FaultSchedule,
    ref_trace: &WorkloadTrace,
    ref_fp: &[u8],
) -> Result<StormReport> {
    if !schedule.is_transient_only() {
        return Err(Error::invalid("storm episodes take transient-only schedules"));
    }
    let (db, parts) = build(cfg)?;
    // No backoff sleeping inside episodes: determinism comes from the
    // event clock, and the sweep runs hundreds of these.
    db.set_io_retry_policy(RetryPolicy::no_delay(5));
    parts.clock.arm(schedule);
    let trace = run_workload(&db, cfg, &parts.clock);
    parts.clock.disarm();
    let fault_stats = parts.clock.stats();
    let resilience = db.resilience_stats();

    let mut violations = Vec::new();
    if fault_stats.crash_event.is_some() {
        violations.push("transient-only schedule fired a crash".into());
    }
    if resilience.health != HealthState::Healthy {
        violations.push(format!(
            "degraded under a transient-only storm: {:?} ({})",
            resilience.health,
            db.health().reason(),
        ));
    }
    if trace.acked_commits != ref_trace.acked_commits {
        violations.push(format!(
            "acked commits diverged: {} under storm vs {} fault-free",
            trace.acked_commits, ref_trace.acked_commits
        ));
    }
    if trace.acked_transfers != ref_trace.acked_transfers {
        violations.push("acked transfer set diverged from the fault-free run".into());
    }
    let mut storm_views: Vec<String> = vec![BANK_VIEW.into(), CHURN_VIEW.into()];
    storm_views.extend(chain_view_names(cfg.chain_depth));
    for view in &storm_views {
        if let Err(e) = db.verify_view(view) {
            violations.push(format!("view '{view}' != recomputation from base: {e}"));
        }
    }
    if fingerprint_with_chain(&db, cfg.chain_depth)? != ref_fp {
        violations.push("committed state not byte-identical to the fault-free run".into());
    }
    Ok(StormReport {
        schedule: schedule.clone(),
        fault_stats,
        trace,
        resilience,
        violations,
    })
}

/// Sweep `schedules` *distinct* storm schedules (derived seeds, deduped by
/// fault placement; empty storms skipped) against one shared fault-free
/// reference. Purely seed-deterministic.
pub fn run_storm_sweep(cfg: &TortureConfig, schedules: usize) -> Result<StormSweepReport> {
    let horizon = measure_horizon(cfg)?;
    let (ref_trace, ref_fp) = reference_run(cfg)?;
    let mut report = StormSweepReport { horizon, ..Default::default() };
    let mut seen = HashSet::new();
    let mut i = 0u64;
    while report.episodes < schedules && i < (schedules as u64) * 3 {
        i += 1;
        let storm_seed = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
        let schedule = FaultSchedule::storm(storm_seed, horizon);
        if schedule.faults.is_empty() || !seen.insert(schedule.faults.clone()) {
            continue;
        }
        let ep = storm_episode_with_reference(cfg, &schedule, &ref_trace, &ref_fp)?;
        report.episodes += 1;
        report.transient_faults += ep.fault_stats.transient_faults;
        report.io_retries += ep.resilience.pool_io.retries + ep.resilience.log_io.retries;
        report.acked_commits += ep.trace.acked_commits;
        for v in ep.violations {
            report.violations.push((storm_seed, v));
        }
    }
    Ok(report)
}

// ---- persistent-outage mode ----------------------------------------------

/// Outcome of a persistent-outage episode: the write path dies for good at
/// one event, and the engine must degrade — not corrupt, not panic.
#[derive(Clone, Debug)]
pub struct OutageReport {
    /// Clock counters at the end of the episode.
    pub fault_stats: FaultStatsSnapshot,
    /// Resilience counters (degradations, rejected writes, heals).
    pub resilience: ResilienceStats,
    /// Transactions committed before the outage bit.
    pub commits_before_outage: usize,
    /// Writers rejected with [`Error::Degraded`] during the outage.
    pub writes_rejected: usize,
    /// Oracle violations; empty = degradation was graceful.
    pub violations: Vec<String>,
}

/// Kill the write path persistently at `outage_event`, then assert the
/// graceful-degradation contract: the engine lands in `DegradedReadOnly`
/// (never panics, never corrupts), reads and read-only commits still
/// succeed, writers get a *retryable* classified error, and after the
/// medium heals one [`Database::probe_health`] restores full service.
pub fn run_persistent_episode(cfg: &TortureConfig, outage_event: u64) -> Result<OutageReport> {
    let (db, parts) = build(cfg)?;
    db.set_io_retry_policy(RetryPolicy::no_delay(3));
    parts.clock.arm(&FaultSchedule::persistent_at(outage_event));

    let mut violations = Vec::new();
    let mut commits = 0usize;
    let mut rejected = 0usize;
    let mut rng = Rng::new(cfg.seed ^ 0xD15E_A5ED_0DD5);
    for seq in 1..=(cfg.txns as i64) {
        let from = rng.below(cfg.accounts as u64) as i64;
        let mut to = rng.below(cfg.accounts as u64) as i64;
        if to == from {
            to = (to + 1) % cfg.accounts;
        }
        let amount = rng.range_inclusive(1, 9);
        let result = db.run_txn(IsolationLevel::ReadCommitted, 0, |txn| {
            do_transfer(&db, txn, seq, from, to, amount)
        });
        match result {
            Ok(()) => commits += 1,
            Err(e) => {
                if !e.is_retryable() {
                    violations.push(format!("outage surfaced a non-retryable error: {e}"));
                }
                if matches!(e, Error::Degraded { .. }) {
                    rejected += 1;
                }
            }
        }
    }
    if db.health().state() != HealthState::DegradedReadOnly {
        violations.push(format!(
            "expected DegradedReadOnly after a persistent outage, got {:?}",
            db.health().state()
        ));
    }
    if rejected == 0 {
        violations.push("no writer was rejected with Error::Degraded".into());
    }
    // Reads still serve while degraded, and a read-only transaction
    // commits (no-force: nothing to redo, nothing to flush).
    match db.dump_table("accounts") {
        Ok(rows) if rows.len() == cfg.accounts as usize => {}
        Ok(rows) => violations.push(format!(
            "degraded read returned {} accounts, expected {}",
            rows.len(),
            cfg.accounts
        )),
        Err(e) => violations.push(format!("reads failed while degraded: {e}")),
    }
    let mut ro = db.begin(IsolationLevel::ReadCommitted);
    if let Err(e) = db.commit(&mut ro) {
        violations.push(format!("read-only commit failed while degraded: {e}"));
    }
    // The medium heals; one probe restores full service and writes flow.
    parts.clock.heal();
    if db.probe_health() != HealthState::Healthy {
        violations.push("probe after heal did not restore Healthy".into());
    }
    let post = db.run_txn(IsolationLevel::ReadCommitted, 2, |txn| {
        do_transfer(&db, txn, i64::MAX, 0, cfg.accounts - 1, 1)
    });
    if let Err(e) = post {
        violations.push(format!("post-heal write failed: {e}"));
    }
    for view in [BANK_VIEW, CHURN_VIEW] {
        if let Err(e) = db.verify_view(view) {
            violations.push(format!("[post-heal] view '{view}' diverged: {e}"));
        }
    }
    Ok(OutageReport {
        fault_stats: parts.clock.stats(),
        resilience: db.resilience_stats(),
        commits_before_outage: commits,
        writes_rejected: rejected,
        violations,
    })
}

/// Outcome of the metrics determinism/sanity check.
#[derive(Clone, Debug)]
pub struct MetricsCheckReport {
    /// The snapshot of the first run (for reporting).
    pub snapshot: txview_common::obs::Snapshot,
    /// Violations; empty = metrics are well-formed and deterministic.
    pub violations: Vec<String>,
}

/// Run the fault-free torture workload twice with every metrics clock on
/// the fault clock's event counter, then assert the observability layer's
/// own contract: snapshots are structurally valid (contiguous positive-width
/// log₂ buckets, sums inside bucket-implied ranges) and *identical* across
/// identically-seeded runs — any divergence means wall time or other
/// nondeterminism leaked into a metric.
pub fn run_metrics_check(cfg: &TortureConfig) -> Result<MetricsCheckReport> {
    let run_once = || -> Result<txview_common::obs::Snapshot> {
        let (db, parts) = build(cfg)?;
        let _ = run_workload(&db, cfg, &parts.clock);
        db.run_ghost_cleanup()?;
        Ok(db.metrics_snapshot())
    };
    let a = run_once()?;
    let b = run_once()?;
    let mut violations = Vec::new();
    for (name, snap) in [("first", &a), ("second", &b)] {
        if let Err(e) = snap.validate() {
            violations.push(format!("[{name}] malformed snapshot: {e}"));
        }
    }
    if a != b {
        violations.push("snapshot divergence between identically-seeded runs".into());
    }
    // Sanity: the workload must actually have exercised the instrumented
    // paths, or the determinism check proves nothing.
    if a.counter_value("txn.commits").unwrap_or(0) == 0 {
        violations.push("no commits recorded — metrics not wired into the txn layer".into());
    }
    if a.counter_value("engine.escrow_applies").unwrap_or(0)
        + a.counter_value("engine.minmax_rewrites").unwrap_or(0)
        == 0
    {
        violations.push("no view maintenance recorded — engine counters not wired".into());
    }
    match a.hist_value("txn.phase.commit_us") {
        Some(h) if h.count() > 0 => {}
        _ => violations.push("commit-phase histogram empty — phase timers not wired".into()),
    }
    Ok(MetricsCheckReport { snapshot: a, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> TortureConfig {
        TortureConfig { txns: 12, ..Default::default() }
    }

    #[test]
    fn fault_free_episode_passes_oracle() {
        // A schedule that never fires: the "crash" lands far past the end.
        let ep = run_episode(&quick_cfg(), &FaultSchedule::crash_at(1_000_000)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert_eq!(ep.crash_event, None);
        // 12 attempts, one deliberate runtime rollback (t == 5).
        assert_eq!(ep.trace.acked_commits, 11);
        assert_eq!(ep.trace.rolled_back, 1);
        assert_eq!(ep.recovery.losers, 0);
    }

    #[test]
    fn early_crash_loses_everything_but_stays_consistent() {
        let ep = run_episode(&quick_cfg(), &FaultSchedule::crash_at(0)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert_eq!(ep.crash_event, Some(ep.fault_stats.crash_event.unwrap()));
        assert!(ep.trace.acked_commits < 12);
    }

    #[test]
    fn metrics_check_passes_and_is_deterministic() {
        let report = run_metrics_check(&quick_cfg()).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // Tick-mode clocks: phase "durations" are event-count deltas, and
        // the snapshot carries real activity from every layer.
        assert!(report.snapshot.counter_value("txn.commits").unwrap() > 0);
        assert!(report.snapshot.hist_value("wal.sync_us").unwrap().count() > 0);
        assert!(report.snapshot.hist_value("lock.hold_us").unwrap().count() > 0);
    }

    #[test]
    fn same_seed_same_outcome() {
        let cfg = quick_cfg();
        let a = run_episode(&cfg, &FaultSchedule::crash_at(13)).unwrap();
        let b = run_episode(&cfg, &FaultSchedule::crash_at(13)).unwrap();
        assert_eq!(a.crash_event, b.crash_event);
        assert_eq!(a.trace.acked_transfers, b.trace.acked_transfers);
        assert_eq!(a.recovery.losers, b.recovery.losers);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.fault_stats.events, b.fault_stats.events);
    }

    #[test]
    fn transient_fault_is_survivable() {
        use txview_storage::fault::FaultKind;
        let schedule = FaultSchedule {
            faults: vec![(5, FaultKind::Transient), (40, FaultKind::Crash)],
        };
        let ep = run_episode(&quick_cfg(), &schedule).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert_eq!(ep.fault_stats.transient_faults, 1);
    }

    #[test]
    fn xlock_mode_episode_passes() {
        let cfg = TortureConfig { mode: MaintenanceMode::XLock, txns: 12, ..Default::default() };
        let ep = run_episode(&cfg, &FaultSchedule::crash_at(17)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
    }

    #[test]
    fn mini_sweep_is_clean() {
        let report = run_sweep(&quick_cfg(), 8).unwrap();
        assert!(report.horizon > 20, "horizon {}", report.horizon);
        assert_eq!(report.episodes, 8);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.crash_events.len() >= 7);
    }

    #[test]
    fn storm_episode_is_fully_absorbed() {
        let cfg = quick_cfg();
        let horizon = measure_horizon(&cfg).unwrap();
        let schedule = FaultSchedule::storm(7, horizon);
        assert!(!schedule.faults.is_empty());
        let ep = run_storm_episode(&cfg, &schedule).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert!(ep.fault_stats.transient_faults > 0);
        // The storm was visible to the retry layer, not to the workload.
        let absorbed = ep.resilience.pool_io.retries + ep.resilience.log_io.retries;
        assert!(absorbed > 0, "no retries recorded for {} faults", ep.fault_stats.transient_faults);
        assert_eq!(ep.resilience.health, HealthState::Healthy);
        assert_eq!(ep.trace.rolled_back, 1); // only the deliberate one
    }

    #[test]
    fn storm_episode_rejects_crashy_schedules() {
        let err = run_storm_episode(&quick_cfg(), &FaultSchedule::crash_at(3)).unwrap_err();
        assert!(matches!(err, Error::InvalidOperation(_)));
    }

    #[test]
    fn mini_storm_sweep_is_clean_and_distinct() {
        let report = run_storm_sweep(&quick_cfg(), 6).unwrap();
        assert_eq!(report.episodes, 6);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.transient_faults > 0);
        assert!(report.io_retries > 0);
    }

    #[test]
    fn persistent_outage_degrades_gracefully_and_heals() {
        let cfg = quick_cfg();
        let report = run_persistent_episode(&cfg, 6).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.writes_rejected > 0);
        assert_eq!(report.resilience.health, HealthState::Healthy); // post-heal
        assert_eq!(report.resilience.health_counters.degradations, 1);
        assert_eq!(report.resilience.health_counters.heals, 1);
        assert!(report.resilience.health_counters.writes_rejected > 0);
    }

    fn pipeline_cfg(elr: bool) -> TortureConfig {
        TortureConfig { txns: 12, pipeline: true, elr, ..Default::default() }
    }

    #[test]
    fn pipelined_fault_free_episode_passes_oracle() {
        let ep = run_episode(&pipeline_cfg(false), &FaultSchedule::crash_at(1_000_000)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert_eq!(ep.trace.acked_commits, 11);
        assert_eq!(ep.recovery.losers, 0);
    }

    #[test]
    fn elr_fault_free_episode_passes_oracle() {
        let ep = run_episode(&pipeline_cfg(true), &FaultSchedule::crash_at(1_000_000)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert_eq!(ep.trace.acked_commits, 11);
    }

    #[test]
    fn pipelined_mini_sweep_is_clean() {
        let report = run_sweep(&pipeline_cfg(false), 6).unwrap();
        assert_eq!(report.episodes, 6);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn elr_mini_sweep_is_clean() {
        let report = run_sweep(&pipeline_cfg(true), 6).unwrap();
        assert_eq!(report.episodes, 6);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn pipeline_probe_sweep_covers_all_three_seams() {
        for elr in [false, true] {
            let report = run_pipeline_probe_sweep(&pipeline_cfg(elr), 3).unwrap();
            assert!(report.violations.is_empty(), "elr={elr}: {:?}", report.violations);
            assert_eq!(report.per_probe.len(), 3);
            for &(name, ran) in &report.per_probe {
                assert!(ran >= 1, "elr={elr}: probe {name} never got a crash episode");
            }
        }
    }

    #[test]
    fn pipelined_storm_episode_is_absorbed() {
        let cfg = pipeline_cfg(true);
        let horizon = measure_horizon(&cfg).unwrap();
        let ep = run_storm_episode(&cfg, &FaultSchedule::storm(9, horizon)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert!(ep.fault_stats.transient_faults > 0);
    }

    #[test]
    fn pipelined_metrics_check_is_deterministic() {
        let report = run_metrics_check(&pipeline_cfg(true)).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.snapshot.counter_value("txn.pipeline.leader_syncs").unwrap_or(0) > 0);
    }

    fn chain_cfg(depth: usize) -> TortureConfig {
        TortureConfig { txns: 12, chain_depth: depth, ..Default::default() }
    }

    #[test]
    fn chain_fault_free_episode_passes_oracle() {
        let ep = run_episode(&chain_cfg(2), &FaultSchedule::crash_at(1_000_000)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert_eq!(ep.trace.acked_commits, 11);
    }

    #[test]
    fn chain_mini_sweep_is_clean() {
        let report = run_sweep(&chain_cfg(2), 6).unwrap();
        assert_eq!(report.episodes, 6);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn deep_chain_elr_episode_passes_oracle() {
        let cfg = TortureConfig {
            txns: 12,
            chain_depth: 4,
            pipeline: true,
            elr: true,
            ..Default::default()
        };
        let ep = run_episode(&cfg, &FaultSchedule::crash_at(1_000_000)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
    }

    #[test]
    fn cascade_probe_sweep_crashes_between_levels() {
        let report = run_cascade_probe_sweep(&chain_cfg(2), 3).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.per_probe.len(), 1);
        assert!(
            report.per_probe[0].1 >= 1,
            "mid-chain probe never fired — is the flush emitting view.cascade.level?"
        );
    }

    fn minmax_cfg() -> TortureConfig {
        // 16 ends the schedule on a committing transfer (t=15), whose flush
        // carries the t=5 deliberate abort into the durable log — a tail
        // rollback (t ≡ 5 mod 12 right after a flush tick) would instead
        // leave a legitimate loser and make the losers==0 assert moot.
        TortureConfig { txns: 16, minmax: true, ..Default::default() }
    }

    #[test]
    fn minmax_fault_free_episode_passes_oracle() {
        let ep = run_episode(&minmax_cfg(), &FaultSchedule::crash_at(1_000_000)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert_eq!(ep.recovery.losers, 0);
    }

    #[test]
    fn minmax_mini_sweep_is_clean() {
        let report = run_sweep(&minmax_cfg(), 6).unwrap();
        assert_eq!(report.episodes, 6);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn minmax_probe_sweep_covers_both_seams() {
        let report = run_minmax_probe_sweep(&minmax_cfg(), 3).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.per_probe.len(), 2);
        for &(name, ran) in &report.per_probe {
            assert!(ran >= 1, "probe {name} never got a crash episode");
        }
    }

    #[test]
    fn minmax_gate_actually_changes_the_workload() {
        // Non-vacuity: with the gate on, both new probes must occur in the
        // fault-free schedule (otherwise the sweep above proves nothing),
        // and with it off they must never fire — the off-path draws no
        // extra rng and emits no extra events, keeping pinned horizons.
        let on = measure_probe_offsets(&minmax_cfg(), &MINMAX_PROBES).unwrap();
        for name in MINMAX_PROBES {
            let n = on.iter().filter(|(p, _)| *p == name).count();
            assert!(n >= 2, "probe {name} fired {n} times; workload too tame");
        }
        let off =
            measure_probe_offsets(&TortureConfig { minmax: false, ..minmax_cfg() }, &MINMAX_PROBES)
                .unwrap();
        assert!(off.is_empty(), "gated probes fired with minmax off: {off:?}");
    }

    #[test]
    fn chain_storm_episode_is_absorbed() {
        let cfg = chain_cfg(2);
        let horizon = measure_horizon(&cfg).unwrap();
        let ep = run_storm_episode(&cfg, &FaultSchedule::storm(5, horizon)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
    }

    #[test]
    fn chain_metrics_are_deterministic_and_wired() {
        let report = run_metrics_check(&chain_cfg(2)).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let s = &report.snapshot;
        assert!(s.counter_value("view.graph.enqueues").unwrap_or(0) > 0);
        assert!(s.counter_value("view.graph.refreshes").unwrap_or(0) > 0);
        assert!(s.counter_value("view.graph.coalesce_hits").unwrap_or(0) > 0);
    }

    #[test]
    fn xlock_chain_episode_passes() {
        let cfg = TortureConfig {
            mode: MaintenanceMode::XLock,
            txns: 12,
            chain_depth: 2,
            ..Default::default()
        };
        let ep = run_episode(&cfg, &FaultSchedule::crash_at(23)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
    }

    #[test]
    fn xlock_storm_episode_is_absorbed_too() {
        let cfg = TortureConfig { mode: MaintenanceMode::XLock, txns: 12, ..Default::default() };
        let horizon = measure_horizon(&cfg).unwrap();
        let ep = run_storm_episode(&cfg, &FaultSchedule::storm(11, horizon)).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
    }
}
