//! A multiversion store for snapshot readers, built around the escrow
//! insight: **committed increments commute**, so the version history of an
//! aggregate row is a base image plus a set of commit-stamped *delta*
//! entries. A snapshot at LSN `s` reconstructs the row by applying every
//! delta with `commit_lsn <= s` to the newest full image at or below `s` —
//! correct regardless of the order concurrent committers appended their
//! entries, because addition is order-independent.
//!
//! Full-image entries come from X-lock paths (MIN/MAX views, the X-lock
//! baseline, eager group deletion): the X lock serializes those writers, so
//! their physical row value *is* a clean committed image at publish time.
//!
//! Chains are folded (oldest deltas merged into the base) once they exceed
//! [`MAX_CHAIN`], using a caller-supplied materializer — the store itself
//! is agnostic to row encoding.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use txview_common::{IndexId, Lsn, Result};
use txview_wal::record::ValueDelta;

/// Fold the chain once it exceeds this many entries.
pub const MAX_CHAIN: usize = 16;

/// Shard count for the chain map (power of two; selection is a mask).
/// Chains are independent — every operation touches exactly one key — so
/// partitioning them by key hash removes the store-wide serialization
/// point without changing any per-chain semantics.
const VS_SHARDS: usize = 32;

/// Version stamp of the pre-modification base image.
pub const BASE_VERSION: Lsn = Lsn(1);

/// Escrow delta pairs: (aggregate-region position, delta).
pub type DeltaPairs = Vec<(u16, ValueDelta)>;

/// One committed version event.
#[derive(Clone, Debug)]
enum Payload {
    /// A full row image (`None` = row absent/removed).
    Full(Option<Vec<u8>>),
    /// Commutative aggregate deltas relative to whatever precedes them.
    Delta(DeltaPairs),
}

#[derive(Clone, Debug)]
struct VersionEntry {
    commit_lsn: Lsn,
    payload: Payload,
}

/// Applies delta pairs to a (possibly absent) row image, producing the new
/// image. Supplied by the engine, which knows the row encoding.
pub type Materializer<'a> =
    dyn Fn(Option<Vec<u8>>, &[(u16, ValueDelta)]) -> Result<Option<Vec<u8>>> + 'a;

type ChainKey = (IndexId, Vec<u8>);

/// The version store, sharded by chain-key hash. Each shard owns a
/// disjoint subset of the chains behind its own mutex; GC (folding and
/// full-image pruning) happens per chain under the owning shard's lock.
pub struct VersionStore {
    shards: Box<[Mutex<HashMap<ChainKey, Vec<VersionEntry>>>]>,
}

impl Default for VersionStore {
    fn default() -> VersionStore {
        VersionStore {
            shards: (0..VS_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }
}

impl VersionStore {
    /// Empty store.
    pub fn new() -> VersionStore {
        VersionStore::default()
    }

    /// The shard owning `(index, key)`.
    fn shard(&self, index: IndexId, key: &[u8]) -> &Mutex<HashMap<ChainKey, Vec<VersionEntry>>> {
        let mut h = DefaultHasher::new();
        (index, key).hash(&mut h);
        &self.shards[(h.finish() as usize) & (VS_SHARDS - 1)]
    }

    /// True if the row already has a chain (its base image is safeguarded).
    pub fn has_chain(&self, index: IndexId, key: &[u8]) -> bool {
        self.shard(index, key).lock().contains_key(&(index, key.to_vec()))
    }

    /// Record the pre-modification image of a row, computing it *inside*
    /// the store's critical section (see the engine: under escrow
    /// concurrency an unsynchronized read could capture another writer's
    /// uncommitted delta).
    pub fn ensure_base_with<F>(&self, index: IndexId, key: &[u8], read: F) -> Result<()>
    where
        F: FnOnce() -> Result<Option<Vec<u8>>>,
    {
        let mut chains = self.shard(index, key).lock();
        if let std::collections::hash_map::Entry::Vacant(e) = chains.entry((index, key.to_vec())) {
            let value = read()?;
            e.insert(vec![VersionEntry { commit_lsn: BASE_VERSION, payload: Payload::Full(value) }]);
        }
        Ok(())
    }

    /// Convenience base recording when the caller already has the clean
    /// image (row-creation path: the row did not exist).
    pub fn ensure_base(&self, index: IndexId, key: &[u8], value: Option<Vec<u8>>) {
        let mut chains = self.shard(index, key).lock();
        chains.entry((index, key.to_vec())).or_insert_with(|| {
            vec![VersionEntry { commit_lsn: BASE_VERSION, payload: Payload::Full(value) }]
        });
    }

    /// Insert an entry keeping the chain sorted by commit LSN. Concurrent
    /// committers publish in nondeterministic order; folding and base
    /// selection assume `chain[1]` is the oldest unfolded event, so the
    /// chain must be maintained in LSN order (an out-of-order append would
    /// let a fold absorb a *newer* sibling into the base, permanently
    /// hiding the older delta behind the base LSN).
    fn insert_sorted(chain: &mut Vec<VersionEntry>, entry: VersionEntry) {
        let pos = chain
            .iter()
            .rposition(|e| e.commit_lsn <= entry.commit_lsn)
            .map(|p| p + 1)
            .unwrap_or(0);
        chain.insert(pos, entry);
    }

    /// Publish a committed escrow delta. Folds the chain with `materialize`
    /// if it grew too long — but never past `horizon` (the oldest active
    /// snapshot): a folded base with `commit_lsn > s` would make a reader
    /// at `s` see the row as absent.
    pub fn publish_delta(
        &self,
        index: IndexId,
        key: &[u8],
        commit_lsn: Lsn,
        pairs: DeltaPairs,
        horizon: Lsn,
        materialize: &Materializer<'_>,
    ) -> Result<()> {
        let mut chains = self.shard(index, key).lock();
        let chain = chains.entry((index, key.to_vec())).or_default();
        Self::insert_sorted(chain, VersionEntry { commit_lsn, payload: Payload::Delta(pairs) });
        if chain.len() > MAX_CHAIN {
            Self::fold(chain, horizon, materialize)?;
        }
        Ok(())
    }

    /// Publish a committed full image (X-lock paths; `None` = removed).
    pub fn publish_full(
        &self,
        index: IndexId,
        key: &[u8],
        commit_lsn: Lsn,
        value: Option<Vec<u8>>,
        horizon: Lsn,
    ) {
        let mut chains = self.shard(index, key).lock();
        let chain = chains.entry((index, key.to_vec())).or_default();
        Self::insert_sorted(chain, VersionEntry { commit_lsn, payload: Payload::Full(value) });
        // Full images supersede everything before them with smaller LSNs;
        // cheap prune: drop entries strictly older than the newest full
        // image once the chain is long — unless an active snapshot still
        // needs them.
        if chain.len() > MAX_CHAIN {
            if let Some(pos) = chain.iter().rposition(|e| matches!(e.payload, Payload::Full(_))) {
                let cutoff = chain[pos].commit_lsn;
                if cutoff <= horizon && chain[..pos].iter().all(|e| e.commit_lsn <= cutoff) {
                    chain.drain(..pos);
                }
            }
        }
    }

    /// Fold the oldest entries into the base until the chain is bounded,
    /// stopping at `horizon` (entries newer than the oldest active snapshot
    /// must stay individually resolvable).
    fn fold(chain: &mut Vec<VersionEntry>, horizon: Lsn, materialize: &Materializer<'_>) -> Result<()> {
        while chain.len() > MAX_CHAIN && chain.len() > 1 && chain[1].commit_lsn <= horizon {
            // Entry 0 is always a Full (the base); entry 1 gets absorbed.
            let second = chain.remove(1);
            let base = &mut chain[0];
            match second.payload {
                Payload::Full(v) => {
                    base.payload = Payload::Full(v);
                }
                Payload::Delta(pairs) => {
                    let cur = match &base.payload {
                        Payload::Full(v) => v.clone(),
                        Payload::Delta(_) => unreachable!("chain head is always Full"),
                    };
                    base.payload = Payload::Full(materialize(cur, &pairs)?);
                }
            }
            base.commit_lsn = base.commit_lsn.max(second.commit_lsn);
        }
        Ok(())
    }

    /// Reconstruct the row image visible at snapshot `s`. Outer `None`
    /// means the row has no chain (never modified — read it directly);
    /// `Some(None)` means reconstruction says "row absent".
    pub fn read_at(
        &self,
        index: IndexId,
        key: &[u8],
        s: Lsn,
        materialize: &Materializer<'_>,
    ) -> Result<Option<Option<Vec<u8>>>> {
        let chains = self.shard(index, key).lock();
        let Some(chain) = chains.get(&(index, key.to_vec())) else {
            return Ok(None);
        };
        // Newest full image at or below s (the base qualifies when s >= 1).
        let mut base: Option<(Lsn, Option<Vec<u8>>)> = None;
        for e in chain {
            if e.commit_lsn <= s {
                if let Payload::Full(v) = &e.payload {
                    if base.as_ref().is_none_or(|(l, _)| e.commit_lsn >= *l) {
                        base = Some((e.commit_lsn, v.clone()));
                    }
                }
            }
        }
        let Some((base_lsn, mut value)) = base else {
            // Chain exists but the snapshot predates even the base image
            // (possible after folding): report "absent".
            return Ok(Some(None));
        };
        // Apply every delta in (base_lsn, s] — order-independent.
        for e in chain {
            if e.commit_lsn > base_lsn && e.commit_lsn <= s {
                if let Payload::Delta(pairs) = &e.payload {
                    value = materialize(value, pairs)?;
                }
            }
        }
        Ok(Some(value))
    }

    /// All keys with chains for one index (snapshot scans union these with
    /// the live tree keys). The scan visits shards one at a time in fixed
    /// order — snapshot-consistent per shard, fuzzy across shards, which is
    /// sound for recomputation reads because every returned key is
    /// re-resolved through [`VersionStore::read_at`] at the reader's
    /// snapshot LSN, and chains are never removed while readers exist.
    pub fn keys_for(&self, index: IndexId) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let chains = shard.lock();
            out.extend(
                chains.keys().filter(|(i, _)| *i == index).map(|(_, k)| k.clone()),
            );
        }
        out
    }

    /// Drop everything (crash simulation: versions are volatile state).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Debug dump of a chain: (commit_lsn, is_full, delta-pairs-if-any).
    #[doc(hidden)]
    pub fn debug_chain(&self, index: IndexId, key: &[u8]) -> Vec<(u64, bool, Option<DeltaPairs>)> {
        self.shard(index, key)
            .lock()
            .get(&(index, key.to_vec()))
            .map(|chain| {
                chain
                    .iter()
                    .map(|e| match &e.payload {
                        Payload::Full(_) => (e.commit_lsn.0, true, None),
                        Payload::Delta(p) => (e.commit_lsn.0, false, Some(p.clone())),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    #[cfg(test)]
    fn chain_len(&self, index: IndexId, key: &[u8]) -> usize {
        self.shard(index, key)
            .lock()
            .get(&(index, key.to_vec()))
            .map_or(0, |c| c.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDX: IndexId = IndexId(1);

    /// Toy materializer: the "row" is one little-endian i64; deltas at
    /// position 0 add to it; absent rows materialize from 0.
    fn mat(base: Option<Vec<u8>>, pairs: &[(u16, ValueDelta)]) -> Result<Option<Vec<u8>>> {
        let mut v = base
            .map(|b| i64::from_le_bytes(b[..8].try_into().unwrap()))
            .unwrap_or(0);
        for (pos, d) in pairs {
            assert_eq!(*pos, 0);
            if let ValueDelta::Int(x) = d {
                v += x;
            }
        }
        Ok(Some(v.to_le_bytes().to_vec()))
    }

    fn read(vs: &VersionStore, s: u64) -> Option<i64> {
        vs.read_at(IDX, b"k", Lsn(s), &mat)
            .unwrap()
            .expect("chain exists")
            .map(|b| i64::from_le_bytes(b[..8].try_into().unwrap()))
    }

    fn delta(x: i64) -> DeltaPairs {
        vec![(0, ValueDelta::Int(x))]
    }

    #[test]
    fn deltas_commute_out_of_order_publish() {
        let vs = VersionStore::new();
        vs.ensure_base(IDX, b"k", Some(100i64.to_le_bytes().to_vec()));
        // T2 (lsn 20) publishes BEFORE T1 (lsn 10) — the race that breaks
        // value-based version chains.
        vs.publish_delta(IDX, b"k", Lsn(20), delta(7), Lsn(u64::MAX), &mat).unwrap();
        vs.publish_delta(IDX, b"k", Lsn(10), delta(5), Lsn(u64::MAX), &mat).unwrap();
        assert_eq!(read(&vs, 5), Some(100));
        assert_eq!(read(&vs, 10), Some(105));
        assert_eq!(read(&vs, 19), Some(105));
        assert_eq!(read(&vs, 20), Some(112));
        assert_eq!(read(&vs, 99), Some(112));
    }

    #[test]
    fn snapshot_between_commits_sees_prefix() {
        let vs = VersionStore::new();
        vs.ensure_base(IDX, b"k", None);
        vs.publish_delta(IDX, b"k", Lsn(10), delta(1), Lsn(u64::MAX), &mat).unwrap();
        vs.publish_delta(IDX, b"k", Lsn(30), delta(2), Lsn(u64::MAX), &mat).unwrap();
        assert_eq!(read(&vs, 15), Some(1)); // materialized from absent = 0
        assert_eq!(read(&vs, 30), Some(3));
    }

    #[test]
    fn full_image_supersedes_prior_deltas() {
        let vs = VersionStore::new();
        vs.ensure_base(IDX, b"k", Some(0i64.to_le_bytes().to_vec()));
        vs.publish_delta(IDX, b"k", Lsn(10), delta(5), Lsn(u64::MAX), &mat).unwrap();
        vs.publish_full(IDX, b"k", Lsn(20), Some(1000i64.to_le_bytes().to_vec()), Lsn(u64::MAX));
        vs.publish_delta(IDX, b"k", Lsn(30), delta(1), Lsn(u64::MAX), &mat).unwrap();
        assert_eq!(read(&vs, 10), Some(5));
        assert_eq!(read(&vs, 20), Some(1000));
        assert_eq!(read(&vs, 30), Some(1001));
    }

    #[test]
    fn removal_then_recreation() {
        let vs = VersionStore::new();
        vs.ensure_base(IDX, b"k", Some(5i64.to_le_bytes().to_vec()));
        vs.publish_full(IDX, b"k", Lsn(10), None, Lsn(u64::MAX)); // removed
        vs.publish_delta(IDX, b"k", Lsn(20), delta(3), Lsn(u64::MAX), &mat).unwrap();
        assert_eq!(read(&vs, 5), Some(5));
        assert_eq!(read(&vs, 10), None, "absent at 10");
        assert_eq!(read(&vs, 20), Some(3)); // recreated from absent
    }

    #[test]
    fn folding_preserves_newest_reads_and_bounds_memory() {
        let vs = VersionStore::new();
        vs.ensure_base(IDX, b"k", Some(0i64.to_le_bytes().to_vec()));
        for i in 0..(MAX_CHAIN as u64 + 20) {
            vs.publish_delta(IDX, b"k", Lsn(10 + i), delta(1), Lsn(u64::MAX), &mat).unwrap();
        }
        assert_eq!(read(&vs, 1000), Some(MAX_CHAIN as i64 + 20));
        assert!(vs.chain_len(IDX, b"k") <= MAX_CHAIN + 1);
    }

    /// Regression: an out-of-order publish (older LSN arriving later) must
    /// not be lost when folding kicks in — the chain is kept LSN-sorted so
    /// folds always absorb the genuinely oldest entry.
    #[test]
    fn fold_after_out_of_order_publish_loses_nothing() {
        let vs = VersionStore::new();
        vs.ensure_base(IDX, b"k", Some(0i64.to_le_bytes().to_vec()));
        // Newer commit publishes first...
        vs.publish_delta(IDX, b"k", Lsn(1000), delta(100), Lsn(u64::MAX), &mat).unwrap();
        // ...then the older one lands...
        vs.publish_delta(IDX, b"k", Lsn(999), delta(1), Lsn(u64::MAX), &mat).unwrap();
        // ...and a burst forces folding, with an active snapshot at 999
        // bounding the horizon.
        for i in 0..MAX_CHAIN as u64 + 4 {
            vs.publish_delta(IDX, b"k", Lsn(2000 + i), delta(0), Lsn(999), &mat).unwrap();
        }
        assert_eq!(read(&vs, 999), Some(1), "older delta resolvable at the protected snapshot");
        assert_eq!(read(&vs, 1000), Some(101));
        assert_eq!(read(&vs, 1_000_000), Some(101), "nothing lost to folding");
    }

    #[test]
    fn no_chain_is_outer_none() {
        let vs = VersionStore::new();
        assert!(vs.read_at(IDX, b"nope", Lsn(5), &mat).unwrap().is_none());
    }

    #[test]
    fn ensure_base_with_runs_once() {
        let vs = VersionStore::new();
        let mut calls = 0;
        vs.ensure_base_with(IDX, b"k", || {
            calls += 1;
            Ok(Some(1i64.to_le_bytes().to_vec()))
        })
        .unwrap();
        vs.ensure_base_with(IDX, b"k", || {
            calls += 1;
            Ok(Some(2i64.to_le_bytes().to_vec()))
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(read(&vs, 5), Some(1));
    }

    #[test]
    fn keys_for_lists_only_that_index() {
        let vs = VersionStore::new();
        vs.ensure_base(IDX, b"a", None);
        vs.ensure_base(IndexId(2), b"b", None);
        assert_eq!(vs.keys_for(IDX), vec![b"a".to_vec()]);
    }

    /// Many keys necessarily land on different shards; the cross-shard
    /// scan must still return every one exactly once, and per-key reads
    /// must be unaffected by which shard a neighbor lives on.
    #[test]
    fn chains_span_shards_without_loss() {
        let vs = VersionStore::new();
        for i in 0..200u64 {
            let key = i.to_be_bytes();
            vs.ensure_base(IDX, &key, Some(0i64.to_le_bytes().to_vec()));
            vs.publish_delta(IDX, &key, Lsn(10 + i), delta(i as i64), Lsn(u64::MAX), &mat)
                .unwrap();
        }
        let mut keys = vs.keys_for(IDX);
        keys.sort();
        assert_eq!(keys.len(), 200);
        keys.dedup();
        assert_eq!(keys.len(), 200, "no key listed twice across shards");
        for i in 0..200u64 {
            let got = vs
                .read_at(IDX, &i.to_be_bytes(), Lsn(10 + i), &mat)
                .unwrap()
                .unwrap()
                .map(|b| i64::from_le_bytes(b[..8].try_into().unwrap()));
            assert_eq!(got, Some(i as i64));
        }
    }
}
