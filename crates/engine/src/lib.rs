//! # txview-engine
//!
//! The paper's contribution, assembled over the substrates: **indexed views
//! maintained immediately inside user transactions, with escrow locking,
//! logical logging/undo, ghost records, and system transactions** (Graefe &
//! Zwilling, "Transaction support for indexed views", SIGMOD 2004).
//!
//! Public surface:
//!
//! * [`db::Database`] — tables (clustered B-trees), indexed-view DDL, DML
//!   with immediate view maintenance, commit/rollback, crash + recovery,
//!   ghost cleanup, and verification helpers;
//! * [`catalog`] — table / view definitions ([`catalog::ViewSpec`]), the
//!   aggregate list ([`catalog::AggSpec`]), filters, join views, and the
//!   maintenance-mode switch (escrow vs the X-lock baseline);
//! * [`escrow`] — the commutative-delta machinery: view-row layout, the
//!   aggregate region, delta application, and inverse deltas for undo;
//! * [`read`] — view readers at the three isolation levels (short S locks,
//!   serializable key-range locking, snapshot multiversioning);
//! * [`versions`] — the lightweight commit-LSN version store that lets
//!   snapshot readers ignore in-flight escrow writers.
//!
//! The crate deliberately has **no SQL layer**: the paper is about the
//! transactional machinery underneath, and the workloads drive it through
//! this typed API.

pub mod catalog;
pub mod db;
pub mod delta;
pub mod escrow;
pub mod ghosts;
pub mod hashidx;
pub mod health;
pub mod interleave;
pub mod read;
pub mod repl;
pub mod secondary;
pub mod torture;
pub mod versions;
pub mod watermark;

pub use catalog::{
    AggSpec, CmpOp, MaintenanceMode, Predicate, SecondaryIndexDef, TableDef, ViewDef, ViewSource,
    ViewSpec,
};
pub use db::{Database, DbStats, GhostCleanupReport, ResilienceStats};
pub use health::{HealthMonitor, HealthState, HealthStatsSnapshot};
pub use txview_txn::{IsolationLevel, Transaction};
