//! The catalog: table and indexed-view definitions.
//!
//! Definitions are immutable after DDL (like the paper's system: creating
//! or dropping an indexed view is a schema change, not a runtime event).
//! Root page ids never change (the B-tree "splits" its root in place), so a
//! catalog entry fully describes an index forever.

use std::collections::HashMap;
use txview_common::codec::{Reader, Writer};
use txview_common::schema::Schema;
use txview_common::value::ValueType;
use txview_common::{Error, IndexId, ObjectId, PageId, Result, Row, Value, ViewId};

/// Comparison operator for simple view filters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

/// A simple conjunctive predicate over base-table columns (the WHERE clause
/// of an indexed-view definition).
#[derive(Clone, PartialEq, Debug)]
pub enum Predicate {
    /// Always true (no filter).
    True,
    /// `row[col] op value`.
    Cmp {
        /// Column position in the base row.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Evaluate against a base row. NULL comparisons are false (SQL-ish).
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, value } => {
                let v = row.get(*col);
                if v.is_null() || value.is_null() {
                    return false;
                }
                let ord = v.total_cmp(value);
                match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }
            }
            Predicate::And(a, b) => a.eval(row) && b.eval(row),
        }
    }
}

/// One aggregate column of an indexed view.
///
/// `COUNT_BIG(*)` is always maintained implicitly (the paper requires it —
/// it is the group's existence counter), so it is not listed here.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggSpec {
    /// SUM of an INT base column (escrow-maintainable).
    SumInt {
        /// Source column in the base row.
        col: usize,
    },
    /// SUM of a FLOAT base column (escrow-maintainable).
    SumFloat {
        /// Source column in the base row.
        col: usize,
    },
    /// MIN of a base column — **not** escrow-maintainable: forces X-lock
    /// maintenance and may require base recomputation on deletes.
    Min {
        /// Source column in the base row.
        col: usize,
    },
    /// MAX of a base column — same restrictions as `Min`.
    Max {
        /// Source column in the base row.
        col: usize,
    },
    /// AVG of a base column, stored as its SUM (COUNT_BIG(*) is always
    /// maintained, so the quotient is derived at read time — the paper's
    /// required rewrite). The stored sum commutes under addition, so AVG is
    /// escrow-maintainable and composes with cascades and replication.
    Avg {
        /// Source column in the base row.
        col: usize,
        /// Stored sum is FLOAT (else INT).
        float: bool,
    },
}

impl AggSpec {
    /// Source column in the base row.
    pub fn col(&self) -> usize {
        match self {
            AggSpec::SumInt { col }
            | AggSpec::SumFloat { col }
            | AggSpec::Min { col }
            | AggSpec::Max { col }
            | AggSpec::Avg { col, .. } => *col,
        }
    }

    /// True iff this aggregate commutes under addition (escrow-capable).
    /// AVG qualifies because its stored representation *is* a sum.
    pub fn is_escrow_capable(&self) -> bool {
        matches!(
            self,
            AggSpec::SumInt { .. } | AggSpec::SumFloat { .. } | AggSpec::Avg { .. }
        )
    }

    /// The stored value type of the aggregate column.
    pub fn stored_type(&self, base: &Schema) -> Result<ValueType> {
        match self {
            AggSpec::SumInt { .. } => Ok(ValueType::Int),
            AggSpec::SumFloat { .. } => Ok(ValueType::Float),
            AggSpec::Avg { col, float } => {
                let want = if *float { ValueType::Float } else { ValueType::Int };
                if base.columns()[*col].ty != want {
                    return Err(Error::Schema(format!(
                        "AVG column {col} is not {want:?}"
                    )));
                }
                Ok(want)
            }
            AggSpec::Min { col } | AggSpec::Max { col } => {
                let ty = base.columns()[*col].ty;
                if ty == ValueType::Str {
                    return Err(Error::Schema("MIN/MAX over STR unsupported".into()));
                }
                Ok(ty)
            }
        }
    }
}

/// How view rows are locked during maintenance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MaintenanceMode {
    /// The paper's protocol: E locks + commutative deltas.
    Escrow,
    /// The baseline: plain exclusive locks on view rows.
    XLock,
}

/// Where a view's rows come from.
#[derive(Clone, PartialEq, Debug)]
pub enum ViewSource {
    /// `SELECT g..., COUNT_BIG(*), aggs FROM base WHERE p GROUP BY g...`
    Single {
        /// The base table.
        table: ObjectId,
        /// Group-by columns of the base table.
        group_by: Vec<usize>,
    },
    /// `SELECT dim.g..., COUNT_BIG(*), aggs(fact) FROM fact JOIN dim ON
    /// fact[fk] = dim.pk WHERE p(fact) GROUP BY dim.g...`
    Join {
        /// The fact table (aggregated; DML drives maintenance).
        fact: ObjectId,
        /// Column of `fact` holding the dim's primary key.
        fact_fk_col: usize,
        /// The dimension table (probed during maintenance).
        dim: ObjectId,
        /// Group-by columns of the **dim** table.
        dim_group_by: Vec<usize>,
    },
    /// A view over another view: re-aggregates the parent's stored rows.
    /// `SELECT pg..., COUNT_BIG := SUM(parent.count), aggs := SUM(parent
    /// columns) FROM parent GROUP BY pg...` — COUNT_BIG transitively counts
    /// *base* rows (the sum of parent counts), so the ghost invariant
    /// (count 0 ⇒ all sums zero) holds at every level and maintenance stays
    /// linear in the parent's deltas. Maintained by the cascade queue, not
    /// by base DML.
    Derived {
        /// The parent view.
        parent: ViewId,
        /// Group-by positions **into the parent's group columns**. Empty
        /// means a global rollup — stored under one synthetic constant
        /// `Int(0)` group column (the empty key is reserved as the B-tree's
        /// leftmost fence and cannot name a row).
        group_by: Vec<usize>,
    },
}

/// What a user supplies to `create_indexed_view`.
#[derive(Clone, Debug)]
pub struct ViewSpec {
    /// View name (unique).
    pub name: String,
    /// Row source (single table or fact-join-dim).
    pub source: ViewSource,
    /// Aggregate columns (COUNT_BIG(*) is implicit).
    pub aggs: Vec<AggSpec>,
    /// Filter over base/fact rows.
    pub filter: Predicate,
    /// Requested locking protocol. Views containing MIN/MAX are forced to
    /// `XLock` regardless (the paper's restriction).
    pub maintenance: MaintenanceMode,
    /// Deferred views are not maintained by DML; they are refreshed in bulk
    /// (the E6 baseline).
    pub deferred: bool,
    /// E7 ablation: physically delete a group row inside the user
    /// transaction when its count reaches zero (requires an E→X conversion,
    /// which deadlocks with concurrent escrow holders) instead of leaving
    /// an invisible row for asynchronous ghost cleanup.
    pub eager_group_delete: bool,
}

/// A table in the catalog.
#[derive(Clone, Debug)]
pub struct TableDef {
    /// Object id.
    pub id: ObjectId,
    /// Name (unique).
    pub name: String,
    /// Row schema (with primary-key columns).
    pub schema: Schema,
    /// The clustered index (rows live in its leaves, keyed by PK).
    pub index: IndexId,
    /// Root page of the clustered index.
    pub root: PageId,
}

/// A secondary index on a base table.
///
/// Non-unique entries are keyed by `(indexed columns..., pk columns...)` so
/// duplicates stay distinct; unique entries are keyed by the indexed
/// columns alone. Entry values hold the encoded primary-key values for the
/// back-probe into the clustered index.
#[derive(Clone, Debug)]
pub struct SecondaryIndexDef {
    /// Index name (unique).
    pub name: String,
    /// The base table.
    pub table: ObjectId,
    /// Indexed column positions, in key order.
    pub cols: Vec<usize>,
    /// Enforce uniqueness of the indexed columns.
    pub unique: bool,
    /// The index's B-tree.
    pub index: IndexId,
    /// Root page.
    pub root: PageId,
}

/// An indexed view in the catalog.
#[derive(Clone, Debug)]
pub struct ViewDef {
    /// View id.
    pub id: ViewId,
    /// Object id (for object-level locks).
    pub object: ObjectId,
    /// Name (unique).
    pub name: String,
    /// Row source.
    pub source: ViewSource,
    /// Aggregates (after COUNT_BIG).
    pub aggs: Vec<AggSpec>,
    /// Filter.
    pub filter: Predicate,
    /// Effective maintenance mode.
    pub maintenance: MaintenanceMode,
    /// Deferred-maintenance flag.
    pub deferred: bool,
    /// E7 ablation: eager in-transaction deletion of emptied groups.
    pub eager_group_delete: bool,
    /// The view's B-tree index.
    pub index: IndexId,
    /// Root page of the view index.
    pub root: PageId,
    /// Types of the group-by columns (for decoding view keys).
    pub group_types: Vec<ValueType>,
    /// Optional hash point-read fast path: `(index id, directory page)` of
    /// a redo-logged hash index mirroring every visible view row. The
    /// B-tree stays the ordered/scan authority; the hash only accelerates
    /// point reads on hot groups.
    pub hash: Option<(IndexId, PageId)>,
}

impl ViewDef {
    /// Number of stored aggregate columns (count + user aggregates).
    pub fn stored_agg_count(&self) -> usize {
        1 + self.aggs.len()
    }

    /// True if maintained with escrow locks.
    pub fn is_escrow(&self) -> bool {
        self.maintenance == MaintenanceMode::Escrow
    }
}

/// The catalog: name → definition maps plus id allocation.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, TableDef>,
    views: HashMap<String, ViewDef>,
    indexes: HashMap<String, SecondaryIndexDef>,
    next_object: u32,
    next_index: u32,
    next_view: u32,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Allocate an object id.
    pub fn alloc_object(&mut self) -> ObjectId {
        self.next_object += 1;
        ObjectId(self.next_object)
    }

    /// Allocate an index id.
    pub fn alloc_index(&mut self) -> IndexId {
        self.next_index += 1;
        IndexId(self.next_index)
    }

    /// Allocate a view id.
    pub fn alloc_view(&mut self) -> ViewId {
        self.next_view += 1;
        ViewId(self.next_view)
    }

    /// Register a table.
    pub fn add_table(&mut self, def: TableDef) -> Result<()> {
        if self.tables.contains_key(&def.name) {
            return Err(Error::Schema(format!("table '{}' exists", def.name)));
        }
        self.tables.insert(def.name.clone(), def);
        Ok(())
    }

    /// Register a view.
    pub fn add_view(&mut self, def: ViewDef) -> Result<()> {
        if self.views.contains_key(&def.name) {
            return Err(Error::Schema(format!("view '{}' exists", def.name)));
        }
        self.views.insert(def.name.clone(), def);
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::Schema(format!("unknown table '{name}'")))
    }

    /// Look up a table by id.
    pub fn table_by_id(&self, id: ObjectId) -> Result<&TableDef> {
        self.tables
            .values()
            .find(|t| t.id == id)
            .ok_or_else(|| Error::Schema(format!("unknown table id {id:?}")))
    }

    /// Look up a view by name.
    pub fn view(&self, name: &str) -> Result<&ViewDef> {
        self.views
            .get(name)
            .ok_or_else(|| Error::Schema(format!("unknown view '{name}'")))
    }

    /// Look up a view by name, mutably (DDL that amends a view in place,
    /// e.g. attaching the hash point-read index).
    pub fn view_mut(&mut self, name: &str) -> Result<&mut ViewDef> {
        self.views
            .get_mut(name)
            .ok_or_else(|| Error::Schema(format!("unknown view '{name}'")))
    }

    /// Register a secondary index.
    pub fn add_index(&mut self, def: SecondaryIndexDef) -> Result<()> {
        if self.indexes.contains_key(&def.name) {
            return Err(Error::Schema(format!("index '{}' exists", def.name)));
        }
        self.indexes.insert(def.name.clone(), def);
        Ok(())
    }

    /// Look up a secondary index by name.
    pub fn index(&self, name: &str) -> Result<&SecondaryIndexDef> {
        self.indexes
            .get(name)
            .ok_or_else(|| Error::Schema(format!("unknown index '{name}'")))
    }

    /// Secondary indexes of one table.
    pub fn indexes_on(&self, table: ObjectId) -> Vec<&SecondaryIndexDef> {
        self.indexes.values().filter(|i| i.table == table).collect()
    }

    /// All secondary indexes (diagnostics).
    pub fn indexes(&self) -> impl Iterator<Item = &SecondaryIndexDef> {
        self.indexes.values()
    }

    /// All views whose maintenance is driven by DML on `table` (single-table
    /// views on it, plus join views whose *fact* side is it).
    pub fn views_on(&self, table: ObjectId) -> Vec<&ViewDef> {
        self.views
            .values()
            .filter(|v| match &v.source {
                ViewSource::Single { table: t, .. } => *t == table,
                ViewSource::Join { fact, .. } => *fact == table,
                ViewSource::Derived { .. } => false,
            })
            .collect()
    }

    /// Look up a view by id.
    pub fn view_by_id(&self, id: ViewId) -> Result<&ViewDef> {
        self.views
            .values()
            .find(|v| v.id == id)
            .ok_or_else(|| Error::Schema(format!("unknown view id {id:?}")))
    }

    /// All derived views whose parent is `parent` (the DAG's child edges).
    pub fn views_deriving(&self, parent: ViewId) -> Vec<&ViewDef> {
        self.views
            .values()
            .filter(|v| matches!(&v.source, ViewSource::Derived { parent: p, .. } if *p == parent))
            .collect()
    }

    /// All join views that use `table` as their dimension side (their fact
    /// maintenance probes it; its own DML is therefore restricted).
    pub fn views_with_dim(&self, table: ObjectId) -> Vec<&ViewDef> {
        self.views
            .values()
            .filter(|v| matches!(&v.source, ViewSource::Join { dim, .. } if *dim == table))
            .collect()
    }

    /// All tables (diagnostics).
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    /// All views (diagnostics).
    pub fn views(&self) -> impl Iterator<Item = &ViewDef> {
        self.views.values()
    }
}

// ---- persistence -----------------------------------------------------

impl Predicate {
    fn encode(&self, w: &mut Writer) {
        match self {
            Predicate::True => {
                w.u8(0);
            }
            Predicate::Cmp { col, op, value } => {
                w.u8(1).u16(*col as u16).u8(match op {
                    CmpOp::Eq => 0,
                    CmpOp::Ne => 1,
                    CmpOp::Lt => 2,
                    CmpOp::Le => 3,
                    CmpOp::Gt => 4,
                    CmpOp::Ge => 5,
                });
                value.encode(w);
            }
            Predicate::And(a, b) => {
                w.u8(2);
                a.encode(w);
                b.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Predicate> {
        Ok(match r.u8()? {
            0 => Predicate::True,
            1 => {
                let col = r.u16()? as usize;
                let op = match r.u8()? {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Lt,
                    3 => CmpOp::Le,
                    4 => CmpOp::Gt,
                    5 => CmpOp::Ge,
                    t => return Err(Error::corruption(format!("bad cmp op {t}"))),
                };
                Predicate::Cmp { col, op, value: Value::decode(r)? }
            }
            2 => Predicate::And(Box::new(Predicate::decode(r)?), Box::new(Predicate::decode(r)?)),
            t => return Err(Error::corruption(format!("bad predicate tag {t}"))),
        })
    }
}

fn encode_agg(a: &AggSpec, w: &mut Writer) {
    match a {
        AggSpec::SumInt { col } => w.u8(0).u16(*col as u16),
        AggSpec::SumFloat { col } => w.u8(1).u16(*col as u16),
        AggSpec::Min { col } => w.u8(2).u16(*col as u16),
        AggSpec::Max { col } => w.u8(3).u16(*col as u16),
        AggSpec::Avg { col, float } => {
            w.u8(4).u16(*col as u16).bool(*float)
        }
    };
}

fn decode_agg(r: &mut Reader<'_>) -> Result<AggSpec> {
    let tag = r.u8()?;
    let col = r.u16()? as usize;
    Ok(match tag {
        0 => AggSpec::SumInt { col },
        1 => AggSpec::SumFloat { col },
        2 => AggSpec::Min { col },
        3 => AggSpec::Max { col },
        4 => AggSpec::Avg { col, float: r.bool()? },
        t => return Err(Error::corruption(format!("bad agg tag {t}"))),
    })
}

fn encode_vt(t: ValueType) -> u8 {
    match t {
        ValueType::Int => 1,
        ValueType::Float => 2,
        ValueType::Str => 3,
    }
}

fn decode_vt(b: u8) -> Result<ValueType> {
    Ok(match b {
        1 => ValueType::Int,
        2 => ValueType::Float,
        3 => ValueType::Str,
        t => return Err(Error::corruption(format!("bad value type {t}"))),
    })
}

impl Catalog {
    /// Serialize the full catalog (DDL state) for the sidecar file.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(256);
        w.u32(self.next_object).u32(self.next_index).u32(self.next_view);
        w.u32(self.tables.len() as u32);
        let mut tables: Vec<_> = self.tables.values().collect();
        tables.sort_by_key(|t| t.id);
        for t in tables {
            w.u32(t.id.0).str(&t.name);
            t.schema.encode(&mut w);
            w.u32(t.index.0).page(t.root);
        }
        w.u32(self.views.len() as u32);
        let mut views: Vec<_> = self.views.values().collect();
        views.sort_by_key(|v| v.id);
        for v in views {
            w.u32(v.id.0).u32(v.object.0).str(&v.name);
            match &v.source {
                ViewSource::Single { table, group_by } => {
                    w.u8(0).u32(table.0).u16(group_by.len() as u16);
                    for &g in group_by {
                        w.u16(g as u16);
                    }
                }
                ViewSource::Join { fact, fact_fk_col, dim, dim_group_by } => {
                    w.u8(1).u32(fact.0).u16(*fact_fk_col as u16).u32(dim.0);
                    w.u16(dim_group_by.len() as u16);
                    for &g in dim_group_by {
                        w.u16(g as u16);
                    }
                }
                ViewSource::Derived { parent, group_by } => {
                    w.u8(2).u32(parent.0).u16(group_by.len() as u16);
                    for &g in group_by {
                        w.u16(g as u16);
                    }
                }
            }
            w.u16(v.aggs.len() as u16);
            for a in &v.aggs {
                encode_agg(a, &mut w);
            }
            v.filter.encode(&mut w);
            w.u8(match v.maintenance {
                MaintenanceMode::Escrow => 0,
                MaintenanceMode::XLock => 1,
            });
            w.bool(v.deferred).bool(v.eager_group_delete);
            w.u32(v.index.0).page(v.root);
            w.u16(v.group_types.len() as u16);
            for &t in &v.group_types {
                w.u8(encode_vt(t));
            }
            match v.hash {
                None => {
                    w.u8(0);
                }
                Some((idx, dir)) => {
                    w.u8(1).u32(idx.0).page(dir);
                }
            }
        }
        w.u32(self.indexes.len() as u32);
        let mut indexes: Vec<_> = self.indexes.values().collect();
        indexes.sort_by_key(|i| i.index);
        for i in indexes {
            w.str(&i.name).u32(i.table.0);
            w.u16(i.cols.len() as u16);
            for &c in &i.cols {
                w.u16(c as u16);
            }
            w.bool(i.unique).u32(i.index.0).page(i.root);
        }
        w.into_bytes()
    }

    /// Deserialize a catalog produced by [`Catalog::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Catalog> {
        let mut r = Reader::new(bytes);
        let mut cat = Catalog::new();
        cat.next_object = r.u32()?;
        cat.next_index = r.u32()?;
        cat.next_view = r.u32()?;
        let nt = r.u32()? as usize;
        for _ in 0..nt {
            let id = ObjectId(r.u32()?);
            let name = r.str()?.to_owned();
            let schema = Schema::decode(&mut r)?;
            let index = IndexId(r.u32()?);
            let root = r.page()?;
            cat.tables.insert(name.clone(), TableDef { id, name, schema, index, root });
        }
        let nv = r.u32()? as usize;
        for _ in 0..nv {
            let id = ViewId(r.u32()?);
            let object = ObjectId(r.u32()?);
            let name = r.str()?.to_owned();
            let source = match r.u8()? {
                0 => {
                    let table = ObjectId(r.u32()?);
                    let n = r.u16()? as usize;
                    let mut group_by = Vec::with_capacity(n);
                    for _ in 0..n {
                        group_by.push(r.u16()? as usize);
                    }
                    ViewSource::Single { table, group_by }
                }
                1 => {
                    let fact = ObjectId(r.u32()?);
                    let fact_fk_col = r.u16()? as usize;
                    let dim = ObjectId(r.u32()?);
                    let n = r.u16()? as usize;
                    let mut dim_group_by = Vec::with_capacity(n);
                    for _ in 0..n {
                        dim_group_by.push(r.u16()? as usize);
                    }
                    ViewSource::Join { fact, fact_fk_col, dim, dim_group_by }
                }
                2 => {
                    let parent = ViewId(r.u32()?);
                    let n = r.u16()? as usize;
                    let mut group_by = Vec::with_capacity(n);
                    for _ in 0..n {
                        group_by.push(r.u16()? as usize);
                    }
                    ViewSource::Derived { parent, group_by }
                }
                t => return Err(Error::corruption(format!("bad view source tag {t}"))),
            };
            let na = r.u16()? as usize;
            let mut aggs = Vec::with_capacity(na);
            for _ in 0..na {
                aggs.push(decode_agg(&mut r)?);
            }
            let filter = Predicate::decode(&mut r)?;
            let maintenance = match r.u8()? {
                0 => MaintenanceMode::Escrow,
                _ => MaintenanceMode::XLock,
            };
            let deferred = r.bool()?;
            let eager_group_delete = r.bool()?;
            let index = IndexId(r.u32()?);
            let root = r.page()?;
            let ng = r.u16()? as usize;
            let mut group_types = Vec::with_capacity(ng);
            for _ in 0..ng {
                group_types.push(decode_vt(r.u8()?)?);
            }
            let hash = match r.u8()? {
                0 => None,
                1 => Some((IndexId(r.u32()?), r.page()?)),
                t => return Err(Error::corruption(format!("bad hash tag {t}"))),
            };
            cat.views.insert(
                name.clone(),
                ViewDef {
                    id,
                    object,
                    name,
                    source,
                    aggs,
                    filter,
                    maintenance,
                    deferred,
                    eager_group_delete,
                    index,
                    root,
                    group_types,
                    hash,
                },
            );
        }
        let ni = r.u32()? as usize;
        for _ in 0..ni {
            let name = r.str()?.to_owned();
            let table = ObjectId(r.u32()?);
            let nc = r.u16()? as usize;
            let mut cols = Vec::with_capacity(nc);
            for _ in 0..nc {
                cols.push(r.u16()? as usize);
            }
            let unique = r.bool()?;
            let index = IndexId(r.u32()?);
            let root = r.page()?;
            cat.indexes.insert(
                name.clone(),
                SecondaryIndexDef { name, table, cols, unique, index, root },
            );
        }
        Ok(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_common::row;
    use txview_common::schema::Column;

    fn base_schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("grp", ValueType::Int),
                Column::new("amount", ValueType::Int),
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn predicate_eval() {
        let r = row![1i64, 5i64, 100i64];
        let p = Predicate::Cmp { col: 2, op: CmpOp::Ge, value: Value::Int(50) };
        assert!(p.eval(&r));
        let p2 = Predicate::And(
            Box::new(p),
            Box::new(Predicate::Cmp { col: 1, op: CmpOp::Eq, value: Value::Int(6) }),
        );
        assert!(!p2.eval(&r));
        assert!(Predicate::True.eval(&r));
    }

    #[test]
    fn predicate_null_is_false() {
        let mut r = row![1i64];
        r.push(Value::Null);
        let p = Predicate::Cmp { col: 1, op: CmpOp::Eq, value: Value::Int(1) };
        assert!(!p.eval(&r));
        let p = Predicate::Cmp { col: 1, op: CmpOp::Ne, value: Value::Int(1) };
        assert!(!p.eval(&r), "NULL != x is unknown, not true");
    }

    #[test]
    fn agg_spec_classification() {
        assert!(AggSpec::SumInt { col: 1 }.is_escrow_capable());
        assert!(AggSpec::SumFloat { col: 1 }.is_escrow_capable());
        assert!(!AggSpec::Min { col: 1 }.is_escrow_capable());
        assert!(!AggSpec::Max { col: 1 }.is_escrow_capable());
        let s = base_schema();
        assert_eq!(AggSpec::SumInt { col: 2 }.stored_type(&s).unwrap(), ValueType::Int);
        assert_eq!(AggSpec::Min { col: 2 }.stored_type(&s).unwrap(), ValueType::Int);
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut c = Catalog::new();
        let id = c.alloc_object();
        let index = c.alloc_index();
        c.add_table(TableDef {
            id,
            name: "t".into(),
            schema: base_schema(),
            index,
            root: PageId(1),
        })
        .unwrap();
        assert_eq!(c.table("t").unwrap().id, id);
        assert!(c.table("nope").is_err());
        let dup_id = c.alloc_object();
        assert!(c
            .add_table(TableDef {
                id: dup_id,
                name: "t".into(),
                schema: base_schema(),
                index: IndexId(9),
                root: PageId(2),
            })
            .is_err());
    }

    #[test]
    fn views_on_filters_by_source() {
        let mut c = Catalog::new();
        let t1 = c.alloc_object();
        let t2 = c.alloc_object();
        let mk = |c: &mut Catalog, name: &str, source: ViewSource| ViewDef {
            id: c.alloc_view(),
            object: c.alloc_object(),
            name: name.into(),
            source,
            aggs: vec![],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
            index: c.alloc_index(),
            root: PageId(1),
            group_types: vec![ValueType::Int],
            hash: None,
        };
        let v1 = mk(&mut c, "v1", ViewSource::Single { table: t1, group_by: vec![1] });
        let v2 = mk(
            &mut c,
            "v2",
            ViewSource::Join { fact: t1, fact_fk_col: 1, dim: t2, dim_group_by: vec![1] },
        );
        c.add_view(v1).unwrap();
        c.add_view(v2).unwrap();
        assert_eq!(c.views_on(t1).len(), 2);
        assert_eq!(c.views_on(t2).len(), 0);
        assert_eq!(c.views_with_dim(t2).len(), 1);
    }

    #[test]
    fn derived_views_roundtrip_and_resolve() {
        let mut c = Catalog::new();
        let t1 = c.alloc_object();
        let index = c.alloc_index();
        c.add_table(TableDef {
            id: t1,
            name: "t".into(),
            schema: base_schema(),
            index,
            root: PageId(1),
        })
        .unwrap();
        let parent = ViewDef {
            id: c.alloc_view(),
            object: c.alloc_object(),
            name: "v".into(),
            source: ViewSource::Single { table: t1, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
            index: c.alloc_index(),
            root: PageId(2),
            group_types: vec![ValueType::Int],
            hash: None,
        };
        let pid = parent.id;
        let child = ViewDef {
            id: c.alloc_view(),
            object: c.alloc_object(),
            name: "rollup".into(),
            source: ViewSource::Derived { parent: pid, group_by: vec![] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
            index: c.alloc_index(),
            root: PageId(3),
            group_types: vec![ValueType::Int],
            hash: None,
        };
        let cid = child.id;
        c.add_view(parent).unwrap();
        c.add_view(child).unwrap();
        // Derived views are not maintained by base DML.
        assert_eq!(c.views_on(t1).len(), 1);
        assert_eq!(c.views_deriving(pid).len(), 1);
        assert_eq!(c.views_deriving(cid).len(), 0);
        assert_eq!(c.view_by_id(cid).unwrap().name, "rollup");
        // Persistence: tag-2 sources survive the sidecar roundtrip.
        let decoded = Catalog::decode(&c.encode()).unwrap();
        match &decoded.view("rollup").unwrap().source {
            ViewSource::Derived { parent, group_by } => {
                assert_eq!(*parent, pid);
                assert!(group_by.is_empty());
            }
            other => panic!("expected Derived source, got {other:?}"),
        }
        assert_eq!(decoded.views_deriving(pid).len(), 1);
    }
}
