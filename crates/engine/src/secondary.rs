//! Secondary indexes on base tables: DDL, DML maintenance, and reads.
//!
//! Entry layout:
//!
//! * **non-unique** — key = `(indexed cols..., pk cols...)`, value = encoded
//!   pk values (the back-probe target, stored redundantly for simple
//!   decoding);
//! * **unique** — key = `(indexed cols...)`, value = encoded pk values.
//!
//! Maintenance mirrors the base row's life cycle (insert → entry insert,
//! delete → entry ghost, update → ghost old + insert new when indexed
//! columns move), uses the same generic logical-undo descriptors the view
//! machinery uses, and feeds the same ghost-cleanup queue.

use crate::catalog::SecondaryIndexDef;
use crate::db::Database;
use txview_btree::{LogCtx, OpLog, Tree};
use txview_common::{Error, Key, Result, Row, Value};
use txview_lock::{LockMode, LockName};
use txview_txn::{IsolationLevel, Transaction};
use txview_wal::record::UndoOp;

impl Database {
    /// Create a secondary index on `table` over `cols`, populated from the
    /// existing rows. DDL is quiesced, like view creation.
    pub fn create_index(
        &self,
        name: &str,
        table: &str,
        cols: &[usize],
        unique: bool,
    ) -> Result<()> {
        let def = {
            let mut cat = self.catalog.write();
            let t = cat.table(table)?.clone();
            for &c in cols {
                if c >= t.schema.arity() {
                    return Err(Error::Schema(format!("index column {c} out of range")));
                }
            }
            let index = cat.alloc_index();
            let tree = Tree::create(self.pool(), self.log(), index)?;
            let def = SecondaryIndexDef {
                name: name.to_string(),
                table: t.id,
                cols: cols.to_vec(),
                unique,
                index,
                root: tree.root(),
            };
            cat.add_index(def.clone())?;
            self.register_tree(index, tree);
            def
        };
        // Populate from the current base rows.
        let base = {
            let cat = self.catalog.read();
            cat.table_by_id(def.table)?.clone()
        };
        let base_tree = self.tree(base.index)?;
        let (items, _) = base_tree.scan(None, None, false)?;
        let mut txn = self.begin(IsolationLevel::ReadCommitted);
        let tree = self.tree(def.index)?;
        for item in items {
            let row = Row::from_bytes(&item.value)?;
            let (key, value) = entry_for(&def, &base.schema, &row);
            let mut ctx = LogCtx { log: self.log(), txn: txn.id, last_lsn: &mut txn.last_lsn };
            tree.insert(&key, &value, &mut ctx, &OpLog::Update { undo: UndoOp::None })
                .map_err(|e| match e {
                    Error::DuplicateKey(k) => {
                        Error::Schema(format!("unique index '{name}' violated at {k}"))
                    }
                    other => other,
                })?;
        }
        self.txns.commit(&mut txn)?;
        self.checkpoint()?;
        self.persist_catalog_pub()?;
        Ok(())
    }

    /// Maintain all secondary indexes of `table` for one DML statement.
    pub(crate) fn maintain_secondary(
        &self,
        txn: &mut Transaction,
        table: &crate::catalog::TableDef,
        new: Option<&Row>,
        old: Option<&Row>,
    ) -> Result<()> {
        let defs: Vec<SecondaryIndexDef> = {
            let cat = self.catalog.read();
            cat.indexes_on(table.id).into_iter().cloned().collect()
        };
        for def in &defs {
            match (old, new) {
                (None, Some(n)) => self.secondary_insert(txn, def, table, n)?,
                (Some(o), None) => self.secondary_delete(txn, def, table, o)?,
                (Some(o), Some(n)) => {
                    let moved = def.cols.iter().any(|&c| o.get(c) != n.get(c));
                    if moved {
                        self.secondary_delete(txn, def, table, o)?;
                        self.secondary_insert(txn, def, table, n)?;
                    }
                }
                (None, None) => {}
            }
        }
        Ok(())
    }

    fn secondary_insert(
        &self,
        txn: &mut Transaction,
        def: &SecondaryIndexDef,
        table: &crate::catalog::TableDef,
        row: &Row,
    ) -> Result<()> {
        let (key, value) = entry_for(def, &table.schema, row);
        let kb = key.as_bytes().to_vec();
        let tree = self.tree(def.index)?;
        self.locks.acquire(txn.id, LockName::key(def.index, kb.clone()), LockMode::X)?;
        match tree.get(&key)? {
            Some((false, _)) => {
                // A live entry can only collide on a unique index (the
                // non-unique key embeds the pk, which the base insert
                // already proved fresh).
                Err(Error::DuplicateKey(format!("unique index '{}' at {key:?}", def.name)))
            }
            Some((true, old_value)) => {
                // Revive a ghost entry: restore-both-halves undo, exactly
                // like the base-table revive path.
                let prev = txn.last_lsn;
                let undo_val =
                    UndoOp::IndexUpdate { index: def.index, key: kb.clone(), old_row: old_value };
                {
                    let mut ctx =
                        LogCtx { log: self.log(), txn: txn.id, last_lsn: &mut txn.last_lsn };
                    tree.update_value(&key, &value, &mut ctx, &OpLog::Update { undo: undo_val.clone() })?;
                }
                txn.push_undo(undo_val, prev);
                let prev = txn.last_lsn;
                let undo_flag = UndoOp::IndexInsert { index: def.index, key: kb };
                {
                    let mut ctx =
                        LogCtx { log: self.log(), txn: txn.id, last_lsn: &mut txn.last_lsn };
                    tree.set_ghost(&key, false, &mut ctx, &OpLog::Update { undo: undo_flag.clone() })?;
                }
                txn.push_undo(undo_flag, prev);
                Ok(())
            }
            None => {
                // Instant insert-intention gap lock: conflicts with any
                // serializable reader holding the target range.
                let gap = self.gap_after(&tree, def.index, &key)?;
                self.locks.acquire(txn.id, gap.clone(), LockMode::X)?;
                let prev = txn.last_lsn;
                let undo = UndoOp::IndexInsert { index: def.index, key: kb };
                {
                    let mut ctx =
                        LogCtx { log: self.log(), txn: txn.id, last_lsn: &mut txn.last_lsn };
                    tree.insert(&key, &value, &mut ctx, &OpLog::Update { undo: undo.clone() })?;
                }
                txn.push_undo(undo, prev);
                self.locks.release(txn.id, &gap);
                Ok(())
            }
        }
    }

    fn secondary_delete(
        &self,
        txn: &mut Transaction,
        def: &SecondaryIndexDef,
        table: &crate::catalog::TableDef,
        row: &Row,
    ) -> Result<()> {
        let (key, _) = entry_for(def, &table.schema, row);
        let kb = key.as_bytes().to_vec();
        let tree = self.tree(def.index)?;
        self.locks.acquire(txn.id, LockName::key(def.index, kb.clone()), LockMode::X)?;
        let entry_value = match tree.get(&key)? {
            Some((false, v)) => v,
            _ => {
                return Err(Error::corruption(format!(
                    "secondary index '{}' missing entry {key:?}",
                    def.name
                )))
            }
        };
        let prev = txn.last_lsn;
        let undo = UndoOp::IndexDelete { index: def.index, key: kb.clone(), row: entry_value };
        {
            let mut ctx = LogCtx { log: self.log(), txn: txn.id, last_lsn: &mut txn.last_lsn };
            tree.set_ghost(&key, true, &mut ctx, &OpLog::Update { undo: undo.clone() })?;
        }
        txn.push_undo(undo, prev);
        self.enqueue_ghost(def.index, kb);
        Ok(())
    }

    /// Look up base rows through a secondary index: all live rows whose
    /// indexed columns equal `values`. Takes short S locks on the entries
    /// and the base rows (long for serializable transactions).
    pub fn get_by_index(
        &self,
        txn: &mut Transaction,
        index_name: &str,
        values: &[Value],
    ) -> Result<Vec<Row>> {
        let def = self.catalog.read().index(index_name)?.clone();
        let table = {
            let cat = self.catalog.read();
            cat.table_by_id(def.table)?.clone()
        };
        if values.len() != def.cols.len() {
            return Err(Error::Schema(format!(
                "index '{index_name}' expects {} values",
                def.cols.len()
            )));
        }
        let tree = self.tree(def.index)?;
        let lo = Key::from_values(values);
        let hi = lo.prefix_upper_bound();
        let serializable = txn.isolation == IsolationLevel::Serializable;
        let (items, next_key) = tree.scan(Some(&lo), hi.as_ref(), false)?;
        let mut out = Vec::new();
        for item in items {
            let name = LockName::key(def.index, item.key.clone());
            self.locks.acquire(txn.id, name.clone(), LockMode::S)?;
            if serializable {
                // Key-range protection: the gap before each probed entry.
                self.locks
                    .acquire(txn.id, LockName::gap(def.index, item.key.clone()), LockMode::S)?;
            }
            // Re-read the entry under the lock, then back-probe the base.
            let ekey = Key::from_bytes(item.key.clone());
            if let Some((false, pk_bytes)) = tree.get(&ekey)? {
                let pk_row = Row::from_bytes(&pk_bytes)?;
                if let Some(row) = self.get_row(txn, &table.name, pk_row.values())? {
                    out.push(row);
                }
            }
            if !serializable {
                self.locks.release(txn.id, &name);
            }
        }
        if serializable {
            // Phantom-protect the probed range.
            let end = match next_key {
                Some(k) => LockName::gap(def.index, k),
                None => LockName::EndGap(def.index),
            };
            self.locks.acquire(txn.id, end, LockMode::S)?;
        }
        Ok(out)
    }

    /// Verify a secondary index against its base table (quiesced).
    pub fn verify_index(&self, index_name: &str) -> Result<()> {
        let def = self.catalog.read().index(index_name)?.clone();
        let table = {
            let cat = self.catalog.read();
            cat.table_by_id(def.table)?.clone()
        };
        let base_tree = self.tree(table.index)?;
        let tree = self.tree(def.index)?;
        let (base_items, _) = base_tree.scan(None, None, false)?;
        let mut expected = std::collections::BTreeMap::new();
        for item in base_items {
            let row = Row::from_bytes(&item.value)?;
            let (key, value) = entry_for(&def, &table.schema, &row);
            if expected.insert(key.as_bytes().to_vec(), value).is_some() {
                return Err(Error::corruption(format!(
                    "base rows collide in index '{index_name}'"
                )));
            }
        }
        let (entries, _) = tree.scan(None, None, false)?;
        if entries.len() != expected.len() {
            return Err(Error::corruption(format!(
                "index '{index_name}' has {} live entries, expected {}",
                entries.len(),
                expected.len()
            )));
        }
        for e in entries {
            match expected.get(&e.key) {
                Some(v) if *v == e.value => {}
                _ => {
                    return Err(Error::corruption(format!(
                        "index '{index_name}' entry mismatch at {:?}",
                        Key::from_bytes(e.key)
                    )))
                }
            }
        }
        Ok(())
    }
}

/// Build the (key, value) pair of a secondary-index entry.
pub(crate) fn entry_for(
    def: &SecondaryIndexDef,
    schema: &txview_common::schema::Schema,
    row: &Row,
) -> (Key, Vec<u8>) {
    let mut key_vals: Vec<Value> = def.cols.iter().map(|&c| row.get(c).clone()).collect();
    let pk_vals = schema.pk_values(row);
    if !def.unique {
        key_vals.extend(pk_vals.iter().cloned());
    }
    let key = Key::from_values(&key_vals);
    let value = Row::new(pk_vals).to_bytes();
    (key, value)
}
