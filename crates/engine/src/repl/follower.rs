//! Read-only follower: make shipped frames durable in its own log, replay
//! them through the same redo path crash recovery uses, and advance a
//! replay watermark that bounds what its snapshot reads can see.
//!
//! The follower's whole life is the recovery invariant run incrementally:
//! frame bytes hit its durable log *before* any page is touched
//! (WAL-before-data holds trivially), redo is pageLSN-gated (duplicated
//! frames re-apply nothing), and a mirrored checkpoint record triggers the
//! same flush-pages-then-advance-master discipline the leader used — which
//! is exactly what makes *promotion* (ordinary ARIES recovery over the
//! shipped prefix) sound.

use super::channel::ReplChannel;
use super::frame::{Frame, Message};
use super::ReplConfig;
use crate::db::Database;
use crate::torture;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::codec::checksum64;
use txview_common::obs::{Histogram, Snapshot};
use txview_common::{Lsn, Result};
use txview_storage::fault::{FaultClock, FaultDisk};
use txview_wal::recovery::{redo_record, RecoveryReport};
use txview_wal::{FaultLogStore, LogRecord, LogStore, RecordBody};

/// What the follower did with one ingested message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The frame was the next expected one: made durable and replayed.
    Applied,
    /// Out of order; buffered until the gap fills (or dropped if the
    /// buffer is full — retransmit recovers it).
    Buffered,
    /// Entirely at or below the watermark; skipped.
    Duplicate,
    /// Frame checksum failed (torn in transit); dropped.
    Torn,
    /// Stale epoch: the sender has been superseded; nacked.
    StaleRejected,
    /// A full snapshot was installed and replayed.
    SnapshotInstalled,
    /// Control message or otherwise nothing to do.
    Ignored,
}

/// One read-only follower: its own fault-injected disk + log store +
/// database, fed exclusively by the replication channel.
pub struct Follower {
    cfg: ReplConfig,
    clock: Arc<FaultClock>,
    disk: FaultDisk,
    store: FaultLogStore,
    db: Arc<Database>,
    catalog: Vec<u8>,
    /// LSN of the last record replayed; reads serve snapshots at or below
    /// this.
    watermark: Lsn,
    /// Byte length of the follower's durable log (== the leader offset the
    /// next frame must start at).
    durable_len: u64,
    /// Current replication epoch (leader term) as persisted in the store.
    epoch: u64,
    /// Out-of-order frames keyed by `first_lsn`, waiting for the gap.
    reorder_buf: BTreeMap<u64, Frame>,
    /// Consecutive drains that delivered nothing; triggers a `Hello`.
    idle_drains: u32,
    promoted: bool,
    frames_applied: AtomicU64,
    records_applied: AtomicU64,
    records_skipped: AtomicU64,
    dup_frames: AtomicU64,
    torn_frames: AtomicU64,
    buffered_frames: AtomicU64,
    buffer_drops: AtomicU64,
    stale_rejects: AtomicU64,
    snapshots_installed: AtomicU64,
    checkpoints_mirrored: AtomicU64,
    acks_sent: AtomicU64,
    hellos_sent: AtomicU64,
    apply_records_hist: Histogram,
}

impl Follower {
    /// Fresh empty follower for a leader whose DDL state is `catalog`.
    pub fn new(cfg: ReplConfig, catalog: Vec<u8>) -> Result<Follower> {
        let clock = FaultClock::new();
        let disk = FaultDisk::new(Arc::clone(&clock));
        let store = FaultLogStore::new(Arc::clone(&clock));
        let db = Database::with_parts(
            Arc::new(disk.clone()),
            Box::new(store.clone()),
            cfg.pool_pages,
            Duration::from_secs(2),
        )?;
        db.load_catalog(&catalog)?;
        db.set_metrics_ticks(clock.events_handle());
        Ok(Follower {
            cfg,
            clock,
            disk,
            store,
            db,
            catalog,
            watermark: Lsn::NULL,
            durable_len: 0,
            epoch: 0,
            reorder_buf: BTreeMap::new(),
            idle_drains: 0,
            promoted: false,
            frames_applied: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            records_skipped: AtomicU64::new(0),
            dup_frames: AtomicU64::new(0),
            torn_frames: AtomicU64::new(0),
            buffered_frames: AtomicU64::new(0),
            buffer_drops: AtomicU64::new(0),
            stale_rejects: AtomicU64::new(0),
            snapshots_installed: AtomicU64::new(0),
            checkpoints_mirrored: AtomicU64::new(0),
            acks_sent: AtomicU64::new(0),
            hellos_sent: AtomicU64::new(0),
            apply_records_hist: Histogram::default(),
        })
    }

    /// Wrap an *existing* durable state (a restarted old leader's clock,
    /// disk, and log store) as a follower: rebuild by redo-only replay of
    /// whatever its own log holds, then let the first `Hello` negotiate
    /// catch-up — resume if that log is still a clean prefix of the new
    /// leader's, snapshot fallback if it diverged.
    pub fn from_parts(
        cfg: ReplConfig,
        clock: Arc<FaultClock>,
        disk: FaultDisk,
        store: FaultLogStore,
        catalog: Vec<u8>,
    ) -> Result<Follower> {
        let db = Database::with_parts(
            Arc::new(disk.clone()),
            Box::new(store.clone()),
            cfg.pool_pages,
            Duration::from_secs(2),
        )?;
        let hello_after = cfg.hello_after;
        let mut f = Follower {
            cfg,
            clock,
            disk,
            store,
            db,
            catalog,
            watermark: Lsn::NULL,
            durable_len: 0,
            epoch: 0,
            reorder_buf: BTreeMap::new(),
            idle_drains: hello_after,
            promoted: false,
            frames_applied: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            records_skipped: AtomicU64::new(0),
            dup_frames: AtomicU64::new(0),
            torn_frames: AtomicU64::new(0),
            buffered_frames: AtomicU64::new(0),
            buffer_drops: AtomicU64::new(0),
            stale_rejects: AtomicU64::new(0),
            snapshots_installed: AtomicU64::new(0),
            checkpoints_mirrored: AtomicU64::new(0),
            acks_sent: AtomicU64::new(0),
            hellos_sent: AtomicU64::new(0),
            apply_records_hist: Histogram::default(),
        };
        f.epoch = f.store.get_epoch()?;
        f.rebuild()?;
        Ok(f)
    }

    /// The follower's database (read-only until promotion).
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The follower's fault clock (the harness arms crash schedules here).
    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.clock
    }

    /// The follower's log store (the harness checks byte convergence here).
    pub fn store(&self) -> &FaultLogStore {
        &self.store
    }

    /// Replay watermark: LSN of the last record applied.
    pub fn watermark(&self) -> Lsn {
        self.watermark
    }

    /// Durable log length in bytes.
    pub fn durable_len(&self) -> u64 {
        self.durable_len
    }

    /// Current replication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Has this follower been promoted to leader?
    pub fn is_promoted(&self) -> bool {
        self.promoted
    }

    /// Committed-state fingerprint of the follower database (the oracle
    /// compares this against the leader's historical state at the same
    /// watermark).
    pub fn fingerprint(&self) -> Result<Vec<u8>> {
        torture::fingerprint(&self.db)
    }

    /// Ingest one message from the data lane.
    pub fn ingest(&mut self, msg: Message, channel: &ReplChannel) -> Result<IngestOutcome> {
        match msg {
            Message::Frame(frame) => self.ingest_frame(frame, channel),
            Message::Snapshot { epoch, log_bytes, master, catalog } => {
                self.install_snapshot(epoch, log_bytes, master, catalog, channel)
            }
            _ => Ok(IngestOutcome::Ignored),
        }
    }

    fn ingest_frame(&mut self, frame: Frame, channel: &ReplChannel) -> Result<IngestOutcome> {
        // Epoch first: a stale leader's frames must be rejected *before*
        // any content check, and the rejection must reach the sender so it
        // fences itself.
        if frame.epoch < self.epoch {
            self.stale_rejects.fetch_add(1, Ordering::Relaxed);
            channel.send_control(Message::StaleEpoch {
                got: frame.epoch,
                current: self.epoch,
            });
            return Ok(IngestOutcome::StaleRejected);
        }
        if frame.epoch > self.epoch {
            self.store.set_epoch(frame.epoch)?;
            self.epoch = frame.epoch;
        }
        if !frame.verify() {
            self.torn_frames.fetch_add(1, Ordering::Relaxed);
            return Ok(IngestOutcome::Torn);
        }
        if frame.end_lsn <= self.watermark {
            // Entirely replayed already (duplicate or retransmit overlap).
            self.dup_frames.fetch_add(1, Ordering::Relaxed);
            return Ok(IngestOutcome::Duplicate);
        }
        if frame.first_lsn.0 != self.watermark.0 + 1 || frame.start_offset != self.durable_len {
            // A gap (or an overlap that isn't byte-aligned with our log —
            // same remedy): hold it until retransmit fills the hole.
            if self.reorder_buf.len() >= self.cfg.reorder_buffer {
                self.buffer_drops.fetch_add(1, Ordering::Relaxed);
            } else {
                self.buffered_frames.fetch_add(1, Ordering::Relaxed);
                self.reorder_buf.insert(frame.first_lsn.0, frame);
            }
            return Ok(IngestOutcome::Buffered);
        }
        self.apply_frame(&frame)?;
        // The gap the buffered frames were waiting for may just have
        // closed; drain every now-contiguous frame.
        while let Some((&k, _)) = self.reorder_buf.iter().next() {
            if k > self.watermark.0 + 1 {
                break;
            }
            let f = self.reorder_buf.remove(&k).expect("key just observed");
            if f.end_lsn <= self.watermark {
                self.dup_frames.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if f.first_lsn.0 != self.watermark.0 + 1 || f.start_offset != self.durable_len {
                continue; // overlapping stale buffer entry; retransmit covers it
            }
            self.apply_frame(&f)?;
        }
        self.send_ack(channel);
        Ok(IngestOutcome::Applied)
    }

    /// Durability before apply: append+sync the frame bytes into our own
    /// log, then replay each record through the recovery redo path.
    fn apply_frame(&mut self, frame: &Frame) -> Result<()> {
        self.db.log().append_raw_durable(&frame.payload)?;
        self.db.log().note_external_advance(frame.end_lsn);
        let mut off = 0usize;
        let mut applied = 0u64;
        while let Some((rec, used)) = LogRecord::decode_framed(&frame.payload[off..])? {
            let rec_offset = frame.start_offset + off as u64;
            off += used;
            if self.apply_record(rec_offset, &rec)? {
                applied += 1;
            }
        }
        self.watermark = frame.end_lsn;
        self.durable_len += frame.payload.len() as u64;
        self.frames_applied.fetch_add(1, Ordering::Relaxed);
        self.apply_records_hist.record(applied.max(1));
        Ok(())
    }

    /// Replay one record. Returns whether redo actually modified a page.
    fn apply_record(&self, rec_offset: u64, rec: &LogRecord) -> Result<bool> {
        if let RecordBody::Checkpoint { .. } = rec.body {
            // Mirror the leader's checkpoint discipline: every page that was
            // clean at the leader's checkpoint must be clean here too before
            // the master pointer advances, or a promotion's DPT-gated redo
            // would skip updates that never reached our disk.
            self.db.pool().flush_all()?;
            self.db.log().set_master_raw(rec_offset, rec.lsn)?;
            self.checkpoints_mirrored.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        let applied = redo_record(self.db.pool(), rec)?;
        if applied {
            self.records_applied.fetch_add(1, Ordering::Relaxed);
        } else {
            self.records_skipped.fetch_add(1, Ordering::Relaxed);
        }
        Ok(applied)
    }

    /// Full-state fallback: replace log + disk wholesale and rebuild by
    /// replaying the shipped log from byte zero onto empty pages.
    fn install_snapshot(
        &mut self,
        epoch: u64,
        log_bytes: Vec<u8>,
        master: (u64, Lsn),
        catalog: Vec<u8>,
        channel: &ReplChannel,
    ) -> Result<IngestOutcome> {
        if epoch < self.epoch {
            self.stale_rejects.fetch_add(1, Ordering::Relaxed);
            channel.send_control(Message::StaleEpoch { got: epoch, current: self.epoch });
            return Ok(IngestOutcome::StaleRejected);
        }
        let durable_len = log_bytes.len() as u64;
        self.store.install_snapshot(log_bytes, master, epoch.max(self.epoch));
        // The old pages carry pageLSNs from a divergent history; redo onto
        // them would wrongly skip records. Start from empty media.
        self.disk.reset();
        self.epoch = epoch.max(self.epoch);
        self.catalog = catalog;
        self.reorder_buf.clear();
        self.rebuild()?;
        self.durable_len = durable_len;
        self.snapshots_installed.fetch_add(1, Ordering::Relaxed);
        self.send_ack(channel);
        Ok(IngestOutcome::SnapshotInstalled)
    }

    /// Reboot the follower database onto the current durable store/disk
    /// contents and replay the whole log redo-only (pageLSN-gated, so
    /// already-flushed pages cost nothing). This is deliberately *not*
    /// `recover()`: full recovery would append CLR/End records for losers
    /// and diverge our log from the leader's; losers are the *leader's*
    /// business until promotion.
    fn rebuild(&mut self) -> Result<()> {
        let db = Database::with_parts(
            Arc::new(self.disk.clone()),
            Box::new(self.store.clone()),
            self.cfg.pool_pages,
            Duration::from_secs(2),
        )?;
        db.load_catalog(&self.catalog)?;
        db.set_metrics_ticks(self.clock.events_handle());
        self.db = db;
        self.watermark = Lsn::NULL;
        for (off, rec) in self.db.log().read_durable_from(0)? {
            self.apply_record(off, &rec)?;
            self.watermark = rec.lsn;
        }
        self.durable_len = self.store.durable_bytes().len() as u64;
        Ok(())
    }

    /// Crash-reboot the follower: discard everything after its crash point
    /// (frozen store/disk images), then rebuild by redo-only replay of the
    /// surviving durable prefix. The next drain's `Hello` renegotiates
    /// catch-up from whatever survived.
    pub fn reopen(&mut self) -> Result<()> {
        self.store.crash_restore();
        self.disk.crash_restore();
        self.clock.disarm();
        self.reorder_buf.clear();
        self.epoch = self.store.get_epoch()?;
        self.rebuild()?;
        // Ask for catch-up immediately rather than waiting out the idle
        // counter.
        self.idle_drains = self.cfg.hello_after;
        Ok(())
    }

    /// Promote to leader: bump the epoch (persisted in the master record —
    /// the promotion is real only once the term is durable), then run full
    /// ARIES crash recovery over the shipped prefix. Winners stay, losers
    /// are undone with CLRs, and the database comes back writable.
    pub fn promote(&mut self) -> Result<RecoveryReport> {
        let epoch = self.store.get_epoch()? + 1;
        self.store.set_epoch(epoch)?;
        self.epoch = epoch;
        let (db, report) = Database::with_parts_recovered(
            Arc::new(self.disk.clone()),
            Box::new(self.store.clone()),
            Some(&self.catalog),
            self.cfg.pool_pages,
            Duration::from_secs(2),
        )?;
        db.set_metrics_ticks(self.clock.events_handle());
        self.db = db;
        self.promoted = true;
        self.watermark = self.db.log().flushed_lsn();
        self.durable_len = self.store.durable_bytes().len() as u64;
        Ok(report)
    }

    fn send_ack(&mut self, channel: &ReplChannel) {
        self.acks_sent.fetch_add(1, Ordering::Relaxed);
        channel.send_control(Message::Ack {
            watermark: self.watermark,
            durable_len: self.durable_len,
        });
    }

    /// Send a catch-up `Hello` now (also sent automatically after
    /// `cfg.hello_after` empty drains).
    pub fn send_hello(&mut self, channel: &ReplChannel) {
        self.hellos_sent.fetch_add(1, Ordering::Relaxed);
        let bytes = self.store.durable_bytes();
        channel.send_control(Message::Hello {
            watermark: self.watermark,
            durable_len: self.durable_len,
            log_checksum: checksum64(&bytes),
        });
        self.idle_drains = 0;
    }

    /// Drain the data lane: ingest everything deliverable. Returns how many
    /// messages were processed. Stops ingesting once this follower's own
    /// fault clock has fired (a crashed follower applies nothing). After
    /// `cfg.hello_after` consecutive empty drains, re-sends `Hello`.
    pub fn drain(&mut self, channel: &ReplChannel) -> Result<usize> {
        let mut processed = 0usize;
        let mut advanced = false;
        while !self.clock.fired() {
            match channel.recv_data() {
                Some(msg) => {
                    match self.ingest(msg, channel)? {
                        IngestOutcome::Applied | IngestOutcome::SnapshotInstalled => {
                            advanced = true;
                        }
                        _ => {}
                    }
                    processed += 1;
                }
                None => break,
            }
        }
        // Progress means the watermark moved. A drain that only saw
        // duplicates, stale or misaligned frames still counts toward the
        // Hello threshold — after a reboot the leader may be retransmitting
        // from a stale ack point, and only a renegotiation unwedges it.
        if advanced {
            self.idle_drains = 0;
        } else {
            self.idle_drains += 1;
            if self.idle_drains >= self.cfg.hello_after && !self.clock.fired() {
                self.send_hello(channel);
            }
        }
        Ok(processed)
    }

    /// `repl.follower.*` metrics.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        s.counter("repl.follower.frames_applied", self.frames_applied.load(Ordering::Relaxed));
        s.counter("repl.follower.records_applied", self.records_applied.load(Ordering::Relaxed));
        s.counter("repl.follower.records_skipped", self.records_skipped.load(Ordering::Relaxed));
        s.counter("repl.follower.dup_frames", self.dup_frames.load(Ordering::Relaxed));
        s.counter("repl.follower.torn_frames", self.torn_frames.load(Ordering::Relaxed));
        s.counter("repl.follower.buffered_frames", self.buffered_frames.load(Ordering::Relaxed));
        s.counter("repl.follower.buffer_drops", self.buffer_drops.load(Ordering::Relaxed));
        s.counter("repl.follower.stale_rejects", self.stale_rejects.load(Ordering::Relaxed));
        s.counter(
            "repl.follower.snapshots_installed",
            self.snapshots_installed.load(Ordering::Relaxed),
        );
        s.counter(
            "repl.follower.checkpoints_mirrored",
            self.checkpoints_mirrored.load(Ordering::Relaxed),
        );
        s.counter("repl.follower.acks_sent", self.acks_sent.load(Ordering::Relaxed));
        s.counter("repl.follower.hellos_sent", self.hellos_sent.load(Ordering::Relaxed));
        s.gauge("repl.follower.watermark", self.watermark.0 as i64);
        s.gauge("repl.follower.durable_len", self.durable_len as i64);
        s.gauge("repl.follower.epoch", self.epoch as i64);
        s.hist("repl.follower.apply_records", self.apply_records_hist.snapshot());
        s.sort();
        s
    }
}
