//! WAL-shipping replication: read-only followers, crash-recovery failover,
//! and the partition/lag torture harness around them.
//!
//! The design reuses what the engine already proves correct elsewhere:
//!
//! * the **leader** streams frames cut from its *durable* log — a frame is
//!   a checksummed run of consecutive framed log records, so the follower's
//!   log grows as a byte-identical prefix of the leader's;
//! * the **follower** replays frames through the same
//!   [`txview_wal::recovery::redo_record`] path crash recovery uses, after
//!   making the frame bytes durable in its own log (WAL-before-data holds
//!   on the follower for free), and advances a `replay_watermark` LSN;
//! * **catch-up** is a `Hello(watermark, durable_len, log_checksum)`
//!   negotiation: the leader resumes from the follower's durable length
//!   when the checksum proves the follower holds a true prefix, and falls
//!   back to shipping a full snapshot when the logs diverged (an old
//!   leader re-joining after failover);
//! * **promotion** is ordinary ARIES recovery over the follower's shipped
//!   prefix, plus an epoch (term) bump persisted in the master record —
//!   a demoted leader's frames carry the stale epoch, are rejected, and
//!   the rejection fences the old leader through the PR 2 health machine.
//!
//! The transport is an in-process channel with `FaultDisk`-style seeded
//! fault injection (drop, delay, duplicate, reorder, torn frame,
//! partition), so every protocol seam is sweepable deterministically.

mod channel;
mod follower;
mod frame;
mod leader;
mod torture;

pub use channel::{ChannelFaults, ChannelStatsSnapshot, ReplChannel};
pub use follower::{Follower, IngestOutcome};
pub use frame::{Frame, Message};
pub use leader::ReplicationStream;
pub use torture::{
    measure_follower_horizon, run_follower_crash_episode, run_leader_crash_episode,
    run_partition_episode,
    run_repl_metrics_check, run_replication_sweep, ReplEpisodeKind, ReplEpisodeReport,
    ReplMetricsCheckReport, ReplSweepReport,
};

/// When is a leader commit acknowledged to its client?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShipMode {
    /// Ack only after the follower has durably acked the commit's LSN.
    /// Every acked commit must survive leader loss.
    Sync,
    /// Ack at local durability; the follower trails. Leader loss may lose
    /// the un-shipped suffix, but never an already-acked *shipped* prefix.
    Async,
}

/// Tuning knobs for one replication link (leader + channel + follower).
#[derive(Clone, Debug)]
pub struct ReplConfig {
    /// Commit-ack discipline.
    pub ship_mode: ShipMode,
    /// Max records per shipped frame.
    pub max_batch: usize,
    /// Max un-acked bytes in flight before the leader pauses shipping.
    pub window_bytes: u64,
    /// Consecutive no-progress pumps before the leader rewinds its ship
    /// cursor to the acked offset (go-back-N retransmit).
    pub stall_pumps: u32,
    /// Consecutive empty drains before the follower re-sends `Hello`
    /// (reconnect negotiation after loss or partition heal).
    pub hello_after: u32,
    /// Max out-of-order frames the follower buffers while waiting for the
    /// gap to fill; beyond this, early frames are dropped (retransmit
    /// recovers them).
    pub reorder_buffer: usize,
    /// Pump rounds a `Sync`-mode commit waits for its follower ack before
    /// the harness gives up acking it.
    pub sync_ack_budget: u32,
    /// Follower database pool size.
    pub pool_pages: usize,
    /// Seeded channel fault plan.
    pub faults: ChannelFaults,
}

impl Default for ReplConfig {
    fn default() -> ReplConfig {
        ReplConfig {
            ship_mode: ShipMode::Sync,
            max_batch: 8,
            window_bytes: 1 << 16,
            stall_pumps: 4,
            hello_after: 6,
            reorder_buffer: 16,
            sync_ack_budget: 64,
            pool_pages: 64,
            faults: ChannelFaults::default(),
        }
    }
}
