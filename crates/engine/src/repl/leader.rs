//! Leader side of the replication link: cut frames from the durable log,
//! track the follower's acked prefix, negotiate catch-up, and fence
//! ourselves when a follower proves we are a stale leader.

use super::channel::ReplChannel;
use super::frame::{Frame, Message};
use super::ReplConfig;
use crate::db::Database;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txview_common::codec::checksum64;
use txview_common::obs::{Histogram, Snapshot};
use txview_common::{Lsn, Result};
use txview_wal::{FaultLogStore, LogStore};

/// The leader's view of one replication stream. Single-threaded by
/// design: the torture harness (and a future server layer's replication
/// task) owns it and alternates [`ReplicationStream::drain_control`] /
/// [`ReplicationStream::pump`].
pub struct ReplicationStream {
    db: Arc<Database>,
    store: FaultLogStore,
    cfg: ReplConfig,
    /// Byte offset of the next frame to cut.
    cursor: u64,
    /// Durable byte length the follower has acked.
    acked_offset: u64,
    /// Replay watermark the follower has acked.
    acked_lsn: Lsn,
    /// Consecutive pumps with neither a send nor ack progress; when it
    /// reaches `cfg.stall_pumps`, the cursor rewinds to `acked_offset`
    /// (go-back-N over whatever was lost).
    stalled: u32,
    frames_shipped: AtomicU64,
    records_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
    acks_seen: AtomicU64,
    reconnects: AtomicU64,
    snapshot_fallbacks: AtomicU64,
    retransmits: AtomicU64,
    stale_epoch_signals: AtomicU64,
    ship_records_hist: Histogram,
    ship_bytes_hist: Histogram,
}

impl ReplicationStream {
    /// New stream for `db`, whose durable log lives in `store`.
    pub fn new(db: Arc<Database>, store: FaultLogStore, cfg: ReplConfig) -> ReplicationStream {
        ReplicationStream {
            db,
            store,
            cfg,
            cursor: 0,
            acked_offset: 0,
            acked_lsn: Lsn::NULL,
            stalled: 0,
            frames_shipped: AtomicU64::new(0),
            records_shipped: AtomicU64::new(0),
            bytes_shipped: AtomicU64::new(0),
            acks_seen: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            snapshot_fallbacks: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            stale_epoch_signals: AtomicU64::new(0),
            ship_records_hist: Histogram::default(),
            ship_bytes_hist: Histogram::default(),
        }
    }

    /// Highest follower-acked replay watermark. A `Sync`-mode commit is
    /// client-acked only once this covers its commit LSN.
    pub fn acked_lsn(&self) -> Lsn {
        self.acked_lsn
    }

    /// Follower-acked durable byte length.
    pub fn acked_offset(&self) -> u64 {
        self.acked_offset
    }

    /// Replication lag in LSNs: leader durable watermark minus the
    /// follower-acked watermark.
    pub fn lag_lsns(&self) -> u64 {
        self.db.log().flushed_lsn().0.saturating_sub(self.acked_lsn.0)
    }

    /// Lag expressed in ship batches of `cfg.max_batch` records.
    pub fn lag_frames(&self) -> u64 {
        self.lag_lsns().div_ceil(self.cfg.max_batch.max(1) as u64)
    }

    /// Absorb pending control messages: acks advance the acked prefix,
    /// hellos renegotiate catch-up, and a stale-epoch signal fences this
    /// (evidently demoted) leader.
    pub fn drain_control(&mut self, channel: &ReplChannel) -> Result<()> {
        if self.store.clock().fired() {
            // A dead leader answers nothing — in particular it must not
            // serve a catch-up negotiation from its doomed live state.
            return Ok(());
        }
        for msg in channel.recv_control() {
            match msg {
                Message::Ack { watermark, durable_len } => {
                    self.acks_seen.fetch_add(1, Ordering::Relaxed);
                    if durable_len > self.acked_offset {
                        self.acked_offset = durable_len;
                        self.acked_lsn = watermark;
                        self.stalled = 0;
                    }
                }
                Message::Hello { watermark, durable_len, log_checksum } => {
                    self.handle_hello(channel, watermark, durable_len, log_checksum)?;
                }
                Message::StaleEpoch { got, current } => {
                    self.stale_epoch_signals.fetch_add(1, Ordering::Relaxed);
                    self.db.health().fence(&format!(
                        "stale replication epoch: shipping at epoch {got} but the \
                         follower is at epoch {current} (superseded by a promotion)"
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Catch-up negotiation: resume from the follower's durable length
    /// when its log is provably a prefix of ours, else fall back to a full
    /// snapshot ship.
    fn handle_hello(
        &mut self,
        channel: &ReplChannel,
        watermark: Lsn,
        durable_len: u64,
        log_checksum: u64,
    ) -> Result<()> {
        let our_bytes = self.store.read_from(0)?;
        let is_prefix = durable_len as usize <= our_bytes.len()
            && checksum64(&our_bytes[..durable_len as usize]) == log_checksum;
        if is_prefix {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            self.acked_offset = durable_len;
            self.acked_lsn = watermark;
            self.cursor = durable_len;
            self.stalled = 0;
        } else {
            self.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
            let master = self.store.get_master()?;
            let epoch = self.store.get_epoch()?;
            let last_lsn = self.db.log().flushed_lsn();
            channel.send_data(Message::Snapshot {
                epoch,
                log_bytes: our_bytes.clone(),
                master,
                catalog: self.db.export_catalog(),
            });
            // The snapshot covers everything durable; treat it as shipped
            // and acked-pending (the follower's ack confirms it).
            self.cursor = our_bytes.len() as u64;
            self.acked_offset = 0;
            self.acked_lsn = Lsn::NULL;
            let _ = last_lsn;
            self.stalled = 0;
        }
        Ok(())
    }

    /// Cut and ship the next frame(s) from the durable log. Stops at the
    /// flow-control window; rewinds to the acked offset after
    /// `cfg.stall_pumps` pumps without progress. Returns how many frames
    /// were shipped this pump. Does nothing once this leader's fault clock
    /// has fired (a dead leader ships nothing).
    pub fn pump(&mut self, channel: &ReplChannel) -> Result<usize> {
        if self.store.clock().fired() {
            return Ok(0);
        }
        let mut shipped = 0usize;
        // Flow control: don't run more than window_bytes ahead of the ack.
        while self.cursor.saturating_sub(self.acked_offset) < self.cfg.window_bytes {
            let records = self.db.log().read_durable_from(self.cursor)?;
            if records.is_empty() {
                break;
            }
            let batch = &records[..records.len().min(self.cfg.max_batch)];
            let first_lsn = batch[0].1.lsn;
            let end_lsn = batch[batch.len() - 1].1.lsn;
            let mut payload = Vec::new();
            for (_, rec) in batch {
                payload.extend_from_slice(&rec.encode_framed());
            }
            let epoch = self.store.get_epoch()?;
            let len = payload.len() as u64;
            let frame = Frame::new(epoch, self.cursor, first_lsn, end_lsn, payload);
            self.frames_shipped.fetch_add(1, Ordering::Relaxed);
            self.records_shipped.fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.bytes_shipped.fetch_add(len, Ordering::Relaxed);
            self.ship_records_hist.record(batch.len() as u64);
            self.ship_bytes_hist.record(len);
            channel.send_data(Message::Frame(frame));
            self.cursor += len;
            shipped += 1;
        }
        if shipped == 0 {
            // Nothing shippable: either fully caught up (cursor == acked)
            // or stalled on lost frames/acks. Only the latter warrants a
            // rewind.
            if self.cursor > self.acked_offset {
                self.stalled += 1;
                if self.stalled >= self.cfg.stall_pumps {
                    self.cursor = self.acked_offset;
                    self.retransmits.fetch_add(1, Ordering::Relaxed);
                    self.stalled = 0;
                }
            }
        } else {
            self.stalled = 0;
        }
        Ok(shipped)
    }

    /// `repl.leader.*` metrics.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        s.counter("repl.leader.frames_shipped", self.frames_shipped.load(Ordering::Relaxed));
        s.counter("repl.leader.records_shipped", self.records_shipped.load(Ordering::Relaxed));
        s.counter("repl.leader.bytes_shipped", self.bytes_shipped.load(Ordering::Relaxed));
        s.counter("repl.leader.acks_seen", self.acks_seen.load(Ordering::Relaxed));
        s.counter("repl.leader.reconnects", self.reconnects.load(Ordering::Relaxed));
        s.counter(
            "repl.leader.snapshot_fallbacks",
            self.snapshot_fallbacks.load(Ordering::Relaxed),
        );
        s.counter("repl.leader.retransmits", self.retransmits.load(Ordering::Relaxed));
        s.counter(
            "repl.leader.stale_epoch_signals",
            self.stale_epoch_signals.load(Ordering::Relaxed),
        );
        s.gauge("repl.leader.lag_lsns", self.lag_lsns() as i64);
        s.gauge("repl.leader.lag_frames", self.lag_frames() as i64);
        s.hist("repl.leader.ship_records", self.ship_records_hist.snapshot());
        s.hist("repl.leader.ship_bytes", self.ship_bytes_hist.snapshot());
        s.sort();
        s
    }

    /// Number of reconnect negotiations resolved by resuming.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Number of reconnect negotiations resolved by a snapshot ship.
    pub fn snapshot_fallbacks(&self) -> u64 {
        self.snapshot_fallbacks.load(Ordering::Relaxed)
    }

    /// Stale-epoch signals received from followers.
    pub fn stale_epoch_signals(&self) -> u64 {
        self.stale_epoch_signals.load(Ordering::Relaxed)
    }
}
