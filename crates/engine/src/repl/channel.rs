//! The in-process replication transport, with `FaultDisk`-style seeded
//! fault injection on the frame lane: drop, delay, duplicate, reorder,
//! torn frame, and partition. All decisions come from one seeded [`Rng`],
//! so a single-threaded harness replays the identical fault sequence from
//! the identical seed.

use super::frame::Message;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use txview_common::rng::Rng;

/// Per-frame fault probabilities, drawn in a fixed order per send so the
/// fault plan is a pure function of the channel seed.
#[derive(Clone, Copy, Debug)]
pub struct ChannelFaults {
    /// Frame silently lost.
    pub drop_p: f64,
    /// Frame delivered twice.
    pub dup_p: f64,
    /// Frame delivered ahead of an earlier undelivered frame.
    pub reorder_p: f64,
    /// Frame held back for a few delivery rounds.
    pub delay_p: f64,
    /// One payload byte flipped (the frame checksum must catch it).
    pub torn_p: f64,
}

impl Default for ChannelFaults {
    fn default() -> ChannelFaults {
        ChannelFaults { drop_p: 0.0, dup_p: 0.0, reorder_p: 0.0, delay_p: 0.0, torn_p: 0.0 }
    }
}

impl ChannelFaults {
    /// A lossy plan exercising every fault class at once.
    pub fn lossy() -> ChannelFaults {
        ChannelFaults { drop_p: 0.10, dup_p: 0.10, reorder_p: 0.10, delay_p: 0.10, torn_p: 0.05 }
    }
}

/// Counter snapshot of what the channel injected.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChannelStatsSnapshot {
    /// Data-lane messages offered for send.
    pub data_sent: u64,
    /// Data-lane messages delivered to the follower.
    pub data_delivered: u64,
    /// Frames dropped (fault plan or partition).
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames queued out of order.
    pub reordered: u64,
    /// Frames held back by the delay fault.
    pub delayed: u64,
    /// Frames with a payload byte flipped.
    pub torn: u64,
    /// Control-lane messages lost to a partition.
    pub control_dropped: u64,
    /// Partition onsets observed.
    pub partitions: u64,
}

/// Bidirectional in-process link: a faulty data lane (leader → follower)
/// and a lossless-but-partitionable control lane (follower → leader).
pub struct ReplChannel {
    faults: ChannelFaults,
    rng: Mutex<Rng>,
    partitioned: AtomicBool,
    data: Mutex<VecDeque<Message>>,
    delayed: Mutex<Vec<(u32, Message)>>,
    control: Mutex<VecDeque<Message>>,
    data_sent: AtomicU64,
    data_delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    delayed_count: AtomicU64,
    torn: AtomicU64,
    control_dropped: AtomicU64,
    partitions: AtomicU64,
}

impl ReplChannel {
    /// New channel with `faults` driven by `seed`.
    pub fn new(faults: ChannelFaults, seed: u64) -> ReplChannel {
        ReplChannel {
            faults,
            rng: Mutex::new(Rng::new(seed ^ 0x8d1f_3b72_a6c4_5e09)),
            partitioned: AtomicBool::new(false),
            data: Mutex::new(VecDeque::new()),
            delayed: Mutex::new(Vec::new()),
            control: Mutex::new(VecDeque::new()),
            data_sent: AtomicU64::new(0),
            data_delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            delayed_count: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            control_dropped: AtomicU64::new(0),
            partitions: AtomicU64::new(0),
        }
    }

    /// Sever the link (both lanes) or heal it. While partitioned, sends on
    /// either lane are lost and nothing is delivered; already-queued
    /// messages survive and flow again after the heal.
    pub fn set_partitioned(&self, on: bool) {
        let was = self.partitioned.swap(on, Ordering::SeqCst);
        if on && !was {
            self.partitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Is the link currently severed?
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }

    /// Leader → follower. Frames go through the fault plan; snapshots are
    /// a reliable bulk transfer (only a partition stops them).
    pub fn send_data(&self, msg: Message) {
        self.data_sent.fetch_add(1, Ordering::Relaxed);
        if self.is_partitioned() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut msg = msg;
        if let Message::Frame(ref mut frame) = msg {
            // Fixed draw order — drop, torn, dup, delay, reorder — keeps
            // the plan a pure function of the seed and the send sequence.
            let mut rng = self.rng.lock();
            if rng.chance(self.faults.drop_p) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if rng.chance(self.faults.torn_p) && !frame.payload.is_empty() {
                let idx = rng.below(frame.payload.len() as u64) as usize;
                frame.payload[idx] ^= 0x5A;
                self.torn.fetch_add(1, Ordering::Relaxed);
            }
            let dup = rng.chance(self.faults.dup_p);
            let delay = rng.chance(self.faults.delay_p);
            let reorder = rng.chance(self.faults.reorder_p);
            if delay {
                let rounds = 1 + rng.below(3) as u32;
                drop(rng);
                self.delayed_count.fetch_add(1, Ordering::Relaxed);
                self.delayed.lock().push((rounds, msg.clone()));
                if !dup {
                    return;
                }
                // The duplicate still travels immediately.
                self.data.lock().push_back(msg);
                self.duplicated.fetch_add(1, Ordering::Relaxed);
                return;
            }
            drop(rng);
            let mut q = self.data.lock();
            if reorder && !q.is_empty() {
                // Jump the queue: delivered before an earlier frame.
                q.push_front(msg.clone());
                self.reordered.fetch_add(1, Ordering::Relaxed);
            } else {
                q.push_back(msg.clone());
            }
            if dup {
                q.push_back(msg);
                self.duplicated.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        self.data.lock().push_back(msg);
    }

    /// Follower side: deliver the next data-lane message, after promoting
    /// any delay-expired frames back into the queue. Returns `None` while
    /// partitioned or when nothing is deliverable.
    pub fn recv_data(&self) -> Option<Message> {
        if self.is_partitioned() {
            return None;
        }
        {
            let mut delayed = self.delayed.lock();
            if !delayed.is_empty() {
                let mut ready = Vec::new();
                delayed.retain_mut(|(rounds, msg)| {
                    if *rounds <= 1 {
                        ready.push(msg.clone());
                        false
                    } else {
                        *rounds -= 1;
                        true
                    }
                });
                let mut q = self.data.lock();
                for m in ready {
                    q.push_back(m);
                }
            }
        }
        let out = self.data.lock().pop_front();
        if out.is_some() {
            self.data_delivered.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Follower → leader. Lossless except under a partition.
    pub fn send_control(&self, msg: Message) {
        if self.is_partitioned() {
            self.control_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.control.lock().push_back(msg);
    }

    /// Leader side: drain every pending control message.
    pub fn recv_control(&self) -> Vec<Message> {
        if self.is_partitioned() {
            return Vec::new();
        }
        self.control.lock().drain(..).collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ChannelStatsSnapshot {
        ChannelStatsSnapshot {
            data_sent: self.data_sent.load(Ordering::Relaxed),
            data_delivered: self.data_delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            delayed: self.delayed_count.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
            control_dropped: self.control_dropped.load(Ordering::Relaxed),
            partitions: self.partitions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::frame::Frame;
    use super::*;
    use txview_common::Lsn;

    fn frame(n: u64) -> Message {
        Message::Frame(Frame::new(1, n, Lsn(n), Lsn(n), vec![n as u8; 4]))
    }

    #[test]
    fn lossless_channel_is_fifo() {
        let ch = ReplChannel::new(ChannelFaults::default(), 1);
        ch.send_data(frame(1));
        ch.send_data(frame(2));
        assert_eq!(ch.recv_data(), Some(frame(1)));
        assert_eq!(ch.recv_data(), Some(frame(2)));
        assert_eq!(ch.recv_data(), None);
    }

    #[test]
    fn partition_drops_sends_and_blocks_delivery() {
        let ch = ReplChannel::new(ChannelFaults::default(), 1);
        ch.send_data(frame(1));
        ch.set_partitioned(true);
        ch.send_data(frame(2));
        assert_eq!(ch.recv_data(), None);
        ch.set_partitioned(false);
        // The pre-partition frame survived; the mid-partition one is gone.
        assert_eq!(ch.recv_data(), Some(frame(1)));
        assert_eq!(ch.recv_data(), None);
        assert_eq!(ch.stats().dropped, 1);
        assert_eq!(ch.stats().partitions, 1);
    }

    #[test]
    fn same_seed_same_fault_plan() {
        let run = |seed: u64| {
            let ch = ReplChannel::new(ChannelFaults::lossy(), seed);
            for i in 0..200 {
                ch.send_data(frame(i));
            }
            let mut got = Vec::new();
            while let Some(m) = ch.recv_data() {
                got.push(m);
            }
            let s = ch.stats();
            (got.len(), s.dropped, s.duplicated, s.reordered, s.torn)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn delayed_frames_surface_after_rounds() {
        let faults = ChannelFaults { delay_p: 1.0, ..ChannelFaults::default() };
        let ch = ReplChannel::new(faults, 3);
        ch.send_data(frame(1));
        // Every frame is delayed 1–3 rounds; draining repeatedly must
        // surface it within that bound.
        let mut seen = false;
        for _ in 0..4 {
            if ch.recv_data().is_some() {
                seen = true;
                break;
            }
        }
        assert!(seen, "delayed frame never surfaced");
    }
}
