//! Wire messages for the replication link.

use txview_common::codec::checksum64;
use txview_common::Lsn;

/// One shipped run of consecutive framed log records. `payload` is the
/// records' durable byte encoding verbatim — the follower appends it
/// unchanged, which is what keeps its log a byte-identical prefix of the
/// leader's.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Leader term; the follower rejects frames older than its own.
    pub epoch: u64,
    /// Byte offset of the first record in the leader's log. Equal to the
    /// follower's durable length when the frame is the next expected one.
    pub start_offset: u64,
    /// LSN of the first record in the payload.
    pub first_lsn: Lsn,
    /// LSN of the last record in the payload.
    pub end_lsn: Lsn,
    /// Concatenated framed record encodings.
    pub payload: Vec<u8>,
    /// Checksum over the payload and header fields; a torn frame fails it.
    pub checksum: u64,
}

impl Frame {
    /// Seal a frame over `payload`.
    pub fn new(
        epoch: u64,
        start_offset: u64,
        first_lsn: Lsn,
        end_lsn: Lsn,
        payload: Vec<u8>,
    ) -> Frame {
        let checksum = Frame::compute_checksum(epoch, start_offset, first_lsn, end_lsn, &payload);
        Frame { epoch, start_offset, first_lsn, end_lsn, payload, checksum }
    }

    fn compute_checksum(
        epoch: u64,
        start_offset: u64,
        first_lsn: Lsn,
        end_lsn: Lsn,
        payload: &[u8],
    ) -> u64 {
        let mut buf = Vec::with_capacity(payload.len() + 32);
        buf.extend_from_slice(&epoch.to_le_bytes());
        buf.extend_from_slice(&start_offset.to_le_bytes());
        buf.extend_from_slice(&first_lsn.0.to_le_bytes());
        buf.extend_from_slice(&end_lsn.0.to_le_bytes());
        buf.extend_from_slice(payload);
        checksum64(&buf)
    }

    /// Does the sealed checksum still match the contents?
    pub fn verify(&self) -> bool {
        Frame::compute_checksum(
            self.epoch,
            self.start_offset,
            self.first_lsn,
            self.end_lsn,
            &self.payload,
        ) == self.checksum
    }
}

/// Everything that can travel over the replication channel, both
/// directions. Frames and snapshots flow leader → follower on the data
/// lane; the rest flows follower → leader on the control lane.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A run of log records (leader → follower).
    Frame(Frame),
    /// Full-state fallback when the follower's log diverged: the leader's
    /// whole durable log, master pointer, epoch, and catalog
    /// (leader → follower). Modelled as a reliable bulk transfer — the
    /// per-frame fault plan does not apply, though a partition still
    /// blocks it.
    Snapshot {
        /// Leader term at ship time.
        epoch: u64,
        /// The leader's entire durable log.
        log_bytes: Vec<u8>,
        /// The leader's persisted master pointer.
        master: (u64, Lsn),
        /// The leader's exported catalog.
        catalog: Vec<u8>,
    },
    /// Catch-up negotiation after (re)connect (follower → leader): the
    /// leader resumes at `durable_len` iff `log_checksum` matches its own
    /// prefix of that length, else it ships a snapshot.
    Hello {
        /// The follower's replay watermark.
        watermark: Lsn,
        /// The follower's durable log length in bytes.
        durable_len: u64,
        /// Checksum of the follower's entire durable log.
        log_checksum: u64,
    },
    /// Durability acknowledgement (follower → leader).
    Ack {
        /// The follower's replay watermark.
        watermark: Lsn,
        /// The follower's durable log length in bytes.
        durable_len: u64,
    },
    /// The follower saw a frame with a stale epoch (follower → leader):
    /// the sending leader has been superseded and must fence itself.
    StaleEpoch {
        /// The frame's (stale) epoch.
        got: u64,
        /// The follower's current epoch.
        current: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_checksum_catches_payload_corruption() {
        let mut f = Frame::new(1, 0, Lsn(1), Lsn(3), vec![1, 2, 3, 4]);
        assert!(f.verify());
        f.payload[2] ^= 0x40;
        assert!(!f.verify());
    }

    #[test]
    fn frame_checksum_covers_header_fields() {
        let mut f = Frame::new(1, 0, Lsn(1), Lsn(3), vec![1, 2, 3, 4]);
        f.end_lsn = Lsn(9);
        assert!(!f.verify());
    }
}
