//! Replication torture: crash the leader, crash the follower, sever the
//! link — and interrogate the replication oracle each time.
//!
//! The oracle, in the ISSUE's terms:
//!
//! * **history**: the follower's state at watermark `W` equals an in-order
//!   replay of the shipped prefix up to `W` (checked against a fault-free
//!   reference follower);
//! * **durability**: every commit acknowledged under `Sync` ship mode
//!   survives leader loss and is served by the promoted follower;
//! * **promotion exactness**: promotion yields a writable database whose
//!   state equals an independent crash recovery of exactly the shipped
//!   prefix (a fresh `MemDisk` + `MemLogStore` preloaded with the
//!   follower's durable bytes, master = null so analysis covers it all);
//! * **idempotence**: duplicated/reordered frames change nothing — redo's
//!   pageLSN test and the follower's watermark make replays no-ops;
//! * **convergence**: after a partition heals or a crashed node rejoins,
//!   leader and follower logs become *byte-identical* and their committed
//!   states fingerprint-equal.
//!
//! Everything is a pure function of the seed, like the rest of the torture
//! harness: leader crash offsets come from the same fault-free horizon as
//! the single-node sweep (replication never ticks the leader's clock), and
//! follower offsets from a dedicated follower-horizon measurement.

use super::channel::{ChannelFaults, ReplChannel};
use super::follower::Follower;
use super::frame::{Frame, Message};
use super::leader::ReplicationStream;
use super::{ReplConfig, ShipMode};
use crate::db::Database;
use crate::health::HealthState;
use crate::torture::{self, TortureConfig, WorkloadTrace};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use txview_common::obs::Snapshot;
use txview_common::rng::Rng;
use txview_common::{Lsn, Result};
use txview_storage::fault::FaultSchedule;
use txview_storage::MemDisk;
use txview_txn::IsolationLevel;
use txview_wal::{LogRecord, LogStore, MemLogStore};

/// Which seam an episode tortures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplEpisodeKind {
    /// The leader dies at a swept event; the follower is promoted.
    LeaderCrash,
    /// The follower dies mid-replay, reboots onto its durable prefix, and
    /// catches back up.
    FollowerCrash,
    /// The link partitions (plus a lossy fault plan); after the heal the
    /// follower must converge byte-identically.
    Partition,
}

/// Outcome of one replication episode.
#[derive(Clone, Debug)]
pub struct ReplEpisodeReport {
    /// Which seam was tortured.
    pub kind: ReplEpisodeKind,
    /// Absolute event the crash fired at (None for partition episodes or
    /// schedules that never fired).
    pub crash_event: Option<u64>,
    /// Oracle violations; empty = the episode passed.
    pub violations: Vec<String>,
    /// Commits acknowledged under the ship-mode contract.
    pub repl_acked_commits: usize,
    /// `Sync` commits that timed out waiting for the follower ack.
    pub sync_ack_timeouts: usize,
    /// Largest replication lag (in LSNs) observed during the workload.
    pub max_lag_lsns: u64,
    /// Catch-up negotiations resolved by resuming from a clean prefix.
    pub reconnects: u64,
    /// Catch-up negotiations resolved by a full snapshot ship.
    pub snapshot_fallbacks: u64,
    /// Did the stale-leader fencing drill fence the old leader?
    pub fenced_stale_leader: bool,
    /// Losers the promotion recovery undid (leader-crash episodes).
    pub promotion_losers: u64,
}

/// Outcome of a full replication sweep.
#[derive(Clone, Debug, Default)]
pub struct ReplSweepReport {
    /// Leader-side fault-free event horizon.
    pub horizon: u64,
    /// Follower-side fault-free event horizon.
    pub follower_horizon: u64,
    /// Episodes run.
    pub episodes: usize,
    /// Distinct crash/partition points exercised (leader crash events +
    /// follower crash events + partition seeds + mid-batch pipeline
    /// events).
    pub distinct_points: usize,
    /// Distinct leader crash events.
    pub leader_crash_points: usize,
    /// Distinct follower crash events.
    pub follower_crash_points: usize,
    /// Partition episodes run (each a distinct seed).
    pub partition_points: usize,
    /// Distinct mid-batch pipeline crash events (leader death between a
    /// group-commit batch's first and last appended commit record).
    pub mid_batch_points: usize,
    /// All violations, tagged with the episode that produced them.
    pub violations: Vec<(String, String)>,
    /// Total ship-mode-acked commits across episodes.
    pub repl_acked_commits: usize,
    /// Promotions performed.
    pub promotions: usize,
    /// Resume reconnects across episodes.
    pub reconnects: u64,
    /// Snapshot fallbacks across episodes.
    pub snapshot_fallbacks: u64,
    /// Stale leaders fenced by the epoch check.
    pub fences: usize,
    /// Sync-acked commits served by promoted followers in mid-batch
    /// leader-death episodes (the ISSUE's headline acceptance case).
    pub mid_batch_acked_survived: usize,
}

const MID_BATCH_PROBE: [&str; 1] = ["wal.pipeline.mid_batch"];

/// One leader + channel + follower, wired over the torture harness's
/// fault-injected parts.
struct ReplLink {
    cfg: TortureConfig,
    rcfg: ReplConfig,
    db: Arc<Database>,
    parts: torture::Parts,
    catalog: Vec<u8>,
    stream: ReplicationStream,
    channel: ReplChannel,
    follower: Follower,
}

impl ReplLink {
    fn new(cfg: &TortureConfig, rcfg: &ReplConfig, channel_seed: u64) -> Result<ReplLink> {
        let (db, parts) = torture::build(cfg)?;
        let catalog = db.export_catalog();
        let follower = Follower::new(rcfg.clone(), catalog.clone())?;
        let channel = ReplChannel::new(rcfg.faults, channel_seed);
        let stream = ReplicationStream::new(Arc::clone(&db), parts.store.clone(), rcfg.clone());
        Ok(ReplLink {
            cfg: cfg.clone(),
            rcfg: rcfg.clone(),
            db,
            parts,
            catalog,
            stream,
            channel,
            follower,
        })
    }

    /// One protocol round: follower drains + acks, leader absorbs control
    /// traffic, leader ships the next frames. None of this ticks the
    /// leader's fault clock, so crash offsets from the single-node horizon
    /// stay valid.
    fn tick(&mut self) -> Result<()> {
        self.follower.drain(&self.channel)?;
        self.stream.drain_control(&self.channel)?;
        self.stream.pump(&self.channel)?;
        Ok(())
    }

    /// Tick until the follower's watermark covers the leader's durable
    /// LSN, or the budget runs out.
    fn converge(&mut self, budget: usize) -> Result<bool> {
        for _ in 0..budget {
            if self.follower.watermark() >= self.db.log().flushed_lsn() {
                return Ok(true);
            }
            self.tick()?;
        }
        Ok(self.follower.watermark() >= self.db.log().flushed_lsn())
    }
}

/// What a replicated workload observed, over and above the base trace.
#[derive(Clone, Debug, Default)]
struct ReplTrace {
    base: WorkloadTrace,
    /// `(commit LSN, transfer)` for every locally-acked transfer.
    transfers: Vec<(Lsn, (i64, i64, i64, i64))>,
    /// Transfers acknowledged under the ship-mode contract.
    repl_acked: Vec<(i64, i64, i64, i64)>,
    repl_acked_commits: usize,
    sync_ack_timeouts: usize,
    max_lag_lsns: u64,
}

/// `Sync`-mode wait: pump the link until the follower has durably acked
/// `lsn` or the budget runs out.
fn wait_for_ack(link: &mut ReplLink, lsn: Lsn) -> Result<bool> {
    for _ in 0..link.rcfg.sync_ack_budget {
        if link.stream.acked_lsn() >= lsn {
            return Ok(true);
        }
        link.tick()?;
    }
    Ok(link.stream.acked_lsn() >= lsn)
}

/// The torture workload (same transaction mix, same seeding, therefore the
/// same leader event horizon as [`torture::run_workload`]) interleaved
/// with replication rounds. `plan` toggles the partition at transaction
/// boundaries: `(t, on)` sets the link state just before transaction `t`.
fn run_repl_workload(link: &mut ReplLink, plan: &[(usize, bool)]) -> Result<ReplTrace> {
    let cfg = link.cfg.clone();
    let db = Arc::clone(&link.db);
    let mut rng = Rng::new(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut trace = ReplTrace::default();
    let mut seq = 0i64;
    // Mirrors run_workload's shadow of the seeded readings rows; only
    // consulted when cfg.minmax is on (same rng discipline, same horizon).
    let mut next_reading = 12i64;
    let mut live_readings: Vec<(i64, i64)> = (0..4i64)
        .flat_map(|g| (0..3i64).map(move |k| (g * 3 + k, 10 * (k + 1))))
        .collect();
    for t in 0..cfg.txns {
        for &(at, on) in plan {
            if at == t {
                link.channel.set_partitioned(on);
            }
        }
        trace.base.attempted += 1;
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        let transfer = if t % 3 == 2 {
            None
        } else {
            let from = rng.below(cfg.accounts as u64) as i64;
            let mut to = rng.below(cfg.accounts as u64) as i64;
            if to == from {
                to = (to + 1) % cfg.accounts;
            }
            seq += 1;
            Some((seq, from, to, rng.range_inclusive(1, 9)))
        };
        let body = match transfer {
            Some((s, from, to, amount)) => torture::do_transfer(&db, &mut txn, s, from, to, amount),
            None => {
                let a = rng.below(cfg.churn_groups as u64) as i64;
                let b = rng.below(cfg.churn_groups as u64) as i64;
                torture::do_toggle(&db, &mut txn, a).and_then(|()| {
                    if b != a {
                        torture::do_toggle(&db, &mut txn, b)
                    } else {
                        Ok(())
                    }
                })
            }
        };
        let body = body.and_then(|()| {
            if cfg.minmax {
                torture::do_reading(&db, &mut txn, &mut live_readings, &mut next_reading, &mut rng)
            } else {
                Ok(())
            }
        });
        let body = body.and_then(|()| {
            if t % 4 == 1 {
                db.log().flush_all()?;
            }
            Ok(())
        });
        if body.is_ok() && t % 12 == 5 {
            if db.rollback(&mut txn).is_ok() {
                trace.base.rolled_back += 1;
            } else {
                trace.base.abandoned += 1;
                std::mem::forget(txn);
            }
            link.tick()?;
            continue;
        }
        match body.and_then(|()| db.commit(&mut txn)) {
            Ok(lsn) => {
                let locally_acked = !link.parts.clock.fired();
                if locally_acked {
                    trace.base.acked_commits += 1;
                    if let Some(tr) = transfer {
                        trace.base.acked_transfers.push(tr);
                        trace.transfers.push((lsn, tr));
                    }
                }
                match link.rcfg.ship_mode {
                    ShipMode::Sync => {
                        if wait_for_ack(link, lsn)? {
                            trace.repl_acked_commits += 1;
                            if let Some(tr) = transfer {
                                trace.repl_acked.push(tr);
                            }
                        } else {
                            trace.sync_ack_timeouts += 1;
                        }
                    }
                    ShipMode::Async => {
                        if locally_acked {
                            trace.repl_acked_commits += 1;
                            if let Some(tr) = transfer {
                                trace.repl_acked.push(tr);
                            }
                        }
                    }
                }
            }
            Err(_) => {
                if txn.is_active() && db.rollback(&mut txn).is_ok() {
                    trace.base.rolled_back += 1;
                } else {
                    trace.base.abandoned += 1;
                    std::mem::forget(txn);
                }
            }
        }
        link.tick()?;
        trace.max_lag_lsns = trace.max_lag_lsns.max(link.stream.lag_lsns());
    }
    Ok(trace)
}

/// Independent recovery of exactly the shipped prefix: a fresh `MemDisk`
/// and a `MemLogStore` preloaded with the follower's durable bytes, with a
/// *null* master so analysis starts at byte zero and the dirty-page table
/// covers every page. The promoted follower must fingerprint-equal this.
fn reference_recovery_fingerprint(
    shipped: &[u8],
    catalog: &[u8],
    pool_pages: usize,
) -> Result<Vec<u8>> {
    let store = MemLogStore::new();
    store.append(shipped)?;
    let (db, _) = Database::with_parts_recovered(
        Arc::new(MemDisk::new()),
        Box::new(store),
        Some(catalog),
        pool_pages,
        Duration::from_secs(2),
    )?;
    torture::fingerprint(&db)
}

/// Fault-free reference follower: ingest the shipped prefix as in-order
/// single-record frames and fingerprint the result. Implements the history
/// oracle — "follower state at watermark W equals the leader's historical
/// state at W" — for W = the prefix's last LSN.
fn reference_follower_fingerprint(
    catalog: &[u8],
    shipped: &[u8],
    rcfg: &ReplConfig,
) -> Result<(Vec<u8>, Lsn)> {
    let mut cfg = rcfg.clone();
    cfg.faults = ChannelFaults::default();
    let mut f = Follower::new(cfg, catalog.to_vec())?;
    let ch = ReplChannel::new(ChannelFaults::default(), 0);
    let mut off = 0usize;
    while let Some((rec, used)) = LogRecord::decode_framed(&shipped[off..])? {
        let frame = Frame::new(0, off as u64, rec.lsn, rec.lsn, shipped[off..off + used].to_vec());
        f.ingest(Message::Frame(frame), &ch)?;
        off += used;
    }
    Ok((f.fingerprint()?, f.watermark()))
}

/// Kill the leader at `offset` (relative to the post-build clock, same
/// base as the single-node sweep), promote the follower, and assert the
/// promotion oracles. With `rejoin`, additionally revive the old leader:
/// first as a stale *leader* (its frames must get it fenced), then as a
/// *follower* (catch-up must resume or snapshot-fallback to byte-identical
/// convergence).
pub fn run_leader_crash_episode(
    cfg: &TortureConfig,
    rcfg: &ReplConfig,
    offset: u64,
    rejoin: bool,
) -> Result<ReplEpisodeReport> {
    let mut violations = Vec::new();
    let mut link = ReplLink::new(cfg, rcfg, cfg.seed ^ offset.rotate_left(17))?;
    if !link.converge(300)? {
        violations.push("initial catch-up never converged".into());
    }
    link.parts.clock.arm(&FaultSchedule::crash_at(offset));
    let trace = run_repl_workload(&mut link, &[])?;
    // Deliver whatever was in flight when the leader died; a dead leader
    // ships and answers nothing new.
    for _ in 0..32 {
        link.tick()?;
    }
    let crash_event = link.parts.clock.stats().crash_event;
    if crash_event.is_none() {
        violations.push("scheduled leader crash never fired inside the workload".into());
    }
    let epoch_before = link.follower.epoch();
    let shipped = link.follower.store().durable_bytes();
    let shipped_watermark = link.follower.watermark();

    let ReplLink { rcfg: link_rcfg, db, parts, catalog, stream, mut follower, .. } = link;
    drop(stream);
    drop(db);

    let promotion = follower.promote()?;
    if follower.epoch() != epoch_before + 1 {
        violations.push(format!(
            "promotion did not bump the epoch: {} -> {}",
            epoch_before,
            follower.epoch()
        ));
    }
    // Promotion exactness: the promoted state IS recovery of the shipped
    // prefix — nothing more (no resurrections), nothing less (no losses).
    match reference_recovery_fingerprint(&shipped, &catalog, cfg.pool_pages) {
        Ok(ref_fp) => {
            if ref_fp != follower.fingerprint()? {
                violations.push(
                    "promotion: state != independent recovery of the shipped prefix".into(),
                );
            }
        }
        Err(e) => violations.push(format!("reference recovery of the shipped prefix failed: {e}")),
    }
    // Durability: every ship-acked commit is served by the promoted
    // follower, and the promoted database passes the full consistency
    // oracle (views == recomputation, balances == ledger replay).
    let oracle_trace = WorkloadTrace {
        attempted: trace.base.attempted,
        acked_transfers: match link_rcfg.ship_mode {
            ShipMode::Sync => trace.repl_acked.clone(),
            // Async acks promise only the *shipped* prefix survives.
            ShipMode::Async => trace
                .transfers
                .iter()
                .filter(|(l, _)| *l <= shipped_watermark)
                .map(|&(_, tr)| tr)
                .collect(),
        },
        acked_commits: trace.repl_acked_commits,
        ..Default::default()
    };
    torture::check_oracle(follower.db(), cfg, &oracle_trace, "promoted", &mut violations);
    // The promoted database accepts new work.
    let mut txn = follower.db().begin(IsolationLevel::ReadCommitted);
    let post = torture::do_transfer(follower.db(), &mut txn, i64::MAX, 0, cfg.accounts - 1, 1)
        .and_then(|()| follower.db().commit(&mut txn).map(|_| ()));
    match post {
        Ok(()) => {
            if let Err(e) = follower.db().verify_view(torture::BANK_VIEW) {
                violations.push(format!("[post-promotion] view diverged: {e}"));
            }
        }
        Err(e) => violations.push(format!("[post-promotion] promoted db rejected work: {e}")),
    }

    let mut fenced = false;
    let mut reconnects = 0;
    let mut snapshot_fallbacks = 0;
    if rejoin {
        let (f, r, s) =
            rejoin_drill(cfg, &link_rcfg, parts, &catalog, &mut follower, &mut violations)?;
        fenced = f;
        reconnects = r;
        snapshot_fallbacks = s;
    }

    Ok(ReplEpisodeReport {
        kind: ReplEpisodeKind::LeaderCrash,
        crash_event,
        violations,
        repl_acked_commits: trace.repl_acked_commits,
        sync_ack_timeouts: trace.sync_ack_timeouts,
        max_lag_lsns: trace.max_lag_lsns,
        reconnects,
        snapshot_fallbacks,
        fenced_stale_leader: fenced,
        promotion_losers: promotion.losers,
    })
}

/// Revive the crashed old leader twice over: first as a stale leader that
/// must be fenced by the epoch check, then as a follower that must
/// converge with the new leader (resume when its log is still a clean
/// prefix, snapshot fallback when its unshipped suffix or the promotion's
/// CLRs made the logs diverge).
fn rejoin_drill(
    cfg: &TortureConfig,
    rcfg: &ReplConfig,
    parts: torture::Parts,
    catalog: &[u8],
    new_leader: &mut Follower,
    violations: &mut Vec<String>,
) -> Result<(bool, u64, u64)> {
    parts.disk.crash_restore();
    parts.store.crash_restore();
    parts.clock.disarm();
    let mut lossless = rcfg.clone();
    lossless.faults = ChannelFaults::default();

    // Drill 1 — fencing. The revived process still believes it leads and
    // ships frames at the old epoch; the promoted follower nacks them and
    // the nack fences it through the health machine.
    let (old_db, _) = Database::with_parts_recovered(
        Arc::new(parts.disk.clone()),
        Box::new(parts.store.clone()),
        Some(catalog),
        cfg.pool_pages,
        Duration::from_secs(2),
    )?;
    let mut old_stream =
        ReplicationStream::new(Arc::clone(&old_db), parts.store.clone(), lossless.clone());
    let ch = ReplChannel::new(ChannelFaults::default(), cfg.seed);
    old_stream.pump(&ch)?;
    new_leader.drain(&ch)?;
    old_stream.drain_control(&ch)?;
    let fenced = old_db.health().state() == HealthState::Fenced;
    if !fenced {
        violations.push("stale leader was not fenced after shipping at the old epoch".into());
    }
    let snap = old_db.metrics_snapshot();
    if snap.label_value("engine.health_state_name") != Some("fenced") {
        violations.push("fence not visible in the stale leader's metrics labels".into());
    }
    drop(old_stream);
    drop(old_db);

    // Drill 2 — rejoin as follower. Catch-up negotiation decides resume vs
    // snapshot; either way the rejoined node must converge byte-identically
    // and adopt the new epoch.
    let mut rejoined = Follower::from_parts(
        lossless.clone(),
        Arc::clone(&parts.clock),
        parts.disk.clone(),
        parts.store.clone(),
        catalog.to_vec(),
    )?;
    new_leader.db().log().flush_all()?;
    let mut new_stream = ReplicationStream::new(
        Arc::clone(new_leader.db()),
        new_leader.store().clone(),
        lossless,
    );
    let ch2 = ReplChannel::new(ChannelFaults::default(), cfg.seed ^ 1);
    rejoined.send_hello(&ch2);
    let target = new_leader.db().log().flushed_lsn();
    let mut converged = false;
    for _ in 0..300 {
        new_stream.drain_control(&ch2)?;
        new_stream.pump(&ch2)?;
        rejoined.drain(&ch2)?;
        if rejoined.watermark() >= target
            && rejoined.store().durable_bytes() == new_leader.store().durable_bytes()
        {
            converged = true;
            break;
        }
    }
    if !converged {
        violations.push("rejoined old leader never converged with the new leader".into());
    } else {
        if rejoined.fingerprint()? != new_leader.fingerprint()? {
            violations.push("rejoined old leader state != new leader state".into());
        }
        if rejoined.epoch() != new_leader.epoch() {
            violations.push("rejoined old leader did not adopt the new epoch".into());
        }
    }
    Ok((fenced, new_stream.reconnects(), new_stream.snapshot_fallbacks()))
}

/// Kill the follower at `offset` of *its* clock (relative to the
/// post-catch-up base), reboot it onto its durable prefix, and assert the
/// reopen + catch-up oracles.
pub fn run_follower_crash_episode(
    cfg: &TortureConfig,
    rcfg: &ReplConfig,
    offset: u64,
) -> Result<ReplEpisodeReport> {
    let mut violations = Vec::new();
    let mut link = ReplLink::new(cfg, rcfg, cfg.seed)?;
    if !link.converge(300)? {
        violations.push("initial catch-up never converged".into());
    }
    link.follower.clock().arm(&FaultSchedule::crash_at(offset));
    let trace = run_repl_workload(&mut link, &[])?;
    let crash_event = link.follower.clock().stats().crash_event;
    if crash_event.is_none() {
        violations.push("scheduled follower crash never fired inside the workload".into());
    }

    // Reboot onto the frozen durable image; redo-only replay, never undo.
    link.follower.reopen()?;
    let fb = link.follower.store().durable_bytes();
    let lb = link.parts.store.durable_bytes();
    // Never-beyond-the-prefix: the reopened follower's log must be a byte
    // prefix of the leader's — recovery may lose a tail, never invent one.
    if fb.len() > lb.len() || fb[..] != lb[..fb.len()] {
        violations.push("[reopen] follower log is not a byte prefix of the leader's".into());
    }
    // History oracle at the reopened watermark.
    match reference_follower_fingerprint(&link.catalog, &fb, rcfg) {
        Ok((ref_fp, ref_wm)) => {
            if ref_wm != link.follower.watermark() {
                violations.push(format!(
                    "[reopen] watermark {:?} != last LSN {:?} of the durable prefix",
                    link.follower.watermark(),
                    ref_wm
                ));
            }
            if ref_fp != link.follower.fingerprint()? {
                violations
                    .push("[reopen] state at watermark != in-order replay of the prefix".into());
            }
        }
        Err(e) => violations.push(format!("reference follower replay failed: {e}")),
    }

    // Catch-up: the reopened follower's Hello renegotiates, the leader
    // resumes from the surviving prefix, and both sides converge
    // byte-identically.
    link.db.log().flush_all()?;
    if !link.converge(800)? {
        violations.push("follower never caught back up after its crash".into());
    } else {
        if link.follower.store().durable_bytes() != link.parts.store.durable_bytes() {
            violations.push("[converged] follower log not byte-identical to the leader's".into());
        }
        if link.follower.fingerprint()? != torture::fingerprint(&link.db)? {
            violations.push("[converged] follower state != leader state".into());
        }
    }

    Ok(ReplEpisodeReport {
        kind: ReplEpisodeKind::FollowerCrash,
        crash_event,
        violations,
        repl_acked_commits: trace.repl_acked_commits,
        sync_ack_timeouts: trace.sync_ack_timeouts,
        max_lag_lsns: trace.max_lag_lsns,
        reconnects: link.stream.reconnects(),
        snapshot_fallbacks: link.stream.snapshot_fallbacks(),
        fenced_stale_leader: false,
        promotion_losers: 0,
    })
}

/// Partition/lag storm: a lossy fault plan plus seeded partition windows
/// at transaction boundaries. The follower falls behind, reconnects after
/// each heal, and must converge byte-identically once the workload ends.
pub fn run_partition_episode(
    cfg: &TortureConfig,
    rcfg: &ReplConfig,
    seed: u64,
) -> Result<ReplEpisodeReport> {
    let mut violations = Vec::new();
    let mut rcfg = rcfg.clone();
    // Async: a partitioned Sync link would spend the whole episode waiting
    // out ack budgets; lag tolerance is exactly what Async mode is for.
    rcfg.ship_mode = ShipMode::Async;
    rcfg.faults = ChannelFaults::lossy();
    let mut link = ReplLink::new(cfg, &rcfg, seed)?;
    if !link.converge(600)? {
        violations.push("initial catch-up never converged under loss".into());
    }
    // Two partition windows scattered over the workload.
    let mut rng = Rng::new(seed ^ 0x6b43_19f2_8c0d_55a1);
    let n = cfg.txns.max(4);
    let on1 = 1 + rng.below(n as u64 / 3 + 1) as usize;
    let len1 = 2 + rng.below(5) as usize;
    let on2 = (on1 + len1 + 1 + rng.below(n as u64 / 3 + 1) as usize).min(n - 2);
    let len2 = 1 + rng.below(4) as usize;
    let plan = vec![
        (on1, true),
        ((on1 + len1).min(on2.saturating_sub(1)), false),
        (on2, true),
        ((on2 + len2).min(n - 1), false),
    ];
    let trace = run_repl_workload(&mut link, &plan)?;
    link.channel.set_partitioned(false);
    link.db.log().flush_all()?;
    if !link.converge(2000)? {
        violations.push("never converged after the partition healed".into());
    } else {
        if link.follower.store().durable_bytes() != link.parts.store.durable_bytes() {
            violations.push("[converged] follower log not byte-identical to the leader's".into());
        }
        if link.follower.fingerprint()? != torture::fingerprint(&link.db)? {
            violations.push("[converged] follower state != leader state".into());
        }
    }
    if link.channel.stats().partitions == 0 {
        violations.push("partition plan never severed the link".into());
    }

    Ok(ReplEpisodeReport {
        kind: ReplEpisodeKind::Partition,
        crash_event: None,
        violations,
        repl_acked_commits: trace.repl_acked_commits,
        sync_ack_timeouts: trace.sync_ack_timeouts,
        max_lag_lsns: trace.max_lag_lsns,
        reconnects: link.stream.reconnects(),
        snapshot_fallbacks: link.stream.snapshot_fallbacks(),
        fenced_stale_leader: false,
        promotion_losers: 0,
    })
}

/// Fault-free follower event horizon: how many follower-clock events the
/// replicated workload spans after initial catch-up. Uses the same channel
/// seed and fault plan as the follower-crash episodes, so swept offsets
/// land on real events.
pub fn measure_follower_horizon(cfg: &TortureConfig, rcfg: &ReplConfig) -> Result<u64> {
    let mut link = ReplLink::new(cfg, rcfg, cfg.seed)?;
    link.converge(300)?;
    let base = link.follower.clock().events();
    let _ = run_repl_workload(&mut link, &[])?;
    Ok(link.follower.clock().events() - base)
}

/// Sweep the replication seams: leader crashes strided over the leader
/// horizon (every fourth with the old-leader rejoin drill), follower
/// crashes strided over the follower horizon (with duplicate/reorder
/// channel faults), seeded partition storms, and mid-batch pipeline
/// leader deaths (crash exactly between a group-commit batch's first and
/// last commit-record append, then promote).
pub fn run_replication_sweep(cfg: &TortureConfig, max_points: usize) -> Result<ReplSweepReport> {
    let mut report = ReplSweepReport::default();
    let rcfg = ReplConfig::default();
    report.horizon = torture::measure_horizon(cfg)?;
    if report.horizon == 0 || max_points == 0 {
        return Ok(report);
    }
    let leader_n = (max_points / 2).max(1);
    let follower_n = (max_points / 4).max(1);
    let partition_n = (max_points / 8).max(1);
    let mid_n = max_points.saturating_sub(leader_n + follower_n + partition_n).max(1);

    let absorb = |report: &mut ReplSweepReport, label: String, ep: &ReplEpisodeReport| {
        report.episodes += 1;
        report.repl_acked_commits += ep.repl_acked_commits;
        report.reconnects += ep.reconnects;
        report.snapshot_fallbacks += ep.snapshot_fallbacks;
        if ep.fenced_stale_leader {
            report.fences += 1;
        }
        for v in &ep.violations {
            report.violations.push((label.clone(), v.clone()));
        }
    };

    // Leader crashes.
    let mut leader_events = HashSet::new();
    let stride = (report.horizon / leader_n as u64).max(1);
    let mut offset = 0u64;
    let mut i = 0usize;
    while offset < report.horizon && i < leader_n {
        let rejoin = i % 4 == 3;
        let ep = run_leader_crash_episode(cfg, &rcfg, offset, rejoin)?;
        report.promotions += 1;
        if let Some(ev) = ep.crash_event {
            leader_events.insert(ev);
        }
        absorb(&mut report, format!("leader@{offset}"), &ep);
        offset += stride;
        i += 1;
    }
    report.leader_crash_points = leader_events.len();

    // Follower crashes, with duplicate/reorder faults on the frame lane so
    // the crash points land inside replay-under-redelivery.
    let mut frcfg = rcfg.clone();
    frcfg.ship_mode = ShipMode::Async;
    frcfg.faults = ChannelFaults { dup_p: 0.15, reorder_p: 0.15, ..ChannelFaults::default() };
    report.follower_horizon = measure_follower_horizon(cfg, &frcfg)?;
    let mut follower_events = HashSet::new();
    if report.follower_horizon > 0 {
        let stride = (report.follower_horizon / follower_n as u64).max(1);
        let mut offset = 0u64;
        let mut i = 0usize;
        while offset < report.follower_horizon && i < follower_n {
            let ep = run_follower_crash_episode(cfg, &frcfg, offset)?;
            if let Some(ev) = ep.crash_event {
                follower_events.insert(ev);
            }
            absorb(&mut report, format!("follower@{offset}"), &ep);
            offset += stride;
            i += 1;
        }
    }
    report.follower_crash_points = follower_events.len();

    // Partition storms, one per derived seed.
    for k in 0..partition_n {
        let seed = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k as u64 + 1);
        let ep = run_partition_episode(cfg, &rcfg, seed)?;
        report.partition_points += 1;
        absorb(&mut report, format!("partition#{seed:x}"), &ep);
    }

    // Mid-batch pipeline leader deaths: the ISSUE's headline case. The
    // probe fires between a batch's first and last commit-record append,
    // so the durable log holds a *partial* group when the follower is
    // promoted — and every sync-acked commit must still be served.
    let mid_cfg = TortureConfig { pipeline: true, ..cfg.clone() };
    let occurrences: Vec<u64> = torture::measure_probe_offsets(&mid_cfg, &MID_BATCH_PROBE)?
        .into_iter()
        .map(|(_, o)| o)
        .collect();
    let mut mid_events = HashSet::new();
    if !occurrences.is_empty() {
        let stride = (occurrences.len() / mid_n).max(1);
        for &off in occurrences.iter().step_by(stride).take(mid_n) {
            let ep = run_leader_crash_episode(&mid_cfg, &rcfg, off, false)?;
            report.promotions += 1;
            if let Some(ev) = ep.crash_event {
                mid_events.insert(ev);
            }
            if ep.violations.is_empty() {
                report.mid_batch_acked_survived += ep.repl_acked_commits;
            }
            absorb(&mut report, format!("mid-batch@{off}"), &ep);
        }
    }
    report.mid_batch_points = mid_events.len();

    report.distinct_points = report.leader_crash_points
        + report.follower_crash_points
        + report.partition_points
        + report.mid_batch_points;
    Ok(report)
}

/// Outcome of the replication metrics determinism/sanity check.
#[derive(Clone, Debug)]
pub struct ReplMetricsCheckReport {
    /// Merged `repl.*` snapshot of the first run.
    pub snapshot: Snapshot,
    /// Violations; empty = metrics are well-formed and deterministic.
    pub violations: Vec<String>,
}

/// Run the fault-free replicated workload twice with identical seeds and
/// assert the merged `repl.*` snapshot (leader stream + follower + channel)
/// is structurally valid, byte-identical across runs, and reflects real
/// activity — lag gauges must read zero at convergence.
pub fn run_repl_metrics_check(cfg: &TortureConfig) -> Result<ReplMetricsCheckReport> {
    let rcfg = ReplConfig::default();
    let run_once = || -> Result<Snapshot> {
        let mut link = ReplLink::new(cfg, &rcfg, cfg.seed)?;
        link.converge(300)?;
        let _ = run_repl_workload(&mut link, &[])?;
        link.db.log().flush_all()?;
        link.converge(600)?;
        // Let trailing acks flow so the lag gauges settle.
        for _ in 0..6 {
            link.tick()?;
        }
        let mut s = link.stream.obs_snapshot();
        s.merge(link.follower.obs_snapshot());
        let cs = link.channel.stats();
        let mut c = Snapshot::default();
        c.counter("repl.channel.data_sent", cs.data_sent);
        c.counter("repl.channel.data_delivered", cs.data_delivered);
        c.counter("repl.channel.dropped", cs.dropped);
        c.counter("repl.channel.duplicated", cs.duplicated);
        c.counter("repl.channel.reordered", cs.reordered);
        c.counter("repl.channel.delayed", cs.delayed);
        c.counter("repl.channel.torn", cs.torn);
        c.counter("repl.channel.control_dropped", cs.control_dropped);
        c.counter("repl.channel.partitions", cs.partitions);
        s.merge(c);
        Ok(s)
    };
    let a = run_once()?;
    let b = run_once()?;
    let mut violations = Vec::new();
    for (name, snap) in [("first", &a), ("second", &b)] {
        if let Err(e) = snap.validate() {
            violations.push(format!("[{name}] malformed snapshot: {e}"));
        }
    }
    if a != b {
        violations.push("repl snapshot divergence between identically-seeded runs".into());
    }
    if a.counter_value("repl.leader.frames_shipped").unwrap_or(0) == 0 {
        violations.push("no frames shipped — replication not exercised".into());
    }
    if a.counter_value("repl.follower.records_applied").unwrap_or(0) == 0 {
        violations.push("no records applied — follower replay not exercised".into());
    }
    if a.counter_value("repl.follower.acks_sent").unwrap_or(0) == 0 {
        violations.push("no acks sent — the control lane is dead".into());
    }
    if a.gauge_value("repl.leader.lag_lsns").unwrap_or(-1) != 0 {
        violations.push("lag gauge non-zero at convergence".into());
    }
    match a.hist_value("repl.leader.ship_records") {
        Some(h) if h.count() > 0 => {}
        _ => violations.push("ship-records histogram empty".into()),
    }
    match a.hist_value("repl.follower.apply_records") {
        Some(h) if h.count() > 0 => {}
        _ => violations.push("apply-records histogram empty".into()),
    }
    Ok(ReplMetricsCheckReport { snapshot: a, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> TortureConfig {
        TortureConfig { txns: 12, ..Default::default() }
    }

    #[test]
    fn fault_free_link_converges_and_matches_leader() {
        let cfg = quick_cfg();
        let rcfg = ReplConfig::default();
        let mut link = ReplLink::new(&cfg, &rcfg, 7).unwrap();
        assert!(link.converge(300).unwrap());
        let trace = run_repl_workload(&mut link, &[]).unwrap();
        assert_eq!(trace.base.acked_commits, 11);
        assert_eq!(trace.repl_acked_commits, 11, "sync acks missing: {trace:?}");
        link.db.log().flush_all().unwrap();
        assert!(link.converge(600).unwrap());
        assert_eq!(
            link.follower.store().durable_bytes(),
            link.parts.store.durable_bytes(),
            "logs not byte-identical after convergence"
        );
        assert_eq!(
            link.follower.fingerprint().unwrap(),
            torture::fingerprint(&link.db).unwrap()
        );
    }

    #[test]
    fn minmax_and_hash_redo_ship_as_ordinary_records() {
        // MIN/MAX recompute rewrites and hash-bucket pages carry no special
        // replication handling: with the gated workload on, the follower
        // must still converge to byte-identical logs and an identical
        // recovered fingerprint (which includes the hash-index pages).
        let cfg = TortureConfig { txns: 16, minmax: true, ..Default::default() };
        let rcfg = ReplConfig::default();
        let mut link = ReplLink::new(&cfg, &rcfg, 7).unwrap();
        assert!(link.converge(300).unwrap());
        let trace = run_repl_workload(&mut link, &[]).unwrap();
        assert!(trace.base.acked_commits > 0);
        link.db.log().flush_all().unwrap();
        assert!(link.converge(600).unwrap());
        assert_eq!(
            link.follower.store().durable_bytes(),
            link.parts.store.durable_bytes(),
            "logs not byte-identical after convergence"
        );
        assert_eq!(
            link.follower.fingerprint().unwrap(),
            torture::fingerprint(&link.db).unwrap()
        );
    }

    #[test]
    fn minmax_leader_crash_episode_promotes_cleanly() {
        let cfg = TortureConfig { txns: 16, minmax: true, ..Default::default() };
        let ep = run_leader_crash_episode(&cfg, &ReplConfig::default(), 40, false).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert!(ep.crash_event.is_some());
    }

    #[test]
    fn leader_crash_episode_promotes_cleanly() {
        let ep = run_leader_crash_episode(&quick_cfg(), &ReplConfig::default(), 40, false).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert!(ep.crash_event.is_some());
    }

    #[test]
    fn leader_crash_with_rejoin_fences_and_reconverges() {
        let ep = run_leader_crash_episode(&quick_cfg(), &ReplConfig::default(), 25, true).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert!(ep.fenced_stale_leader);
        assert!(ep.reconnects + ep.snapshot_fallbacks >= 1);
    }

    #[test]
    fn follower_crash_episode_reopens_and_catches_up() {
        let mut rcfg = ReplConfig::default();
        rcfg.ship_mode = ShipMode::Async;
        rcfg.faults = ChannelFaults { dup_p: 0.15, reorder_p: 0.15, ..ChannelFaults::default() };
        let horizon = measure_follower_horizon(&quick_cfg(), &rcfg).unwrap();
        assert!(horizon > 2, "follower horizon too small: {horizon}");
        let ep = run_follower_crash_episode(&quick_cfg(), &rcfg, horizon / 2).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert!(ep.crash_event.is_some());
    }

    #[test]
    fn partition_episode_converges_after_heal() {
        let ep = run_partition_episode(&quick_cfg(), &ReplConfig::default(), 11).unwrap();
        assert!(ep.violations.is_empty(), "{:?}", ep.violations);
        assert!(ep.max_lag_lsns > 0, "partition never built lag");
    }

    #[test]
    fn repl_metrics_check_is_deterministic() {
        let report = run_repl_metrics_check(&quick_cfg()).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.snapshot.counter_value("repl.leader.frames_shipped").unwrap() > 0);
    }

    #[test]
    fn mini_replication_sweep_is_clean() {
        let report = run_replication_sweep(&quick_cfg(), 12).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.distinct_points >= 8, "only {} points", report.distinct_points);
        assert!(report.promotions > 0);
        assert!(report.fences > 0, "no rejoin drill fenced a stale leader");
        assert!(report.mid_batch_points > 0, "no mid-batch pipeline crash exercised");
    }
}
