//! Hash point-read fast path for indexed views.
//!
//! A [`HashIndex`] sits *alongside* a view's B-tree: the tree remains the
//! ordered/scan authority (range scans, gap locks, verification), while the
//! hash answers equality probes on hot groups in O(1) page fetches instead
//! of a root-to-leaf descent. Every bucket mutation goes through the same
//! physiological logging as the B-tree ([`RedoOp`] applied under the page
//! latch, pageLSN stamped), so crash recovery and WAL-shipping replication
//! replay hash pages as ordinary redo — no special cases anywhere in the
//! recovery path.
//!
//! Layout: one **directory** page holds `nbuckets` slots, slot *i* being the
//! 4-byte [`PageId`] of bucket *i*'s first page. Bucket pages are slotted
//! pages (`PageType::HashBucket`) whose reserved node-header bytes 0..4
//! store the next-overflow page id (`u32::MAX` = none). Entries are
//! `[klen:u16 | key | value]`, unsorted within a bucket. The structure is
//! static (no rehashing): overflow pages chain off a full bucket, which is
//! exactly the fixed-directory design the point-read benchmark measures.
//!
//! Concurrency mirrors the tree: a coarse index latch held shared by all
//! operations and exclusively by structure growth (overflow allocation,
//! which runs as its own committed system transaction, like a B-tree
//! split), plus per-page frame latches for the byte access. Transaction
//! locks are the engine's concern — callers hold the view-row lock before
//! mutating either structure, and the engine mirrors every tree write into
//! the hash inside the same transaction, so the two structures agree at
//! every commit boundary (and after every recovery, since both are redone
//! and logically undone together).

use parking_lot::RwLock;
use std::sync::Arc;
use txview_btree::{LogCtx, OpLog};
use txview_common::codec::checksum64;
use txview_common::{Error, IndexId, Lsn, PageId, Result};
use txview_storage::buffer::{BufferPool, PinnedPage};
use txview_storage::page::PageType;
use txview_wal::log::PAYLOAD_HEADER_LEN;
use txview_wal::record::{RecordBody, RedoOp, TxnKind};
use txview_wal::LogManager;

/// Default bucket count for view hash indexes. Views hold one row per
/// group; tens of buckets keep chains at one page for every workload in
/// the experiment suite while bounding the directory to one page.
pub const DEFAULT_BUCKETS: usize = 32;

/// Crash-probe fired immediately before a logged bucket-page write (the
/// crash matrix uses it to land a crash between the B-tree write and its
/// hash mirror).
pub const BUCKET_WRITE_PROBE: &str = "hash.bucket.write";

/// A static-directory hash index over a buffer pool.
pub struct HashIndex {
    index_id: IndexId,
    dir: PageId,
    pool: Arc<BufferPool>,
    latch: RwLock<()>,
}

/// Which bucket a key lands in.
fn bucket_of(key: &[u8], nbuckets: usize) -> usize {
    (checksum64(key) % nbuckets as u64) as usize
}

/// Encode one bucket entry: `[klen:u16 | key | value]`.
fn encode_entry(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + key.len() + value.len());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out
}

/// Split an encoded entry into `(key, value)`.
fn decode_entry(rec: &[u8]) -> Result<(&[u8], &[u8])> {
    if rec.len() < 2 {
        return Err(Error::corruption("hash entry shorter than its header"));
    }
    let klen = u16::from_le_bytes(rec[..2].try_into().unwrap()) as usize;
    if 2 + klen > rec.len() {
        return Err(Error::corruption("hash entry key overruns the record"));
    }
    Ok((&rec[2..2 + klen], &rec[2 + klen..]))
}

/// Next-overflow pointer stored in a bucket page's reserved header.
fn next_of(guard: &txview_storage::buffer::PageReadGuard<'_>) -> PageId {
    let b = &guard.payload()[..4];
    PageId(u32::from_le_bytes(b.try_into().unwrap()))
}

fn slots<'a>(
    guard: &'a txview_storage::buffer::PageReadGuard<'_>,
) -> txview_storage::slotted::SlottedRef<'a> {
    txview_storage::slotted::SlottedRef::wrap(&guard.payload()[PAYLOAD_HEADER_LEN..])
}

impl HashIndex {
    /// Create an empty hash index: directory plus `nbuckets` bucket pages,
    /// all formatted and logged under one flushed system transaction (DDL
    /// survives any crash, like `Tree::create`).
    pub fn create(
        pool: &Arc<BufferPool>,
        log: &LogManager,
        index_id: IndexId,
        nbuckets: usize,
    ) -> Result<HashIndex> {
        let sys = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log, txn: sys, last_lsn: &mut last };
        ctx.append(RecordBody::Begin { kind: TxnKind::System });
        let (dir, dir_page) = Self::new_bucket_page(pool, &mut ctx)?;
        for i in 0..nbuckets {
            let (pid, _) = Self::new_bucket_page(pool, &mut ctx)?;
            let mut g = dir_page.write();
            let redo = RedoOp::SlotInsert { idx: i as u16, bytes: pid.0.to_le_bytes().to_vec() };
            let inverse = RedoOp::SlotRemove { idx: i as u16 };
            Self::apply_logged(&dir_page, &mut g, redo, inverse, &mut ctx, &OpLog::System)?;
        }
        let commit = ctx.append(RecordBody::Commit);
        ctx.append(RecordBody::End);
        log.flush_to(commit)?;
        Ok(HashIndex { index_id, dir, pool: Arc::clone(pool), latch: RwLock::new(()) })
    }

    /// Open an existing hash index rooted at directory page `dir`. Touches
    /// no pages — catalog load runs before ARIES redo, so the directory may
    /// not be materialized yet (the bucket count is read from the directory
    /// on each probe, like `Tree::open` defers its root fetch).
    pub fn open(pool: &Arc<BufferPool>, index_id: IndexId, dir: PageId) -> HashIndex {
        HashIndex { index_id, dir, pool: Arc::clone(pool), latch: RwLock::new(()) }
    }

    /// The index id this hash serves (its own catalog id, not the tree's).
    pub fn index_id(&self) -> IndexId {
        self.index_id
    }

    /// The directory page id (persisted in the catalog).
    pub fn dir(&self) -> PageId {
        self.dir
    }

    /// Allocate and format one `HashBucket` page with a null next pointer.
    fn new_bucket_page(pool: &Arc<BufferPool>, ctx: &mut LogCtx<'_>) -> Result<(PageId, PinnedPage)> {
        let (pid, page) = pool.new_page(PageType::HashBucket)?;
        let mut g = page.write();
        let fmt = RedoOp::FormatPage { ty: 5, header_len: PAYLOAD_HEADER_LEN as u16 };
        fmt.apply(g.payload_mut(), PAYLOAD_HEADER_LEN)?;
        g.payload_mut()[..4].copy_from_slice(&PageId::NULL.0.to_le_bytes());
        let _ = ctx.log_op(
            pid,
            fmt,
            RedoOp::FormatPage { ty: 0, header_len: PAYLOAD_HEADER_LEN as u16 },
            &OpLog::System,
        );
        let hdr = RedoOp::Patch { off: 0, bytes: g.payload()[..PAYLOAD_HEADER_LEN].to_vec() };
        let lsn = ctx.log_op(pid, hdr.clone(), hdr, &OpLog::System);
        g.set_lsn(lsn);
        drop(g);
        Ok((pid, page))
    }

    /// Bucket head page id for `key`.
    fn bucket_head(&self, key: &[u8]) -> Result<PageId> {
        let dir = self.pool.fetch(self.dir)?;
        let g = dir.read();
        let s = slots(&g);
        let rec = s.get(bucket_of(key, s.count()));
        Ok(PageId(u32::from_le_bytes(rec.try_into().map_err(|_| {
            Error::corruption("hash directory slot is not a page id")
        })?)))
    }

    /// Find `key` in its bucket chain: `(page, slot index)` if present.
    fn find(&self, key: &[u8]) -> Result<Option<(PinnedPage, usize)>> {
        let mut pid = self.bucket_head(key)?;
        loop {
            let page = self.pool.fetch(pid)?;
            let next = {
                let g = page.read();
                let s = slots(&g);
                for i in 0..s.count() {
                    let (k, _) = decode_entry(s.get(i))?;
                    if k == key {
                        drop(g);
                        return Ok(Some((page, i)));
                    }
                }
                next_of(&g)
            };
            if next.is_null() {
                return Ok(None);
            }
            pid = next;
        }
    }

    /// Apply a slotted redo op to a latched page and log it (the B-tree's
    /// idiom, byte for byte — which is why replication replays hash pages
    /// with zero new code).
    fn apply_logged(
        page: &PinnedPage,
        guard: &mut txview_storage::buffer::PageWriteGuard<'_>,
        redo: RedoOp,
        inverse: RedoOp,
        ctx: &mut LogCtx<'_>,
        how: &OpLog,
    ) -> Result<()> {
        ctx.log.probe_point(BUCKET_WRITE_PROBE);
        redo.apply(guard.payload_mut(), PAYLOAD_HEADER_LEN)?;
        let lsn = ctx.log_op(page.id(), redo, inverse, how);
        if !lsn.is_null() {
            guard.set_lsn(lsn);
        }
        Ok(())
    }

    /// Point lookup: value bytes if the key is present.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _t = self.latch.read();
        match self.find(key)? {
            Some((page, idx)) => {
                let g = page.read();
                let (_, v) = decode_entry(slots(&g).get(idx))?;
                Ok(Some(v.to_vec()))
            }
            None => Ok(None),
        }
    }

    /// Insert or replace `key → value`.
    pub fn put(&self, key: &[u8], value: &[u8], ctx: &mut LogCtx<'_>, how: &OpLog) -> Result<()> {
        let rec = encode_entry(key, value);
        loop {
            {
                let _t = self.latch.read();
                if let Some((page, idx)) = self.find(key)? {
                    let mut g = page.write();
                    let old = slots_mut_snapshot(&g, idx);
                    let grow = rec.len().saturating_sub(old.len());
                    if free_space(&g) >= grow {
                        let redo = RedoOp::SlotUpdate { idx: idx as u16, bytes: rec.clone() };
                        let inverse = RedoOp::SlotUpdate { idx: idx as u16, bytes: old };
                        Self::apply_logged(&page, &mut g, redo, inverse, ctx, how)?;
                        return Ok(());
                    }
                } else {
                    // Append into the first chain page with room.
                    let mut pid = self.bucket_head(key)?;
                    loop {
                        let page = self.pool.fetch(pid)?;
                        let mut g = page.write();
                        let (count, free, next) = (slot_count(&g), free_space(&g), next_in(&g));
                        if free >= rec.len() + 8 {
                            let redo =
                                RedoOp::SlotInsert { idx: count as u16, bytes: rec.clone() };
                            let inverse = RedoOp::SlotRemove { idx: count as u16 };
                            Self::apply_logged(&page, &mut g, redo, inverse, ctx, how)?;
                            return Ok(());
                        }
                        if next.is_null() {
                            break; // chain is full: grow it below
                        }
                        pid = next;
                    }
                }
            }
            // Chain full (or a replace outgrew its page): link a fresh
            // overflow page in a committed system transaction, then retry.
            self.grow_chain(key, ctx.log)?;
        }
    }

    /// Remove `key` if present (idempotent — mirrors may race cleanup).
    pub fn remove(&self, key: &[u8], ctx: &mut LogCtx<'_>, how: &OpLog) -> Result<()> {
        let _t = self.latch.read();
        let Some((page, idx)) = self.find(key)? else { return Ok(()) };
        let mut g = page.write();
        let old = slots_mut_snapshot(&g, idx);
        let redo = RedoOp::SlotRemove { idx: idx as u16 };
        let inverse = RedoOp::SlotInsert { idx: idx as u16, bytes: old };
        Self::apply_logged(&page, &mut g, redo, inverse, ctx, how)?;
        Ok(())
    }

    /// Read-modify-write of the tail of an entry's value starting at
    /// `region_off` (the escrow mirror: same additive patch as the tree, so
    /// concurrent E-lock holders compose instead of overwriting each other).
    pub fn patch_region<F>(
        &self,
        key: &[u8],
        region_off: usize,
        f: F,
        ctx: &mut LogCtx<'_>,
        how: &OpLog,
    ) -> Result<()>
    where
        F: FnOnce(&[u8]) -> Result<Vec<u8>>,
    {
        let _t = self.latch.read();
        let Some((page, idx)) = self.find(key)? else {
            return Err(Error::NotFound(format!(
                "hash entry for escrow patch in index {}",
                self.index_id.0
            )));
        };
        let mut g = page.write();
        let rec = slots_mut_snapshot(&g, idx);
        let rec_off = 2 + key.len() + region_off;
        if rec_off > rec.len() {
            return Err(Error::corruption("hash value region beyond entry"));
        }
        let old_region = rec[rec_off..].to_vec();
        let new_region = f(&old_region)?;
        if new_region.len() != old_region.len() {
            return Err(Error::invalid(format!(
                "hash escrow patch must preserve length ({} -> {})",
                old_region.len(),
                new_region.len()
            )));
        }
        let redo = RedoOp::SlotPatch { idx: idx as u16, off: rec_off as u16, bytes: new_region };
        let inverse = RedoOp::SlotPatch { idx: idx as u16, off: rec_off as u16, bytes: old_region };
        Self::apply_logged(&page, &mut g, redo, inverse, ctx, how)?;
        Ok(())
    }

    /// All `(key, value)` entries, in bucket-chain order (verification).
    pub fn scan_all(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let _t = self.latch.read();
        let heads: Vec<PageId> = {
            let dir = self.pool.fetch(self.dir)?;
            let g = dir.read();
            let s = slots(&g);
            (0..s.count())
                .map(|i| {
                    let rec = s.get(i);
                    Ok(PageId(u32::from_le_bytes(rec.try_into().map_err(|_| {
                        Error::corruption("hash directory slot is not a page id")
                    })?)))
                })
                .collect::<Result<_>>()?
        };
        let mut out = Vec::new();
        for head in heads {
            let mut pid = head;
            while !pid.is_null() {
                let page = self.pool.fetch(pid)?;
                let g = page.read();
                let s = slots(&g);
                for i in 0..s.count() {
                    let (k, v) = decode_entry(s.get(i))?;
                    out.push((k.to_vec(), v.to_vec()));
                }
                pid = next_of(&g);
            }
        }
        Ok(out)
    }

    /// Link one fresh overflow page at the tail of `key`'s bucket chain
    /// (committed system transaction under the exclusive latch, like a
    /// B-tree split — a user rollback never unlinks it).
    fn grow_chain(&self, key: &[u8], log: &LogManager) -> Result<()> {
        let _t = self.latch.write();
        let sys = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log, txn: sys, last_lsn: &mut last };
        ctx.append(RecordBody::Begin { kind: TxnKind::System });
        // Walk to the chain tail (another thread may have grown it already;
        // the extra page is then simply spare capacity).
        let mut pid = self.bucket_head(key)?;
        loop {
            let page = self.pool.fetch(pid)?;
            let next = next_of(&page.read());
            if next.is_null() {
                let (new_pid, _) = Self::new_bucket_page(&self.pool, &mut ctx)?;
                let mut g = page.write();
                let redo =
                    RedoOp::Patch { off: 0, bytes: new_pid.0.to_le_bytes().to_vec() };
                let inverse =
                    RedoOp::Patch { off: 0, bytes: PageId::NULL.0.to_le_bytes().to_vec() };
                // Bypass apply_logged's probe: chain growth is structural,
                // not a record write (System ops log physical inverses).
                redo.apply(g.payload_mut(), PAYLOAD_HEADER_LEN)?;
                let lsn = ctx.log_op(page.id(), redo, inverse, &OpLog::System);
                g.set_lsn(lsn);
                break;
            }
            pid = next;
        }
        ctx.append(RecordBody::Commit);
        ctx.append(RecordBody::End);
        Ok(())
    }
}

/// Slot count through a write guard.
fn slot_count(guard: &txview_storage::buffer::PageWriteGuard<'_>) -> usize {
    txview_storage::slotted::SlottedRef::wrap(&guard.payload()[PAYLOAD_HEADER_LEN..]).count()
}

/// Free space through a write guard.
fn free_space(guard: &txview_storage::buffer::PageWriteGuard<'_>) -> usize {
    txview_storage::slotted::SlottedRef::wrap(&guard.payload()[PAYLOAD_HEADER_LEN..]).free_space()
}

/// Next-overflow pointer through a write guard.
fn next_in(guard: &txview_storage::buffer::PageWriteGuard<'_>) -> PageId {
    PageId(u32::from_le_bytes(guard.payload()[..4].try_into().unwrap()))
}

/// Copy of the record in slot `idx`, read through a write guard.
fn slots_mut_snapshot(guard: &txview_storage::buffer::PageWriteGuard<'_>, idx: usize) -> Vec<u8> {
    txview_storage::slotted::SlottedRef::wrap(&guard.payload()[PAYLOAD_HEADER_LEN..])
        .get(idx)
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_storage::disk::MemDisk;
    use txview_wal::record::UndoOp;

    fn setup() -> (Arc<BufferPool>, LogManager) {
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 64);
        let log = LogManager::in_memory();
        (pool, log)
    }

    fn put(h: &HashIndex, log: &LogManager, k: &[u8], v: &[u8]) {
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log, txn, last_lsn: &mut last };
        h.put(k, v, &mut ctx, &OpLog::Update { undo: UndoOp::None }).unwrap();
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let (pool, log) = setup();
        let h = HashIndex::create(&pool, &log, IndexId(9), 4).unwrap();
        put(&h, &log, b"alpha", b"1");
        put(&h, &log, b"beta", b"2");
        assert_eq!(h.get(b"alpha").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(h.get(b"beta").unwrap().as_deref(), Some(&b"2"[..]));
        assert_eq!(h.get(b"gamma").unwrap(), None);
        // Replace in place.
        put(&h, &log, b"alpha", b"one");
        assert_eq!(h.get(b"alpha").unwrap().as_deref(), Some(&b"one"[..]));
        // Remove is idempotent.
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
        h.remove(b"alpha", &mut ctx, &OpLog::Update { undo: UndoOp::None }).unwrap();
        h.remove(b"alpha", &mut ctx, &OpLog::Update { undo: UndoOp::None }).unwrap();
        assert_eq!(h.get(b"alpha").unwrap(), None);
        assert_eq!(h.scan_all().unwrap().len(), 1);
    }

    #[test]
    fn overflow_chains_grow_and_stay_readable() {
        let (pool, log) = setup();
        // One bucket forces every key into the same chain.
        let h = HashIndex::create(&pool, &log, IndexId(9), 1).unwrap();
        let big = vec![7u8; 600];
        for i in 0..40u32 {
            put(&h, &log, &i.to_le_bytes(), &big);
        }
        for i in 0..40u32 {
            assert_eq!(h.get(&i.to_le_bytes()).unwrap().as_deref(), Some(&big[..]));
        }
        assert_eq!(h.scan_all().unwrap().len(), 40);
    }

    #[test]
    fn reopen_sees_all_entries() {
        let (pool, log) = setup();
        let h = HashIndex::create(&pool, &log, IndexId(9), 8).unwrap();
        for i in 0..20u32 {
            put(&h, &log, &i.to_le_bytes(), b"v");
        }
        let dir = h.dir();
        drop(h);
        let h2 = HashIndex::open(&pool, IndexId(9), dir);
        for i in 0..20u32 {
            assert!(h2.get(&i.to_le_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn patch_region_applies_in_place() {
        let (pool, log) = setup();
        let h = HashIndex::create(&pool, &log, IndexId(9), 2).unwrap();
        put(&h, &log, b"k", b"aaaabbbb");
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
        h.patch_region(
            b"k",
            4,
            |old| {
                assert_eq!(old, b"bbbb");
                Ok(b"BBBB".to_vec())
            },
            &mut ctx,
            &OpLog::Update { undo: UndoOp::None },
        )
        .unwrap();
        assert_eq!(h.get(b"k").unwrap().as_deref(), Some(&b"aaaaBBBB"[..]));
        // Length-changing patches are rejected.
        let err = h
            .patch_region(b"k", 4, |_| Ok(vec![1]), &mut ctx, &OpLog::Update { undo: UndoOp::None })
            .unwrap_err();
        assert!(matches!(err, Error::InvalidOperation(_)));
    }
}
