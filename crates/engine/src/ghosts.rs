//! The ghost-cleanup work queue: group rows whose count dropped to zero
//! are unlinked lazily by [`crate::Database::run_ghost_cleanup`], and DML
//! paths enqueue candidates here at delete/undo time.
//!
//! Two properties matter on the hot path:
//!
//! * **No global serialization** — the queue is striped by key hash, so
//!   concurrent deleters touching different groups enqueue without
//!   contending on one mutex.
//! * **Dedup at enqueue** — the same `(IndexId, key)` ghosted twice before
//!   a cleanup sweep runs used to queue double work (and the backlog gauge
//!   double-counted it). Each stripe keeps a membership set; a key already
//!   queued is not queued again. Membership is dropped at drain time, so a
//!   key re-ghosted *after* a sweep picked it up is — correctly — queued
//!   again, and the cleanup pass re-enqueueing a skipped locked group goes
//!   through the same dedup.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use txview_common::IndexId;

/// A ghost-cleanup candidate: index and group key.
pub type GhostKey = (IndexId, Vec<u8>);

/// Stripe count (power of two; selection is a mask).
const STRIPES: usize = 16;

#[derive(Default)]
struct Stripe {
    /// FIFO of pending candidates within this stripe.
    queue: VecDeque<GhostKey>,
    /// Keys currently sitting in `queue` (the dedup membership set).
    queued: HashSet<GhostKey>,
}

/// Striped, deduplicating queue of ghost-cleanup candidates.
pub struct GhostQueue {
    stripes: Box<[Mutex<Stripe>]>,
}

impl Default for GhostQueue {
    fn default() -> GhostQueue {
        GhostQueue {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }
}

impl GhostQueue {
    /// Empty queue.
    pub fn new() -> GhostQueue {
        GhostQueue::default()
    }

    fn stripe(&self, key: &GhostKey) -> &Mutex<Stripe> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) & (STRIPES - 1)]
    }

    /// Enqueue a candidate. Returns `false` (and queues nothing) if the
    /// key is already pending.
    pub fn enqueue(&self, index: IndexId, key: Vec<u8>) -> bool {
        let gk = (index, key);
        let mut stripe = self.stripe(&gk).lock();
        if stripe.queued.insert(gk.clone()) {
            stripe.queue.push_back(gk);
            true
        } else {
            false
        }
    }

    /// Drain every pending candidate, stripe by stripe in fixed order
    /// (FIFO within a stripe). Drained keys lose their membership, so a
    /// subsequent ghosting of the same key queues fresh work.
    pub fn drain(&self) -> Vec<GhostKey> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let mut s = stripe.lock();
            s.queued.clear();
            out.extend(s.queue.drain(..));
        }
        out
    }

    /// Pending candidate count (the `engine.ghost_backlog` gauge). Exact
    /// whenever no enqueue/drain is mid-flight.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().queue.len()).sum()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (crash simulation: the queue is volatile; recovery
    /// re-derives cleanable ghosts from the recovered trees).
    pub fn clear(&self) {
        for stripe in self.stripes.iter() {
            let mut s = stripe.lock();
            s.queue.clear();
            s.queued.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDX: IndexId = IndexId(3);

    #[test]
    fn enqueue_dedups_until_drained() {
        let q = GhostQueue::new();
        assert!(q.enqueue(IDX, b"g1".to_vec()));
        assert!(!q.enqueue(IDX, b"g1".to_vec()), "duplicate rejected");
        assert!(q.enqueue(IDX, b"g2".to_vec()));
        assert_eq!(q.len(), 2);
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
        // After a drain the key may be ghosted anew.
        assert!(q.enqueue(IDX, b"g1".to_vec()));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn distinct_indexes_are_distinct_keys() {
        let q = GhostQueue::new();
        assert!(q.enqueue(IndexId(1), b"g".to_vec()));
        assert!(q.enqueue(IndexId(2), b"g".to_vec()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_returns_every_stripe_exactly_once() {
        let q = GhostQueue::new();
        for i in 0..100u64 {
            assert!(q.enqueue(IDX, i.to_be_bytes().to_vec()));
        }
        assert_eq!(q.len(), 100);
        let mut drained = q.drain();
        drained.sort();
        drained.dedup();
        assert_eq!(drained.len(), 100);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue_and_membership() {
        let q = GhostQueue::new();
        q.enqueue(IDX, b"g".to_vec());
        q.clear();
        assert!(q.is_empty());
        assert!(q.enqueue(IDX, b"g".to_vec()), "membership cleared too");
    }
}
