//! Readers: view lookups/scans and base-table reads at the three isolation
//! levels.
//!
//! * **ReadCommitted** — short S key locks: the reader waits out in-flight
//!   escrow/X writers of each row it touches, then releases immediately.
//! * **Serializable** — long S key locks *plus* key-range (gap) locks held
//!   to commit: the read range is phantom-protected and conflicts with
//!   escrow writers, exactly the paper's "stable aggregates" guarantee.
//! * **Snapshot** — no locks at all: versions as of the transaction's
//!   snapshot LSN. Escrow writers are never blocked by snapshot readers.

use crate::db::Database;
use txview_common::{Error, Key, Result, Row, Value};
use txview_lock::{LockMode, LockName};
use txview_txn::{IsolationLevel, Transaction};

impl Database {
    /// Point lookup of a view row by its group values. Returns the full
    /// view row `[group..., COUNT_BIG, aggs...]` if the group is visible.
    pub fn view_lookup(
        &self,
        txn: &mut Transaction,
        view_name: &str,
        group: &[Value],
    ) -> Result<Option<Row>> {
        let view = self.catalog.read().view(view_name)?.clone();
        let key = Key::from_values(group);
        let kb = key.as_bytes().to_vec();
        let tree = self.tree(view.index)?;

        if txn.isolation == IsolationLevel::Snapshot {
            return self
                .snapshot_view_value(&view, &kb, txn.snapshot_lsn)?
                .map(|bytes| Row::from_bytes(&bytes))
                .transpose();
        }

        let name = LockName::key(view.index, kb.clone());
        self.locks.acquire(txn.id, name.clone(), LockMode::S)?;
        self.txns.note_read_dependency(txn, &name);
        let out = match tree.get(&key)? {
            Some((false, bytes)) if self.view_row_visible(view.index, &bytes)? => {
                Some(Row::from_bytes(&bytes)?)
            }
            _ => None,
        };
        match txn.isolation {
            IsolationLevel::ReadCommitted => {
                self.locks.release(txn.id, &name);
            }
            IsolationLevel::Serializable => {
                // Phantom protection for a missing/invisible group: lock the
                // gap the group would occupy.
                if out.is_none() {
                    let gap = match tree.next_geq(&key.successor())? {
                        Some((next, _)) => LockName::gap(view.index, next),
                        None => LockName::EndGap(view.index),
                    };
                    self.locks.acquire(txn.id, gap, LockMode::S)?;
                }
            }
            IsolationLevel::Snapshot => unreachable!("handled above"),
        }
        Ok(out)
    }

    /// Point lookup of a view row through the hash fast path when the view
    /// carries one — same contract as [`Database::view_lookup`], O(1) page
    /// fetches instead of a root-to-leaf descent on hot groups.
    ///
    /// Only the read-committed path probes the hash: a snapshot read needs
    /// the version store (the hash holds only the newest image), and a
    /// serializable miss needs the B-tree to find the gap to range-lock.
    /// Both, and views without a hash, fall back to `view_lookup` — the
    /// fast path changes latency, never results (the differential proptest
    /// pins byte-identical rows from both paths).
    pub fn view_point_read(
        &self,
        txn: &mut Transaction,
        view_name: &str,
        group: &[Value],
    ) -> Result<Option<Row>> {
        let view = self.catalog.read().view(view_name)?.clone();
        let Some(hash) = self.hash_for(view.index) else {
            return self.view_lookup(txn, view_name, group);
        };
        if txn.isolation != IsolationLevel::ReadCommitted {
            return self.view_lookup(txn, view_name, group);
        }
        let key = Key::from_values(group);
        let kb = key.as_bytes().to_vec();
        let name = LockName::key(view.index, kb.clone());
        self.locks.acquire(txn.id, name.clone(), LockMode::S)?;
        self.txns.note_read_dependency(txn, &name);
        let out = match hash.get(&kb)? {
            Some(bytes) if self.view_row_visible(view.index, &bytes)? => {
                Some(Row::from_bytes(&bytes)?)
            }
            _ => None,
        };
        self.locks.release(txn.id, &name);
        self.obs.hash_point_reads.inc();
        Ok(out)
    }

    /// Range scan of a view over group keys in `[lo, hi_exclusive)` (both
    /// optional). Returns visible rows in key order.
    pub fn view_scan(
        &self,
        txn: &mut Transaction,
        view_name: &str,
        lo: Option<&[Value]>,
        hi_exclusive: Option<&[Value]>,
    ) -> Result<Vec<Row>> {
        let view = self.catalog.read().view(view_name)?.clone();
        let tree = self.tree(view.index)?;
        let lo_key = lo.map(Key::from_values);
        let hi_key = hi_exclusive.map(Key::from_values);

        if txn.isolation == IsolationLevel::Snapshot {
            // Union of live tree keys and version-chain keys in range.
            let (items, _) = tree.scan(lo_key.as_ref(), hi_key.as_ref(), true)?;
            let mut keys: Vec<Vec<u8>> = items.into_iter().map(|i| i.key).collect();
            for k in self.versions.keys_for(view.index) {
                let in_lo = lo_key.as_ref().is_none_or(|l| k.as_slice() >= l.as_bytes());
                let in_hi = hi_key.as_ref().is_none_or(|h| k.as_slice() < h.as_bytes());
                if in_lo && in_hi {
                    keys.push(k);
                }
            }
            keys.sort();
            keys.dedup();
            let mut out = Vec::new();
            for kb in keys {
                if let Some(bytes) = self.snapshot_view_value(&view, &kb, txn.snapshot_lsn)? {
                    out.push(Row::from_bytes(&bytes)?);
                }
            }
            return Ok(out);
        }

        // Locking scans: enumerate physical keys first, then lock + re-read
        // each (values observed under the S lock are settled).
        let (items, next_key) = tree.scan(lo_key.as_ref(), hi_key.as_ref(), true)?;
        let serializable = txn.isolation == IsolationLevel::Serializable;
        let mut out = Vec::new();
        for item in items {
            let name = LockName::key(view.index, item.key.clone());
            self.locks.acquire(txn.id, name.clone(), LockMode::S)?;
            self.txns.note_read_dependency(txn, &name);
            if serializable {
                self.locks
                    .acquire(txn.id, LockName::gap(view.index, item.key.clone()), LockMode::S)?;
            }
            let key = Key::from_bytes(item.key.clone());
            if let Some((false, bytes)) = tree.get(&key)? {
                if self.view_row_visible(view.index, &bytes)? {
                    out.push(Row::from_bytes(&bytes)?);
                }
            }
            if !serializable {
                self.locks.release(txn.id, &name);
            }
        }
        if serializable {
            // Close the range: lock the gap beyond the last key.
            let end = match next_key {
                Some(k) => LockName::gap(view.index, k),
                None => LockName::EndGap(view.index),
            };
            self.locks.acquire(txn.id, end, LockMode::S)?;
        }
        Ok(out)
    }

    /// Point lookup of a base-table row by primary key.
    pub fn get_row(&self, txn: &mut Transaction, table: &str, pk: &[Value]) -> Result<Option<Row>> {
        let def = self.catalog.read().table(table)?.clone();
        let key = Key::from_values(pk);
        let tree = self.tree(def.index)?;
        if txn.isolation == IsolationLevel::Snapshot {
            // Base tables are not versioned in this reproduction; snapshot
            // reads of base rows degrade to read-committed.
        }
        let name = LockName::key(def.index, key.as_bytes());
        self.locks.acquire(txn.id, name.clone(), LockMode::S)?;
        let out = match tree.get(&key)? {
            Some((false, bytes)) => Some(Row::from_bytes(&bytes)?),
            _ => None,
        };
        if txn.isolation != IsolationLevel::Serializable {
            self.locks.release(txn.id, &name);
        }
        Ok(out)
    }

    /// Full scan of a base table (S object lock; long for serializable).
    pub fn scan_table(&self, txn: &mut Transaction, table: &str) -> Result<Vec<Row>> {
        let def = self.catalog.read().table(table)?.clone();
        let tree = self.tree(def.index)?;
        let name = LockName::Object(def.id);
        self.locks.acquire(txn.id, name.clone(), LockMode::S)?;
        let (items, _) = tree.scan(None, None, false)?;
        let rows = items
            .into_iter()
            .map(|i| Row::from_bytes(&i.value))
            .collect::<Result<Vec<_>>>()?;
        if txn.isolation != IsolationLevel::Serializable {
            self.locks.release(txn.id, &name);
        }
        Ok(rows)
    }

    /// Convenience: the aggregate values of one group — `(COUNT_BIG,
    /// aggs...)` — or `None` if the group is invisible.
    pub fn view_aggregates(
        &self,
        txn: &mut Transaction,
        view_name: &str,
        group: &[Value],
    ) -> Result<Option<(i64, Vec<Value>)>> {
        let view = self.catalog.read().view(view_name)?.clone();
        match self.view_lookup(txn, view_name, group)? {
            None => Ok(None),
            Some(row) => {
                let ngroup = view.group_types.len();
                let count = row.get(ngroup).as_int()?;
                let aggs = (0..view.aggs.len())
                    .map(|i| row.get(ngroup + 1 + i).clone())
                    .collect();
                Ok(Some((count, aggs)))
            }
        }
    }

    /// Derived AVG of a SUM-backed aggregate, following the paper's rule:
    /// AVG is not stored as a quotient (it does not commute); the stored
    /// value is the running SUM ([`crate::catalog::AggSpec::Avg`] or a
    /// plain SUM column) and the quotient `SUM / COUNT_BIG` is computed at
    /// read time from the same row, at the transaction's isolation level.
    /// `agg_idx` selects the column among the view's aggregates.
    ///
    /// Returns `Value::Null` when the group is empty or invisible — SQL
    /// semantics: the average over zero rows is NULL, not 0 and not an
    /// absent row (a serializable reader still gap-locks the miss through
    /// `view_aggregates`, so the NULL is stable).
    pub fn view_avg(
        &self,
        txn: &mut Transaction,
        view_name: &str,
        group: &[Value],
        agg_idx: usize,
    ) -> Result<Value> {
        let view = self.catalog.read().view(view_name)?.clone();
        if agg_idx >= view.aggs.len() {
            return Err(Error::Schema(format!(
                "view '{view_name}' has {} aggregates",
                view.aggs.len()
            )));
        }
        if !view.aggs[agg_idx].is_escrow_capable() {
            return Err(Error::Schema("AVG derives only from SUM aggregates".into()));
        }
        match self.view_aggregates(txn, view_name, group)? {
            Some((count, aggs)) if count > 0 => {
                Ok(Value::Float(aggs[agg_idx].as_float()? / count as f64))
            }
            _ => Ok(Value::Null),
        }
    }

    /// A transaction reading a row it has escrow-incremented must convert
    /// E → X (it cannot know concurrent increments). This helper makes the
    /// conversion explicit for callers that need read-back semantics.
    pub fn view_lookup_for_update(
        &self,
        txn: &mut Transaction,
        view_name: &str,
        group: &[Value],
    ) -> Result<Option<Row>> {
        let view = self.catalog.read().view(view_name)?.clone();
        let key = Key::from_values(group);
        let name = LockName::key(view.index, key.as_bytes());
        self.locks.acquire(txn.id, name.clone(), LockMode::X)?;
        self.txns.note_read_dependency(txn, &name);
        let tree = self.tree(view.index)?;
        match tree.get(&key)? {
            Some((false, bytes)) if self.view_row_visible(view.index, &bytes)? => {
                Ok(Some(Row::from_bytes(&bytes)?))
            }
            _ => Ok(None),
        }
    }

    /// Quiesced, lock-free view dump (tests and verification): all visible
    /// rows in key order.
    pub fn dump_view(&self, view_name: &str) -> Result<Vec<Row>> {
        let view = self.catalog.read().view(view_name)?.clone();
        let tree = self.tree(view.index)?;
        let (items, _) = tree.scan(None, None, false)?;
        let mut out = Vec::new();
        for item in items {
            if self.view_row_visible(view.index, &item.value)? {
                out.push(Row::from_bytes(&item.value)?);
            }
        }
        Ok(out)
    }

    /// Quiesced, lock-free table dump (tests): all live rows in key order.
    pub fn dump_table(&self, table: &str) -> Result<Vec<Row>> {
        let def = self.catalog.read().table(table)?.clone();
        let tree = self.tree(def.index)?;
        let (items, _) = tree.scan(None, None, false)?;
        items.into_iter().map(|i| Row::from_bytes(&i.value)).collect()
    }
}

// Keep Error in the prelude for doc examples referencing it.
#[allow(unused_imports)]
use Error as _ErrorAlias;
