//! Engine health state machine: `Healthy → DegradedReadOnly → Fenced`.
//!
//! The I/O resilience layer (retry policies in the buffer pool and log
//! manager) absorbs *transient* faults below the engine. What escapes —
//! exhausted write-path retries, i.e. a fault that persisted through the
//! whole retry budget — lands here and transitions the engine out of
//! `Healthy`:
//!
//! * **DegradedReadOnly** — the durable write path is unreliable, but
//!   reads through the buffer pool still work (clean-victim eviction
//!   never needs the write path). New writers are rejected with a
//!   *retryable* [`Error::Degraded`] so application retry loops treat the
//!   outage like a lock timeout: back off and try again. A successful
//!   [`probe`](HealthMonitor::heal) (the database flushes log + pool
//!   end-to-end) returns the engine to `Healthy`.
//! * **Fenced** — evidence of corruption on the commit path. The engine
//!   stops accepting any work ([`Error::Fenced`], not retryable); only a
//!   restart-with-recovery may resurrect it. Fencing is sticky:
//!   `heal` does not clear it.
//!
//! The state lives in a single `AtomicU8` so the hot-path check
//! ([`HealthMonitor::check_writable`]) is one relaxed load.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use txview_common::{Error, Result};

/// Engine availability state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HealthState {
    #[default]
    /// Full service: reads and writes.
    Healthy,
    /// Durable write path failed persistently: reads only, writers get a
    /// retryable [`Error::Degraded`].
    DegradedReadOnly,
    /// Corruption on the commit path: no service until restart+recovery.
    Fenced,
}

impl HealthState {
    fn from_u8(v: u8) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::DegradedReadOnly,
            _ => HealthState::Fenced,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::DegradedReadOnly => 1,
            HealthState::Fenced => 2,
        }
    }

    /// Numeric level for gauges: 0 healthy, 1 degraded, 2 fenced.
    pub fn level(self) -> i64 {
        self.as_u8() as i64
    }

    /// Stable lowercase name for labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::DegradedReadOnly => "degraded_read_only",
            HealthState::Fenced => "fenced",
        }
    }
}

/// Counters snapshot for reports and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthStatsSnapshot {
    /// Healthy → DegradedReadOnly transitions.
    pub degradations: u64,
    /// Write attempts rejected while degraded or fenced.
    pub writes_rejected: u64,
    /// DegradedReadOnly → Healthy transitions (successful probes).
    pub heals: u64,
    /// Transitions into Fenced.
    pub fences: u64,
}

/// The health state machine. One per [`crate::Database`].
pub struct HealthMonitor {
    state: AtomicU8,
    /// Human-readable reason for the last non-Healthy transition.
    reason: Mutex<String>,
    degradations: AtomicU64,
    writes_rejected: AtomicU64,
    heals: AtomicU64,
    fences: AtomicU64,
}

impl Default for HealthMonitor {
    fn default() -> HealthMonitor {
        HealthMonitor::new()
    }
}

impl HealthMonitor {
    /// Fresh monitor in `Healthy`.
    pub fn new() -> HealthMonitor {
        HealthMonitor {
            state: AtomicU8::new(HealthState::Healthy.as_u8()),
            reason: Mutex::new(String::new()),
            degradations: AtomicU64::new(0),
            writes_rejected: AtomicU64::new(0),
            heals: AtomicU64::new(0),
            fences: AtomicU64::new(0),
        }
    }

    /// Current state (one relaxed load).
    pub fn state(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Reason for the last degradation/fence (empty while healthy).
    pub fn reason(&self) -> String {
        self.reason.lock().clone()
    }

    /// Gate a write entry point: `Ok(())` while healthy, a classified
    /// error otherwise (retryable `Degraded`, terminal `Fenced`).
    pub fn check_writable(&self) -> Result<()> {
        match self.state() {
            HealthState::Healthy => Ok(()),
            HealthState::DegradedReadOnly => {
                self.writes_rejected.fetch_add(1, Ordering::Relaxed);
                Err(Error::Degraded { reason: self.reason() })
            }
            HealthState::Fenced => {
                self.writes_rejected.fetch_add(1, Ordering::Relaxed);
                Err(Error::Fenced { reason: self.reason() })
            }
        }
    }

    /// Healthy → DegradedReadOnly (no-op if already degraded or fenced).
    pub fn degrade(&self, reason: &str) {
        if self
            .state
            .compare_exchange(
                HealthState::Healthy.as_u8(),
                HealthState::DegradedReadOnly.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            *self.reason.lock() = reason.to_string();
            self.degradations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Any state → Fenced (sticky; `heal` does not clear it).
    pub fn fence(&self, reason: &str) {
        let prev = self.state.swap(HealthState::Fenced.as_u8(), Ordering::AcqRel);
        if prev != HealthState::Fenced.as_u8() {
            *self.reason.lock() = reason.to_string();
            self.fences.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// DegradedReadOnly → Healthy after a successful end-to-end probe.
    /// Returns whether a transition happened. Fenced stays fenced.
    pub fn heal(&self) -> bool {
        let ok = self
            .state
            .compare_exchange(
                HealthState::DegradedReadOnly.as_u8(),
                HealthState::Healthy.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if ok {
            self.reason.lock().clear();
            self.heals.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Restart-with-recovery: the only exit from `Fenced`. Returns to
    /// `Healthy` unconditionally; counters are preserved.
    pub fn reset(&self) {
        self.state.store(HealthState::Healthy.as_u8(), Ordering::Release);
        self.reason.lock().clear();
    }

    /// Counters snapshot.
    pub fn stats(&self) -> HealthStatsSnapshot {
        HealthStatsSnapshot {
            degradations: self.degradations.load(Ordering::Relaxed),
            writes_rejected: self.writes_rejected.load(Ordering::Relaxed),
            heals: self.heals.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy_and_writable() {
        let h = HealthMonitor::new();
        assert_eq!(h.state(), HealthState::Healthy);
        assert!(h.check_writable().is_ok());
        assert_eq!(h.stats(), HealthStatsSnapshot::default());
    }

    #[test]
    fn degrade_rejects_writers_with_retryable_error() {
        let h = HealthMonitor::new();
        h.degrade("log sync exhausted retries");
        assert_eq!(h.state(), HealthState::DegradedReadOnly);
        let err = h.check_writable().unwrap_err();
        assert!(matches!(err, Error::Degraded { .. }));
        assert!(err.is_retryable());
        assert_eq!(h.reason(), "log sync exhausted retries");
        assert_eq!(h.stats().writes_rejected, 1);
        assert_eq!(h.stats().degradations, 1);
    }

    #[test]
    fn heal_returns_to_healthy_once() {
        let h = HealthMonitor::new();
        h.degrade("outage");
        assert!(h.heal());
        assert_eq!(h.state(), HealthState::Healthy);
        assert!(h.check_writable().is_ok());
        assert!(h.reason().is_empty());
        // Healing a healthy engine is a no-op.
        assert!(!h.heal());
        assert_eq!(h.stats().heals, 1);
    }

    #[test]
    fn repeated_degrade_keeps_first_reason() {
        let h = HealthMonitor::new();
        h.degrade("first");
        h.degrade("second");
        assert_eq!(h.reason(), "first");
        assert_eq!(h.stats().degradations, 1);
    }

    #[test]
    fn fence_is_sticky_and_not_retryable() {
        let h = HealthMonitor::new();
        h.degrade("outage");
        h.fence("commit-path corruption");
        assert_eq!(h.state(), HealthState::Fenced);
        let err = h.check_writable().unwrap_err();
        assert!(matches!(err, Error::Fenced { .. }));
        assert!(!err.is_retryable());
        // heal() does not clear a fence.
        assert!(!h.heal());
        assert_eq!(h.state(), HealthState::Fenced);
        assert_eq!(h.stats().fences, 1);
    }
}
