//! Commit-dependency tracking for early escrow-lock release (ELR).
//!
//! When the commit pipeline runs with `elr = true`, a committing
//! transaction drops its E (escrow) locks at log-append time — before its
//! commit record is durable. Any transaction that then acquires an S/X/U
//! lock on one of those *stained* names has read (or is about to
//! overwrite) state whose durability is still pending: it records a
//! **commit dependency** on the predecessor and may only acknowledge its
//! own commit once every predecessor's outcome is definite.
//!
//! Why this is safe at all is the paper's escrow argument: increments
//! commute and carry logical undo, so a predecessor whose group flush
//! fails can retract its delta *under no locks* — the dependency table is
//! only needed to stop a dependent from acking state that is being
//! retracted. E-E interactions deliberately record nothing: two escrow
//! writers never read each other's values, which is the entire point of
//! early release.
//!
//! Outcome tracking is per predecessor, not per LSN: a predecessor whose
//! flush failed rolls back (retracting its delta) even though a *later*
//! flush retry may make its commit record durable bytes-wise. A dependent
//! that only compared `flushed_lsn >= dep_lsn` would then ack having read
//! retracted data — hence [`PredState`] keeps the failed verdict until
//! every dependent has resolved against it.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use txview_common::obs::Counter;
use txview_common::{Lsn, TxnId};
use txview_lock::{LockName, SchedEvent, SchedHook};

/// Definite fate of an ELR predecessor's commit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredOutcome {
    /// Group flush still in flight.
    Pending,
    /// Commit record durable and acknowledged; dependents are free.
    Durable,
    /// Group flush failed; the predecessor is retracting its deltas and
    /// every dependent must abort.
    Failed,
}

struct PredInner {
    outcome: PredOutcome,
    /// Dependents currently parked in [`PredState::wait_outcome`].
    waiters: Vec<TxnId>,
}

/// Shared, waitable outcome slot of one ELR predecessor. Created at stain
/// time; dependents hold an `Arc` to it for as long as they exist, so the
/// failed verdict outlives the stain-table entry.
pub struct PredState {
    /// The predecessor transaction.
    pub txn: TxnId,
    /// Its commit record's LSN.
    pub commit_lsn: Lsn,
    inner: Mutex<PredInner>,
    cv: Condvar,
}

impl PredState {
    fn new(txn: TxnId, commit_lsn: Lsn) -> Arc<PredState> {
        Arc::new(PredState {
            txn,
            commit_lsn,
            inner: Mutex::new(PredInner { outcome: PredOutcome::Pending, waiters: Vec::new() }),
            cv: Condvar::new(),
        })
    }

    /// Current outcome (non-blocking).
    pub fn outcome(&self) -> PredOutcome {
        self.inner.lock().outcome
    }

    /// Fix the outcome and wake every parked dependent. Idempotent for
    /// repeated identical verdicts; the first verdict wins otherwise.
    pub fn set_outcome(&self, outcome: PredOutcome, hook: Option<&Arc<dyn SchedHook>>) {
        debug_assert_ne!(outcome, PredOutcome::Pending);
        let waiters = {
            let mut g = self.inner.lock();
            if g.outcome != PredOutcome::Pending {
                return;
            }
            g.outcome = outcome;
            std::mem::take(&mut g.waiters)
        };
        for w in &waiters {
            if let Some(h) = hook {
                h.on_grant(*w, &SchedEvent::DepGrant { commit_lsn: self.commit_lsn.0 });
            }
        }
        self.cv.notify_all();
    }

    /// Park `me` until the outcome is definite. Uses the same
    /// block/grant/resume protocol as a lock wait so the interleaving
    /// explorer stays deterministic: the predecessor's thread resolves us
    /// via `on_grant` from [`PredState::set_outcome`].
    pub fn wait_outcome(&self, me: TxnId, hook: Option<&Arc<dyn SchedHook>>) -> PredOutcome {
        {
            let mut g = self.inner.lock();
            if g.outcome != PredOutcome::Pending {
                return g.outcome;
            }
            g.waiters.push(me);
        }
        if let Some(h) = hook {
            h.on_block(me, &SchedEvent::DepWait { commit_lsn: self.commit_lsn.0 });
        }
        let out = {
            let mut g = self.inner.lock();
            while g.outcome == PredOutcome::Pending {
                self.cv.wait(&mut g);
            }
            g.outcome
        };
        if let Some(h) = hook {
            h.on_resume(me);
        }
        out
    }
}

/// One recorded dependency edge of a dependent transaction.
#[derive(Clone)]
pub struct Dep {
    /// The predecessor.
    pub pred: TxnId,
    /// The predecessor's commit LSN (prefix-flush bound).
    pub lsn: Lsn,
    /// Its waitable outcome.
    pub state: Arc<PredState>,
}

/// Cap on the recorded dependency-edge log (torture-oracle evidence; the
/// protocol itself never reads it back).
const EDGE_LOG_CAP: usize = 65_536;

/// The commit-dependency table: stained lock names → the not-yet-resolved
/// ELR predecessors that released them.
///
/// A name may carry *several* live predecessors: E locks are shared, so
/// two escrow writers can both ELR-release the same view row while both
/// are still pending. A reader granted after those releases depends on
/// every one of them.
#[derive(Default)]
pub struct DepTable {
    stains: Mutex<HashMap<LockName, Vec<Arc<PredState>>>>,
    /// Bounded evidence log of recorded edges `(dependent, pred, pred
    /// commit LSN)` for the torture recovery oracle.
    edges: Mutex<Vec<(TxnId, TxnId, Lsn)>>,
    /// Dependency edges recorded (acquires that hit a pending stain).
    pub dep_recorded: Counter,
    /// Dependents that parked waiting for a predecessor's outcome.
    pub dep_waits: Counter,
    /// Dependents aborted because a predecessor failed.
    pub dep_aborts: Counter,
}

impl DepTable {
    /// New empty table.
    pub fn new() -> DepTable {
        DepTable::default()
    }

    /// Stain `names` as released-early by `pred` at `commit_lsn`. Called
    /// *before* the E locks are actually released, so any reader the
    /// release unblocks already sees the stain. Returns the predecessor's
    /// outcome slot for the committer to resolve.
    pub fn stain(&self, pred: TxnId, commit_lsn: Lsn, names: &[LockName]) -> Arc<PredState> {
        let state = PredState::new(pred, commit_lsn);
        let mut stains = self.stains.lock();
        for name in names {
            let entry = stains.entry(name.clone()).or_default();
            // Drop entries that are already durably resolved; failed ones
            // stay until their rollback retracts the delta.
            entry.retain(|p| p.outcome() != PredOutcome::Durable);
            entry.push(Arc::clone(&state));
        }
        state
    }

    /// The live (non-durable) predecessors staining `name`, recorded as
    /// dependencies of `dependent`. Returns an empty vec for clean names.
    pub fn deps_for(&self, dependent: TxnId, name: &LockName) -> Vec<Dep> {
        let mut stains = self.stains.lock();
        let Some(entry) = stains.get_mut(name) else {
            return Vec::new();
        };
        entry.retain(|p| p.outcome() != PredOutcome::Durable);
        if entry.is_empty() {
            stains.remove(name);
            return Vec::new();
        }
        let deps: Vec<Dep> = entry
            .iter()
            .filter(|p| p.txn != dependent)
            .map(|p| Dep { pred: p.txn, lsn: p.commit_lsn, state: Arc::clone(p) })
            .collect();
        if !deps.is_empty() {
            self.dep_recorded.add(deps.len() as u64);
            let mut edges = self.edges.lock();
            for d in &deps {
                if edges.len() < EDGE_LOG_CAP {
                    edges.push((dependent, d.pred, d.lsn));
                }
            }
        }
        deps
    }

    /// Remove every stain belonging to `txn`. Called when its commit is
    /// acknowledged (names are clean) or when its rollback *completes*
    /// (deltas retracted — until then the failed stain must keep newly
    /// granted readers on the dependency hook).
    pub fn remove_stains(&self, txn: TxnId) {
        let mut stains = self.stains.lock();
        stains.retain(|_, entry| {
            entry.retain(|p| p.txn != txn);
            !entry.is_empty()
        });
    }

    /// True if any stain is currently live (diagnostics).
    pub fn is_empty(&self) -> bool {
        self.stains.lock().is_empty()
    }

    /// Snapshot of the recorded dependency edges `(dependent, pred, pred
    /// commit LSN)` — evidence for the torture recovery oracle.
    pub fn edges(&self) -> Vec<(TxnId, TxnId, Lsn)> {
        self.edges.lock().clone()
    }

    /// Forget everything (crash simulation; volatile state).
    pub fn clear(&self) {
        self.stains.lock().clear();
        self.edges.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_common::IndexId;

    fn name(n: u8) -> LockName {
        LockName::key(IndexId(1), vec![n])
    }

    #[test]
    fn stain_then_deps_for_records_edge() {
        let t = DepTable::new();
        let p = t.stain(TxnId(1), Lsn(10), &[name(1), name(2)]);
        assert_eq!(p.outcome(), PredOutcome::Pending);
        let deps = t.deps_for(TxnId(2), &name(1));
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].pred, TxnId(1));
        assert_eq!(deps[0].lsn, Lsn(10));
        assert!(t.deps_for(TxnId(2), &name(3)).is_empty(), "clean name");
        assert_eq!(t.edges(), vec![(TxnId(2), TxnId(1), Lsn(10))]);
        assert_eq!(t.dep_recorded.get(), 1);
    }

    #[test]
    fn own_stain_is_not_a_dependency() {
        let t = DepTable::new();
        t.stain(TxnId(1), Lsn(10), &[name(1)]);
        assert!(t.deps_for(TxnId(1), &name(1)).is_empty());
    }

    #[test]
    fn durable_predecessors_are_pruned_failed_ones_linger() {
        let t = DepTable::new();
        let ok = t.stain(TxnId(1), Lsn(10), &[name(1)]);
        let bad = t.stain(TxnId(2), Lsn(11), &[name(1)]);
        ok.set_outcome(PredOutcome::Durable, None);
        bad.set_outcome(PredOutcome::Failed, None);
        let deps = t.deps_for(TxnId(3), &name(1));
        assert_eq!(deps.len(), 1, "durable pruned, failed kept");
        assert_eq!(deps[0].pred, TxnId(2));
        // The failed stain disappears only when the rollback completes.
        t.remove_stains(TxnId(2));
        assert!(t.deps_for(TxnId(3), &name(1)).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn shared_escrow_name_accumulates_both_predecessors() {
        let t = DepTable::new();
        t.stain(TxnId(1), Lsn(10), &[name(1)]);
        t.stain(TxnId(2), Lsn(12), &[name(1)]);
        let deps = t.deps_for(TxnId(3), &name(1));
        let preds: Vec<TxnId> = deps.iter().map(|d| d.pred).collect();
        assert_eq!(preds, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn wait_outcome_blocks_until_set() {
        let t = DepTable::new();
        let p = t.stain(TxnId(1), Lsn(10), &[name(1)]);
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || p2.wait_outcome(TxnId(2), None));
        std::thread::sleep(std::time::Duration::from_millis(50));
        p.set_outcome(PredOutcome::Failed, None);
        assert_eq!(h.join().unwrap(), PredOutcome::Failed);
        // First verdict wins.
        p.set_outcome(PredOutcome::Durable, None);
        assert_eq!(p.outcome(), PredOutcome::Failed);
    }
}
