//! Leader-based group commit with a pipelined WAL.
//!
//! Committers enqueue their commit LSN on a shared queue. Exactly one of
//! them — the *leader* — drains the queue, performs a single
//! `append_upto` + `sync_appended` for the whole batch, then wakes the
//! batch. Everyone else parks. The pipeline is two-deep: when a parked
//! successor already exists, the leader hands off leadership *between*
//! its append and its sync, so batch N+1 forms and appends to the OS
//! while batch N's fsync is still in flight. When no successor exists
//! yet, the leader retains leadership through its sync so that arrivals
//! park behind it and batch — never more than two leader rounds (one
//! appending, one syncing) are ever in flight. The WAL's `appended_lsn`
//! watermark keeps the two phases idempotent — a handed-off leader whose
//! LSNs were already appended skips straight to the sync.
//!
//! Failure semantics: a failed sync is recorded as covering every LSN in
//! `(flushed, batch_max]`. Parked committers inside that window error out
//! (no false acks — the engine's health machine sees the real error), and
//! committers that arrive later retry by leading their own round, which
//! matches the serial `flush_to` retry semantics. A successful later sync
//! prunes stale failure records.

use crate::deps::{Dep, DepTable, PredOutcome};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use txview_common::obs::{Counter, Histogram, ObsClock, Snapshot};
use txview_common::{Error, Lsn, Result, TxnId};
use txview_lock::{SchedEvent, SchedHook};
use txview_wal::LogManager;

/// Reconstructable error info for broadcasting one sync failure to a
/// whole batch ([`Error`] is not `Clone`).
#[derive(Clone, Debug)]
pub enum ErrInfo {
    /// Transient I/O (retry layers already exhausted within the sync).
    Transient(String),
    /// Terminal I/O.
    Io(String),
    /// Corruption — fences the engine via `note_commit_result`.
    Corruption(String),
    /// Anything else, preserved as text.
    Other(String),
}

impl ErrInfo {
    fn of(e: &Error) -> ErrInfo {
        match e {
            Error::IoTransient(io) => ErrInfo::Transient(io.to_string()),
            Error::Io(io) => ErrInfo::Io(io.to_string()),
            Error::Corruption(m) => ErrInfo::Corruption(m.clone()),
            other => ErrInfo::Other(other.to_string()),
        }
    }

    fn to_error(&self) -> Error {
        match self {
            ErrInfo::Transient(m) => Error::IoTransient(std::io::Error::other(m.clone())),
            ErrInfo::Io(m) => Error::Io(std::io::Error::other(m.clone())),
            ErrInfo::Corruption(m) => Error::corruption(m.clone()),
            ErrInfo::Other(m) => Error::invalid(m.clone()),
        }
    }
}

/// What a parked committer's slot resolved to.
enum WaiterSlot {
    /// Still parked.
    Pending,
    /// Batch flushed; the commit is durable.
    Ack,
    /// The batch sync covering this LSN failed.
    Fail(ErrInfo),
    /// Promoted: wake up and lead the next batch yourself.
    Lead,
}

struct State {
    /// Enqueued, not-yet-batched committers.
    queue: Vec<(TxnId, Lsn)>,
    /// True while some thread is inside a lead round.
    leader_active: bool,
    /// Parked committers awaiting resolution.
    waiters: HashMap<TxnId, WaiterSlot>,
    /// Unconsumed sync failures as `(batch_max, err)`: the failure covers
    /// every waiter with `flushed < lsn <= batch_max`.
    failures: Vec<(Lsn, ErrInfo)>,
}

/// Group-commit pipeline observability.
pub struct PipelineObs {
    clock: Arc<ObsClock>,
    /// Commits resolved per leader sync (batch size).
    pub batch_commits: Histogram,
    /// Follower park-to-wake latency, µs (virtual ticks under torture).
    pub park_to_wake_us: Histogram,
    /// Lead rounds that reached the sync phase.
    pub leader_syncs: Counter,
    /// Committers that parked behind a leader.
    pub follower_waits: Counter,
    /// ELR: escrow-lock sets released at append time.
    pub elr_releases: Counter,
}

impl PipelineObs {
    fn new() -> PipelineObs {
        PipelineObs {
            clock: Arc::new(ObsClock::new()),
            batch_commits: Histogram::default(),
            park_to_wake_us: Histogram::default(),
            leader_syncs: Counter::default(),
            follower_waits: Counter::default(),
            elr_releases: Counter::default(),
        }
    }
}

/// Leader-based group-commit pipeline over one [`LogManager`].
pub struct CommitPipeline {
    log: Arc<LogManager>,
    state: Mutex<State>,
    cv: Condvar,
    elr: bool,
    /// Commit-dependency table (only consulted when `elr` is on, but
    /// always present so debug accessors stay simple).
    pub deps: DepTable,
    /// Metrics.
    pub obs: PipelineObs,
}

impl CommitPipeline {
    /// New pipeline over `log`. `elr` enables early escrow-lock release
    /// at append time plus commit-dependency tracking.
    pub fn new(log: Arc<LogManager>, elr: bool) -> CommitPipeline {
        CommitPipeline {
            log,
            state: Mutex::new(State {
                queue: Vec::new(),
                leader_active: false,
                waiters: HashMap::new(),
                failures: Vec::new(),
            }),
            cv: Condvar::new(),
            elr,
            deps: DepTable::new(),
            obs: PipelineObs::new(),
        }
    }

    /// Whether early escrow-lock release is enabled.
    pub fn elr(&self) -> bool {
        self.elr
    }

    /// Switch the metrics clock to virtual ticks (torture determinism).
    pub fn use_ticks(&self, ticks: Arc<std::sync::atomic::AtomicU64>) {
        self.obs.clock.use_ticks(ticks);
    }

    /// Make `commit_lsn` durable via the group-commit protocol: lead a
    /// batch if no leader is active, otherwise park until a leader
    /// resolves us (ack, failure, or promotion to lead the next batch).
    pub fn commit_wait(
        &self,
        txn: TxnId,
        commit_lsn: Lsn,
        hook: Option<&Arc<dyn SchedHook>>,
    ) -> Result<()> {
        if self.log.flushed_lsn() >= commit_lsn {
            return Ok(());
        }
        {
            let mut st = self.state.lock();
            // A failure recorded while we were not yet enqueued cannot
            // cover us: our append happened before, so if flushed < lsn
            // now, we must (re)try, not inherit a stale verdict.
            if !st.leader_active {
                st.leader_active = true;
                st.queue.push((txn, commit_lsn));
                drop(st);
                return self.lead_round(txn, commit_lsn, hook);
            }
            st.queue.push((txn, commit_lsn));
            st.waiters.insert(txn, WaiterSlot::Pending);
            self.obs.follower_waits.inc();
        }
        self.park(txn, commit_lsn, hook)
    }

    /// Park until our waiter slot resolves; a `Lead` resolution loops us
    /// into running our own round.
    fn park(
        &self,
        txn: TxnId,
        commit_lsn: Lsn,
        hook: Option<&Arc<dyn SchedHook>>,
    ) -> Result<()> {
        if let Some(h) = hook {
            h.on_block(txn, &SchedEvent::LogForceWait { commit_lsn: commit_lsn.0 });
        }
        let t0 = self.obs.clock.now();
        let outcome = {
            let mut st = self.state.lock();
            loop {
                match st.waiters.get(&txn) {
                    Some(WaiterSlot::Pending) => self.cv.wait(&mut st),
                    _ => break st.waiters.remove(&txn).expect("waiter slot present"),
                }
            }
        };
        self.obs.park_to_wake_us.record(self.obs.clock.now().saturating_sub(t0));
        if let Some(h) = hook {
            h.on_resume(txn);
        }
        match outcome {
            WaiterSlot::Ack => Ok(()),
            WaiterSlot::Fail(info) => Err(info.to_error()),
            WaiterSlot::Lead => self.lead_round(txn, commit_lsn, hook),
            WaiterSlot::Pending => unreachable!("loop exits only on resolution"),
        }
    }

    /// Run one lead round: drain the queue, append the batch, hand off
    /// leadership, sync, resolve the batch. Returns this committer's own
    /// result.
    fn lead_round(
        &self,
        me: TxnId,
        my_lsn: Lsn,
        hook: Option<&Arc<dyn SchedHook>>,
    ) -> Result<()> {
        // Drain everything queued so far into this batch.
        let batch: Vec<(TxnId, Lsn)> = {
            let mut st = self.state.lock();
            debug_assert!(st.leader_active);
            std::mem::take(&mut st.queue)
        };
        let batch_max =
            batch.iter().map(|&(_, l)| l).chain(std::iter::once(my_lsn)).max().unwrap();

        // Yield before the append while `leader_active` is still true:
        // this is the window in which arriving committers park as
        // followers of this batch (or of the mid-round handoff below).
        if let Some(h) = hook {
            h.yield_point(me, &SchedEvent::LeaderAppend { upto: batch_max.0 });
        }
        self.log.probe_point("wal.pipeline.mid_batch");
        let append_res = self.log.append_upto(batch_max);

        if let Err(e) = append_res {
            // Append itself failed: nothing new became syncable; resolve
            // the whole batch with the error and stand down. We still
            // hold leadership here (the handoff below never ran), so
            // release it or `finish_round` can promote nobody and every
            // parked follower is stranded forever.
            let info = ErrInfo::of(&e);
            let mut st = self.state.lock();
            for &(t, l) in &batch {
                if t != me {
                    self.resolve(&mut st, t, l, WaiterSlot::Fail(info.clone()), hook);
                }
            }
            st.leader_active = false;
            self.finish_round(&mut st, hook);
            self.cv.notify_all();
            return Err(e);
        }

        self.log.probe_point("wal.pipeline.post_append_pre_wake");

        // Pipelined handoff: if a parked committer beyond the appended
        // watermark already exists, promote it to leader now — it appends
        // batch N+1 while our sync for batch N is in flight (the two-deep
        // pipeline). If nobody is promotable yet, *retain* leadership
        // through the sync: committers arriving while we fsync must park
        // as followers of the next batch, not self-lead. (Releasing
        // leadership here unconditionally was the group-commit bug: with
        // a real device every arrival during the sync became its own
        // batch-of-one leader, the leaders convoyed on the WAL sync
        // mutex, and batching never engaged — one device sync per commit,
        // exactly the serial path the pipeline exists to beat.)
        let mut handed_off = false;
        {
            let mut st = self.state.lock();
            let appended = self.log.appended_lsn();
            let next = st
                .queue
                .iter()
                .find(|&&(t, l)| l > appended && matches!(st.waiters.get(&t), Some(WaiterSlot::Pending)))
                .map(|&(t, l)| (t, l));
            if let Some((t, l)) = next {
                handed_off = true;
                st.waiters.insert(t, WaiterSlot::Lead);
                if let Some(h) = hook {
                    h.on_grant(t, &SchedEvent::LogForceGrant { commit_lsn: l.0 });
                }
                self.cv.notify_all();
            }
        }

        if let Some(h) = hook {
            h.yield_point(me, &SchedEvent::LeaderSync { upto: batch_max.0 });
        }
        self.log.probe_point("wal.pipeline.pre_leader_sync");
        self.obs.leader_syncs.inc();
        let sync_res = self.log.sync_appended();

        // Resolve the batch under the state lock.
        let mut st = self.state.lock();
        let flushed = self.log.flushed_lsn();
        if let Err(ref e) = sync_res {
            // This failure covers every LSN appended but not flushed, up
            // to what this round attempted to cover.
            let covered = self.log.appended_lsn().max(batch_max);
            st.failures.push((covered, ErrInfo::of(e)));
        }
        let mut resolved = 0u64;
        for &(t, l) in &batch {
            if t == me {
                continue;
            }
            let slot = if flushed >= l {
                WaiterSlot::Ack
            } else if let Some((_, info)) =
                st.failures.iter().find(|&&(max, _)| l <= max).cloned()
            {
                WaiterSlot::Fail(info)
            } else {
                // Not flushed, not covered by a failure (cannot happen
                // today: a successful sync covers the whole batch and a
                // failed one records coverage up to batch_max — but if it
                // ever does, re-queue so a later round resolves it).
                st.queue.push((t, l));
                continue;
            };
            resolved += 1;
            self.resolve(&mut st, t, l, slot, hook);
        }
        // Our own resolution counts toward the batch size.
        self.obs.batch_commits.record(resolved + 1);
        // Prune failure records that a successful sync has superseded.
        st.failures.retain(|&(max, _)| max > flushed);
        // If leadership was not handed off mid-round, we still hold it:
        // release it so `finish_round` can promote whoever batched up
        // behind our sync (when it was, the successor owns the flag and
        // clears it at the end of its own round).
        if !handed_off {
            st.leader_active = false;
        }
        self.finish_round(&mut st, hook);
        self.cv.notify_all();
        drop(st);

        match sync_res {
            Ok(()) => {
                if self.log.flushed_lsn() >= my_lsn {
                    Ok(())
                } else {
                    // A concurrent pipelined round failed between our
                    // append and our sync-lock acquisition; retry.
                    self.commit_wait(me, my_lsn, hook)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Set a parked waiter's slot (the waiter itself removes it on wake).
    fn resolve(
        &self,
        st: &mut State,
        txn: TxnId,
        lsn: Lsn,
        slot: WaiterSlot,
        hook: Option<&Arc<dyn SchedHook>>,
    ) {
        if let Some(s) = st.waiters.get_mut(&txn) {
            *s = slot;
            if let Some(h) = hook {
                h.on_grant(txn, &SchedEvent::LogForceGrant { commit_lsn: lsn.0 });
            }
        }
    }

    /// End-of-round bookkeeping: if no leader is active, promote one of
    /// the still-parked committers so nobody is stranded.
    fn finish_round(&self, st: &mut State, hook: Option<&Arc<dyn SchedHook>>) {
        if st.leader_active {
            return;
        }
        let next = st
            .queue
            .iter()
            .find(|&&(t, _)| matches!(st.waiters.get(&t), Some(WaiterSlot::Pending)))
            .map(|&(t, l)| (t, l));
        if let Some((t, l)) = next {
            st.leader_active = true;
            st.waiters.insert(t, WaiterSlot::Lead);
            if let Some(h) = hook {
                h.on_grant(t, &SchedEvent::LogForceGrant { commit_lsn: l.0 });
            }
        }
    }

    /// Block until the pipeline is quiescent: no leader round in flight,
    /// no enqueued committers, and no parked waiter still `Pending`.
    ///
    /// This is the shutdown-ordering seam the server layer needs: closing
    /// a listener while a leader batch is between `append_upto` and
    /// `sync_appended` would otherwise tear down the process with
    /// acked-but-parked committers still waiting on the batch — their
    /// wake (ack or failure) would never be delivered. `drain()` makes
    /// shutdown wait for every in-flight round to resolve its whole batch
    /// first; callers must stop feeding new commits before draining or
    /// the wait may never end.
    ///
    /// Note `drain()` does not itself flush anything: an empty pipeline
    /// with unflushed log tail still needs `LogManager::flush_all` (the
    /// engine's `drain_commits` does both).
    pub fn drain(&self) {
        let mut st = self.state.lock();
        loop {
            let pending_waiters = st
                .waiters
                .values()
                .any(|w| matches!(w, WaiterSlot::Pending | WaiterSlot::Lead));
            if !st.leader_active && st.queue.is_empty() && !pending_waiters {
                return;
            }
            // Round completions broadcast on the same condvar the waiters
            // use, so a drain parked here wakes whenever a batch resolves.
            self.cv.wait(&mut st);
        }
    }

    /// Resolve the commit dependencies recorded by `deps` (ELR): ensure
    /// the log is flushed through each predecessor's commit LSN (usually
    /// free — the dependent's own commit flush covers the prefix), then
    /// wait for each predecessor's *definite* outcome.
    pub fn resolve_deps(
        &self,
        me: TxnId,
        deps: &[Dep],
        hook: Option<&Arc<dyn SchedHook>>,
    ) -> Result<()> {
        for dep in deps {
            match dep.state.outcome() {
                PredOutcome::Durable => continue,
                PredOutcome::Failed => {
                    self.deps.dep_aborts.inc();
                    return Err(Error::CommitDependency { txn: me, pred: dep.pred });
                }
                PredOutcome::Pending => {}
            }
            // Push the log far enough that the predecessor's outcome can
            // resolve, then park on it.
            self.log.flush_to(dep.lsn).ok();
            self.deps.dep_waits.inc();
            match dep.state.wait_outcome(me, hook) {
                PredOutcome::Durable => {}
                PredOutcome::Failed => {
                    self.deps.dep_aborts.inc();
                    return Err(Error::CommitDependency { txn: me, pred: dep.pred });
                }
                PredOutcome::Pending => unreachable!("wait_outcome returns definite"),
            }
        }
        Ok(())
    }

    /// Metrics snapshot under the `txn.pipeline.*` namespace.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        s.hist("txn.pipeline.batch_commits", self.obs.batch_commits.snapshot());
        s.hist("txn.pipeline.park_to_wake_us", self.obs.park_to_wake_us.snapshot());
        s.counter("txn.pipeline.leader_syncs", self.obs.leader_syncs.get());
        s.counter("txn.pipeline.follower_waits", self.obs.follower_waits.get());
        s.counter("txn.pipeline.elr_releases", self.obs.elr_releases.get());
        s.counter("txn.pipeline.dep_recorded", self.deps.dep_recorded.get());
        s.counter("txn.pipeline.dep_waits", self.deps.dep_waits.get());
        s.counter("txn.pipeline.dep_aborts", self.deps.dep_aborts.get());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use txview_wal::{MemLogStore, RecordBody};

    fn mgr() -> Arc<LogManager> {
        Arc::new(LogManager::open(Box::new(MemLogStore::new())).unwrap())
    }

    fn append_commit(log: &LogManager, txn: u64) -> Lsn {
        log.append(TxnId(txn), Lsn::NULL, RecordBody::Commit)
    }

    #[test]
    fn single_committer_self_leads() {
        let log = mgr();
        let p = CommitPipeline::new(Arc::clone(&log), false);
        let lsn = append_commit(&log, 1);
        p.commit_wait(TxnId(1), lsn, None).unwrap();
        assert!(log.flushed_lsn() >= lsn);
        let s = p.obs_snapshot();
        assert_eq!(s.counter_value("txn.pipeline.leader_syncs"), Some(1));
        assert_eq!(s.counter_value("txn.pipeline.follower_waits"), Some(0));
        assert_eq!(s.hist_value("txn.pipeline.batch_commits").map(|h| h.count()), Some(1));
    }

    #[test]
    fn already_flushed_lsn_is_a_noop() {
        let log = mgr();
        let p = CommitPipeline::new(Arc::clone(&log), false);
        let lsn = append_commit(&log, 1);
        log.flush_to(lsn).unwrap();
        p.commit_wait(TxnId(1), lsn, None).unwrap();
        assert_eq!(p.obs.leader_syncs.get(), 0, "no round needed");
    }

    #[test]
    fn many_threads_group_commit_all_ack() {
        let log = mgr();
        let p = Arc::new(CommitPipeline::new(Arc::clone(&log), false));
        let n = 16;
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let max_lsn = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for i in 0..n {
            let (p, log, barrier, max_lsn) =
                (Arc::clone(&p), Arc::clone(&log), Arc::clone(&barrier), Arc::clone(&max_lsn));
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for round in 0..20 {
                    let lsn = append_commit(&log, (i * 100 + round) as u64 + 1);
                    max_lsn.fetch_max(lsn.0, Ordering::SeqCst);
                    p.commit_wait(TxnId((i * 100 + round) as u64 + 1), lsn, None).unwrap();
                    assert!(log.flushed_lsn() >= lsn, "acked but not durable");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(log.flushed_lsn().0 >= max_lsn.load(Ordering::SeqCst));
        let s = p.obs_snapshot();
        let batches = s.hist_value("txn.pipeline.batch_commits").unwrap();
        // Every commit was resolved by exactly one round.
        assert_eq!(batches.sum, (n * 20) as u64);
    }

    #[test]
    fn drain_on_idle_pipeline_returns_immediately() {
        let log = mgr();
        let p = CommitPipeline::new(Arc::clone(&log), false);
        p.drain(); // must not block
    }

    #[test]
    fn drain_waits_for_in_flight_batches() {
        let log = mgr();
        let p = Arc::new(CommitPipeline::new(Arc::clone(&log), false));
        let n = 8;
        let barrier = Arc::new(std::sync::Barrier::new(n + 1));
        let mut handles = Vec::new();
        for i in 0..n {
            let (p, log, barrier) = (Arc::clone(&p), Arc::clone(&log), Arc::clone(&barrier));
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for round in 0..10 {
                    let txn = (i * 100 + round) as u64 + 1;
                    let lsn = append_commit(&log, txn);
                    p.commit_wait(TxnId(txn), lsn, None).unwrap();
                }
            }));
        }
        barrier.wait();
        // Drain concurrently with the committers: when it returns after
        // they finish, no waiter slot may be unresolved and the queue must
        // be empty.
        for h in handles {
            h.join().unwrap();
        }
        p.drain();
        let st = p.state.lock();
        assert!(!st.leader_active);
        assert!(st.queue.is_empty());
        assert!(st.waiters.values().all(|w| !matches!(w, WaiterSlot::Pending)));
    }

    #[test]
    fn elr_flag_round_trips() {
        let log = mgr();
        assert!(!CommitPipeline::new(Arc::clone(&log), false).elr());
        assert!(CommitPipeline::new(log, true).elr());
    }
}
