//! The transaction manager: begin / commit / rollback / savepoint /
//! system transactions / checkpoint.

use crate::deps::PredOutcome;
use crate::pipeline::CommitPipeline;
use crate::txn::{IsolationLevel, Transaction, TxnState};
use parking_lot::RwLock;
use std::sync::Arc;
use txview_common::obs::{Counter, Histogram, ObsClock, Snapshot};
use txview_common::sharded::ShardMap;
use txview_common::{Error, Lsn, Result, TxnId};
use txview_lock::{LockManager, LockName};
use txview_storage::buffer::BufferPool;
use txview_wal::record::{RecordBody, TxnKind};
use txview_wal::recovery::UndoHandler;
use txview_wal::LogManager;

/// Checkpoint-relevant state of one active user transaction.
#[derive(Clone, Copy, Debug)]
struct ActiveTxn {
    /// LSN of the Begin record — fixed for the transaction's lifetime,
    /// and what `oldest_active_lsn` aggregates over.
    begin_lsn: Lsn,
    /// Last known LSN (advanced by `note_progress`; checkpoint anchor).
    last_lsn: Lsn,
}

/// Coordinates transactions over the log and lock managers.
pub struct TxnManager {
    log: Arc<LogManager>,
    locks: Arc<LockManager>,
    /// Active user transactions, sharded by txn id so begin/commit from
    /// concurrent workers don't serialize on one registry mutex. The
    /// `oldest_active_lsn` aggregate is folded from per-shard minima on
    /// demand — active sets are small, and the fold takes each shard
    /// lock only briefly.
    active: ShardMap<TxnId, ActiveTxn>,
    /// Optional group-commit pipeline. When installed, forced commits go
    /// through leader-based batching instead of the strict per-commit
    /// `flush_strict`, and (with ELR) escrow locks drop at log-append time.
    pipeline: RwLock<Option<Arc<CommitPipeline>>>,
    obs: TxnObs,
}

/// Per-phase commit-path timing: where a transaction's life goes, split the
/// way the paper discusses it — lock acquisition, view maintenance, the
/// commit-record log force, and the whole commit protocol.
#[derive(Default)]
pub struct TxnObs {
    /// Time source; switched to a logical tick counter in deterministic runs.
    pub clock: ObsClock,
    /// Transactions committed / rolled back through this manager.
    pub commits: Counter,
    /// Rollback counterpart of `commits`.
    pub rollbacks: Counter,
    /// Per-transaction accumulated lock-acquisition time (µs or ticks).
    pub acquire_us: Histogram,
    /// Per-transaction accumulated view-maintenance time.
    pub maintain_us: Histogram,
    /// Commit-record group-flush latency (the log-force wait).
    pub log_force_us: Histogram,
    /// Whole commit protocol: append → force → stamp → release → End.
    pub commit_us: Histogram,
}

impl TxnManager {
    /// Create a manager over shared log and lock managers.
    pub fn new(log: Arc<LogManager>, locks: Arc<LockManager>) -> TxnManager {
        TxnManager {
            log,
            locks,
            active: ShardMap::with_default_shards(),
            pipeline: RwLock::new(None),
            obs: TxnObs::default(),
        }
    }

    /// Install the leader-based group-commit pipeline. `elr` additionally
    /// enables early escrow-lock release at log-append time, backed by
    /// commit-dependency tracking. Idempotent for the same `elr` setting;
    /// re-installation replaces the pipeline (tests only — production
    /// installs once at startup).
    pub fn enable_pipeline(&self, elr: bool) {
        *self.pipeline.write() = Some(Arc::new(CommitPipeline::new(Arc::clone(&self.log), elr)));
    }

    /// The installed group-commit pipeline, if any.
    pub fn pipeline(&self) -> Option<Arc<CommitPipeline>> {
        self.pipeline.read().clone()
    }

    /// Commit-path observability handles (clock switching, direct reads).
    pub fn obs(&self) -> &TxnObs {
        &self.obs
    }

    /// Point-in-time metrics snapshot of the txn layer, `txn.*`-namespaced.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        s.counter("txn.commits", self.obs.commits.get());
        s.counter("txn.rollbacks", self.obs.rollbacks.get());
        s.gauge("txn.active", self.active.len() as i64);
        s.hist("txn.phase.acquire_us", self.obs.acquire_us.snapshot());
        s.hist("txn.phase.maintain_us", self.obs.maintain_us.snapshot());
        s.hist("txn.phase.log_force_us", self.obs.log_force_us.snapshot());
        s.hist("txn.phase.commit_us", self.obs.commit_us.snapshot());
        if let Some(p) = self.pipeline() {
            s.merge(p.obs_snapshot());
        }
        s.sort();
        s
    }

    /// The log manager.
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The lock manager.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// Begin a user transaction at the given isolation level.
    pub fn begin(&self, isolation: IsolationLevel) -> Transaction {
        let id = self.log.alloc_txn_id();
        let snapshot_lsn = self.log.last_allocated_lsn();
        let last_lsn = self.log.append(id, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        self.active.insert(id, ActiveTxn { begin_lsn: last_lsn, last_lsn });
        Transaction {
            id,
            isolation,
            last_lsn,
            snapshot_lsn,
            state: TxnState::Active,
            undo: Vec::new(),
            phase_acquire_us: 0,
            phase_maintain_us: 0,
            deps: Vec::new(),
        }
    }

    /// The engine calls this after granting `txn` an S/X/U lock on `name`:
    /// if ELR is active and a predecessor released `name` at append time
    /// without being durable yet, record commit dependencies so this
    /// transaction's own commit waits for (or aborts with) the
    /// predecessor. A no-op without an ELR pipeline.
    pub fn note_read_dependency(&self, txn: &mut Transaction, name: &LockName) {
        let Some(p) = self.pipeline() else { return };
        if !p.elr() {
            return;
        }
        let deps = p.deps.deps_for(txn.id, name);
        if !deps.is_empty() {
            txn.record_deps(deps);
        }
    }

    /// Commit: force the commit record, release all locks, log End.
    /// Returns the commit LSN (the version stamp for snapshot readers).
    pub fn commit(&self, txn: &mut Transaction) -> Result<Lsn> {
        self.commit_with(txn, |_| Ok(()))
    }

    /// Commit with a hook that runs after the commit record is durable but
    /// *before* locks are released — the engine stamps multiversion entries
    /// for snapshot readers there, while the touched rows are still stable.
    pub fn commit_with(
        &self,
        txn: &mut Transaction,
        pre_release: impl FnOnce(Lsn) -> Result<()>,
    ) -> Result<Lsn> {
        self.commit_with_opts(txn, true, pre_release)
    }

    /// [`TxnManager::commit_with`] with an explicit log-force flag. Passing
    /// `force = false` skips the group flush of the commit record — sound
    /// only for transactions that wrote nothing (their commit is a pure
    /// bookkeeping event with no durability obligation), and what keeps
    /// read-only transactions committable while the engine is degraded to
    /// read-only service.
    pub fn commit_with_opts(
        &self,
        txn: &mut Transaction,
        force: bool,
        pre_release: impl FnOnce(Lsn) -> Result<()>,
    ) -> Result<Lsn> {
        self.commit_with_hooks(txn, |_| Ok(force), pre_release)
    }

    /// The full commit seam: `pre_append` runs *inside* the transaction,
    /// after the commit decision but **before the commit record is
    /// appended** — the engine flushes its cascade queue there, so derived
    /// views are refreshed by ordinary logged maintenance that the commit
    /// record then covers (and, under ELR, before any escrow lock drops at
    /// append time). It returns the log-force flag, computed *after* its
    /// own work so a cascade flush upgrades a would-be no-force commit. On
    /// error the transaction is left Active for the caller to roll back —
    /// nothing has been appended yet.
    pub fn commit_with_hooks(
        &self,
        txn: &mut Transaction,
        pre_append: impl FnOnce(&mut Transaction) -> Result<bool>,
        pre_release: impl FnOnce(Lsn) -> Result<()>,
    ) -> Result<Lsn> {
        if txn.state != TxnState::Active {
            return Err(Error::invalid(format!("commit of finished {}", txn.id)));
        }
        let hook = self.locks.hook();
        if let Some(h) = &hook {
            h.yield_point(txn.id, &txview_lock::SchedEvent::CommitStart);
        }
        let force = pre_append(txn)?;
        let commit_t0 = self.obs.clock.now();
        let commit_lsn = self.log.append(txn.id, txn.last_lsn, RecordBody::Commit);
        let pipeline = if force { self.pipeline() } else { None };
        // ELR: stain the escrow names and drop their E locks at *append*
        // time — before the group flush. The stain goes in first so any
        // reader the release unblocks finds the dependency.
        let mut own_stain = None;
        if let Some(p) = &pipeline {
            if p.elr() {
                let names = self.locks.held_escrow(txn.id);
                if !names.is_empty() {
                    own_stain = Some(p.deps.stain(txn.id, commit_lsn, &names));
                    if let Some(h) = &hook {
                        h.observe(
                            txn.id,
                            &txview_lock::SchedEvent::CommitPending { commit_lsn: commit_lsn.0 },
                        );
                    }
                    p.obs.elr_releases.inc();
                    self.locks.release_escrow(txn.id, &names);
                }
            }
        }
        let result: Result<()> = (|| {
            if let Some(p) = &pipeline {
                let force_t0 = self.obs.clock.now();
                p.commit_wait(txn.id, commit_lsn, hook.as_ref())?;
                self.obs.log_force_us.record(self.obs.clock.now().saturating_sub(force_t0));
            } else if force {
                // Strict per-commit flush: the serial baseline must not
                // piggyback on concurrent committers' syncs — that sharing
                // is the pipeline's job (see `LogManager::flush_strict`).
                let force_t0 = self.obs.clock.now();
                self.log.flush_strict(commit_lsn)?;
                self.obs.log_force_us.record(self.obs.clock.now().saturating_sub(force_t0));
            }
            // Resolve ELR read dependencies recorded during execution —
            // even a non-forced (read-only) commit must not ack having
            // read a predecessor's not-yet-durable escrow value.
            if !txn.deps.is_empty() {
                if let Some(p) = self.pipeline() {
                    let deps = std::mem::take(&mut txn.deps);
                    p.resolve_deps(txn.id, &deps, hook.as_ref())?;
                }
            }
            pre_release(commit_lsn)
        })();
        if let Err(e) = result {
            // Dependents that read our early-released values must abort:
            // our commit did not go through and we are about to roll back.
            if let Some(ps) = &own_stain {
                ps.set_outcome(PredOutcome::Failed, hook.as_ref());
            }
            return Err(e);
        }
        if let Some(ps) = &own_stain {
            ps.set_outcome(PredOutcome::Durable, hook.as_ref());
            if let Some(p) = &pipeline {
                p.deps.remove_stains(txn.id);
            }
        }
        txn.deps.clear();
        self.locks.release_all(txn.id);
        txn.last_lsn = self.log.append(txn.id, commit_lsn, RecordBody::End);
        txn.state = TxnState::Committed;
        txn.undo.clear();
        self.active.remove(&txn.id);
        self.obs.commits.inc();
        self.obs.acquire_us.record(txn.phase_acquire_us);
        self.obs.maintain_us.record(txn.phase_maintain_us);
        self.obs.commit_us.record(self.obs.clock.now().saturating_sub(commit_t0));
        if let Some(h) = &hook {
            h.observe(txn.id, &txview_lock::SchedEvent::Committed { commit_lsn: commit_lsn.0 });
        }
        Ok(commit_lsn)
    }

    /// Roll the transaction back completely. Logical undo actions are
    /// executed by `handler` (the engine), which writes CLRs through the
    /// normal code paths; locks are released at the end.
    pub fn rollback(&self, txn: &mut Transaction, handler: &dyn UndoHandler) -> Result<()> {
        if txn.state != TxnState::Active {
            return Err(Error::invalid(format!("rollback of finished {}", txn.id)));
        }
        let hook = self.locks.hook();
        if let Some(h) = &hook {
            h.yield_point(txn.id, &txview_lock::SchedEvent::RollbackStart);
        }
        txn.last_lsn = self.log.append(txn.id, txn.last_lsn, RecordBody::Abort);
        self.rollback_to(txn, 0, handler)?;
        txn.last_lsn = self.log.append(txn.id, txn.last_lsn, RecordBody::End);
        txn.state = TxnState::Aborted;
        self.locks.release_all(txn.id);
        // ELR: the undo above retracted our escrow deltas, so the stains
        // (kept Failed since the commit attempt) can finally go — readers
        // granted from here on see fully clean values.
        if let Some(p) = self.pipeline() {
            p.deps.remove_stains(txn.id);
        }
        txn.deps.clear();
        self.active.remove(&txn.id);
        self.obs.rollbacks.inc();
        if let Some(h) = &hook {
            h.observe(txn.id, &txview_lock::SchedEvent::RolledBack);
        }
        Ok(())
    }

    /// Partial rollback to a savepoint token from
    /// [`Transaction::savepoint`]. Locks are retained (standard savepoint
    /// semantics — they may protect earlier, kept work).
    pub fn rollback_to_savepoint(
        &self,
        txn: &mut Transaction,
        savepoint: usize,
        handler: &dyn UndoHandler,
    ) -> Result<()> {
        if txn.state != TxnState::Active {
            return Err(Error::invalid(format!("savepoint rollback of finished {}", txn.id)));
        }
        self.rollback_to(txn, savepoint, handler)
    }

    fn rollback_to(&self, txn: &mut Transaction, upto: usize, handler: &dyn UndoHandler) -> Result<()> {
        while txn.undo.len() > upto {
            let entry = txn.undo.pop().expect("checked non-empty");
            // CLRs written by the handler chain through txn.last_lsn, so
            // records logged after a savepoint rollback back-chain through
            // them (crash-undo then skips the compensated work).
            handler.undo(txn.id, &entry.op, entry.undo_next, &mut txn.last_lsn)?;
        }
        Ok(())
    }

    /// Run `body` inside a system transaction (nested top action): its log
    /// records commit independently of any user transaction. On error the
    /// system transaction's page operations are *not* rolled back here —
    /// callers must only fail before making changes (the B-tree upholds
    /// this) — so an error simply abandons the bracket.
    pub fn system<R>(
        &self,
        body: impl FnOnce(TxnId, &mut Lsn) -> Result<R>,
    ) -> Result<R> {
        let id = self.log.alloc_txn_id();
        let mut last = self.log.append(id, Lsn::NULL, RecordBody::Begin { kind: TxnKind::System });
        let out = body(id, &mut last)?;
        let commit = self.log.append(id, last, RecordBody::Commit);
        self.log.append(id, commit, RecordBody::End);
        Ok(out)
    }

    /// Write a fuzzy checkpoint: active transactions + dirty pages. The
    /// active list is folded shard by shard (sorted by txn id so the
    /// record is deterministic) — fuzzy across shards, exactly the
    /// guarantee fuzzy checkpoints already live with.
    pub fn checkpoint(&self, pool: &Arc<BufferPool>) -> Result<Lsn> {
        let mut active = self
            .active
            .fold(Vec::new(), |mut acc, &t, a| {
                acc.push((t, TxnKind::User, a.last_lsn));
                acc
            });
        active.sort_by_key(|(t, _, _)| *t);
        let dirty = pool.dirty_pages();
        self.log.write_checkpoint(active, dirty)
    }

    /// Forget all active-transaction bookkeeping (volatile state lost in a
    /// crash; recovery rebuilds what matters from the log).
    pub fn reset_active(&self) {
        self.active.clear();
    }

    /// Ids of currently active transactions (diagnostics), sorted.
    pub fn active_txns(&self) -> Vec<TxnId> {
        let mut ids = self.active.keys();
        ids.sort();
        ids
    }

    /// The Begin LSN of the oldest active transaction, or `None` when
    /// idle — the log-truncation bound. Computed as a fold of per-shard
    /// minima on demand rather than under one global registry lock.
    pub fn oldest_active_lsn(&self) -> Option<Lsn> {
        self.active.fold(None, |acc: Option<Lsn>, _, a| match acc {
            Some(l) if l <= a.begin_lsn => Some(l),
            _ => Some(a.begin_lsn),
        })
    }

    /// Update the checkpoint-visible last LSN of an active transaction.
    /// The engine calls this after each operation so fuzzy checkpoints
    /// carry usable back-chain anchors.
    pub fn note_progress(&self, txn: &Transaction) {
        self.active.update(&txn.id, |slot| {
            if let Some(a) = slot {
                a.last_lsn = txn.last_lsn;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::time::Duration;
    use txview_common::IndexId;
    use txview_lock::{LockMode, LockName};
    use txview_storage::disk::MemDisk;
    use txview_wal::record::UndoOp;

    struct Recording(Mutex<Vec<UndoOp>>);
    impl UndoHandler for Recording {
        fn undo(&self, _txn: TxnId, op: &UndoOp, _next: Lsn, _chain: &mut Lsn) -> Result<()> {
            self.0.lock().push(op.clone());
            Ok(())
        }
    }

    fn setup() -> (Arc<LogManager>, Arc<LockManager>, TxnManager) {
        let log = Arc::new(LogManager::in_memory());
        let locks = Arc::new(LockManager::new(Duration::from_millis(500)));
        let mgr = TxnManager::new(Arc::clone(&log), Arc::clone(&locks));
        (log, locks, mgr)
    }

    fn key_undo(n: u8) -> UndoOp {
        UndoOp::IndexInsert { index: IndexId(1), key: vec![n] }
    }

    #[test]
    fn begin_commit_writes_records_and_releases_locks() {
        let (log, locks, mgr) = setup();
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        locks.acquire(t.id, LockName::key(IndexId(1), vec![1]), LockMode::X).unwrap();
        assert_eq!(locks.held_count(t.id), 1);
        let commit_lsn = mgr.commit(&mut t).unwrap();
        assert_eq!(locks.held_count(t.id), 0);
        assert!(log.flushed_lsn() >= commit_lsn, "commit is durable");
        let recs = log.read_durable_from(0).unwrap();
        assert!(matches!(recs[0].1.body, RecordBody::Begin { kind: TxnKind::User }));
        assert!(matches!(recs[1].1.body, RecordBody::Commit));
        assert_eq!(t.state, TxnState::Committed);
        assert!(mgr.active_txns().is_empty());
    }

    #[test]
    fn no_force_commit_skips_the_log_flush() {
        let (log, _locks, mgr) = setup();
        let mut t = mgr.begin(IsolationLevel::Snapshot);
        let flushed_before = log.flushed_lsn();
        let commit_lsn = mgr.commit_with_opts(&mut t, false, |_| Ok(())).unwrap();
        assert_eq!(t.state, TxnState::Committed);
        assert!(commit_lsn > flushed_before);
        assert_eq!(log.flushed_lsn(), flushed_before, "no group flush forced");
    }

    #[test]
    fn pre_append_hook_runs_before_the_commit_record() {
        let (log, _locks, mgr) = setup();
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        let seen = std::cell::Cell::new(Lsn::NULL);
        let commit_lsn = mgr
            .commit_with_hooks(
                &mut t,
                |txn| {
                    assert!(txn.is_active());
                    seen.set(log.last_allocated_lsn());
                    Ok(true)
                },
                |_| Ok(()),
            )
            .unwrap();
        assert!(
            commit_lsn > seen.get(),
            "commit record ({commit_lsn:?}) must be appended after the hook ran ({:?})",
            seen.get()
        );
        assert!(log.flushed_lsn() >= commit_lsn, "force=true from the hook is honored");
    }

    #[test]
    fn pre_append_hook_failure_leaves_txn_active_and_log_commit_free() {
        let (log, _locks, mgr) = setup();
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        let err = mgr
            .commit_with_hooks(&mut t, |_| Err(Error::invalid("flush failed")), |_| Ok(()))
            .unwrap_err();
        assert!(format!("{err}").contains("flush failed"));
        assert!(t.is_active(), "caller still owns the rollback");
        log.flush_all().unwrap();
        let recs = log.read_durable_from(0).unwrap();
        assert!(
            recs.iter().all(|(_, r)| !matches!(r.body, RecordBody::Commit)),
            "no commit record may exist for a failed pre-append hook"
        );
        let h = Recording(Mutex::new(Vec::new()));
        mgr.rollback(&mut t, &h).unwrap();
    }

    #[test]
    fn double_commit_rejected() {
        let (_log, _locks, mgr) = setup();
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        mgr.commit(&mut t).unwrap();
        assert!(mgr.commit(&mut t).is_err());
    }

    #[test]
    fn rollback_undoes_in_reverse_and_releases_locks() {
        let (_log, locks, mgr) = setup();
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        locks.acquire(t.id, LockName::key(IndexId(1), vec![9]), LockMode::E).unwrap();
        t.push_undo(key_undo(1), Lsn(10));
        t.push_undo(key_undo(2), Lsn(11));
        let h = Recording(Mutex::new(Vec::new()));
        mgr.rollback(&mut t, &h).unwrap();
        let calls = h.0.into_inner();
        assert_eq!(calls, vec![key_undo(2), key_undo(1)]);
        assert_eq!(t.state, TxnState::Aborted);
        assert_eq!(locks.held_count(t.id), 0);
    }

    #[test]
    fn savepoint_rolls_back_suffix_only() {
        let (_log, _locks, mgr) = setup();
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        t.push_undo(key_undo(1), Lsn(10));
        let sp = t.savepoint();
        t.push_undo(key_undo(2), Lsn(11));
        t.push_undo(key_undo(3), Lsn(12));
        let h = Recording(Mutex::new(Vec::new()));
        mgr.rollback_to_savepoint(&mut t, sp, &h).unwrap();
        assert_eq!(h.0.lock().as_slice(), &[key_undo(3), key_undo(2)]);
        assert_eq!(t.undo_len(), 1);
        assert!(t.is_active());
        // Full rollback still undoes the rest.
        let h2 = Recording(Mutex::new(Vec::new()));
        mgr.rollback(&mut t, &h2).unwrap();
        assert_eq!(h2.0.lock().as_slice(), &[key_undo(1)]);
    }

    #[test]
    fn system_txn_brackets_commit_immediately() {
        let (log, _locks, mgr) = setup();
        let out = mgr.system(|id, last| {
            assert!(!id.is_none());
            assert!(!last.is_null());
            Ok(42)
        }).unwrap();
        assert_eq!(out, 42);
        log.flush_all().unwrap();
        let recs = log.read_durable_from(0).unwrap();
        assert!(matches!(recs[0].1.body, RecordBody::Begin { kind: TxnKind::System }));
        assert!(matches!(recs[1].1.body, RecordBody::Commit));
        assert!(matches!(recs[2].1.body, RecordBody::End));
    }

    #[test]
    fn checkpoint_records_active_transactions() {
        let (log, _locks, mgr) = setup();
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 4);
        let t1 = mgr.begin(IsolationLevel::Serializable);
        let _ck = mgr.checkpoint(&pool).unwrap();
        let (off, _) = log.master().unwrap();
        let recs = log.read_durable_from(off).unwrap();
        match &recs[0].1.body {
            RecordBody::Checkpoint { active, .. } => {
                assert_eq!(active.len(), 1);
                assert_eq!(active[0].0, t1.id);
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
    }

    #[test]
    fn obs_snapshot_tracks_commit_phases() {
        let (_log, _locks, mgr) = setup();
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        t.phase_acquire_us = 7;
        t.phase_maintain_us = 11;
        mgr.commit(&mut t).unwrap();
        let mut t2 = mgr.begin(IsolationLevel::ReadCommitted);
        let h = Recording(Mutex::new(Vec::new()));
        mgr.rollback(&mut t2, &h).unwrap();
        let s = mgr.obs_snapshot();
        assert_eq!(s.counter_value("txn.commits"), Some(1));
        assert_eq!(s.counter_value("txn.rollbacks"), Some(1));
        assert_eq!(s.gauge_value("txn.active"), Some(0));
        let acq = s.hist_value("txn.phase.acquire_us").unwrap();
        assert_eq!((acq.count(), acq.sum), (1, 7));
        let mnt = s.hist_value("txn.phase.maintain_us").unwrap();
        assert_eq!((mnt.count(), mnt.sum), (1, 11));
        assert_eq!(s.hist_value("txn.phase.log_force_us").unwrap().count(), 1);
        assert_eq!(s.hist_value("txn.phase.commit_us").unwrap().count(), 1);
        s.validate().unwrap();
    }

    /// `oldest_active_lsn` must track the *Begin* LSN of the oldest live
    /// transaction — unmoved by later progress — and retreat to the next
    /// oldest when that transaction finishes.
    #[test]
    fn oldest_active_lsn_follows_begin_records() {
        let (_log, _locks, mgr) = setup();
        assert_eq!(mgr.oldest_active_lsn(), None, "idle manager has no bound");
        let mut t1 = mgr.begin(IsolationLevel::ReadCommitted);
        let t1_begin = t1.last_lsn;
        let mut t2 = mgr.begin(IsolationLevel::ReadCommitted);
        assert_eq!(mgr.oldest_active_lsn(), Some(t1_begin));
        // Progress on t1 advances its checkpoint anchor but not the bound.
        t1.last_lsn = Lsn(t1.last_lsn.0 + 100);
        mgr.note_progress(&t1);
        assert_eq!(mgr.oldest_active_lsn(), Some(t1_begin));
        mgr.commit(&mut t1).unwrap();
        let t2_begin = mgr.oldest_active_lsn().expect("t2 still active");
        assert!(t2_begin > t1_begin);
        mgr.commit(&mut t2).unwrap();
        assert_eq!(mgr.oldest_active_lsn(), None);
    }

    #[test]
    fn pipeline_commit_is_durable_and_counted() {
        let (log, _locks, mgr) = setup();
        mgr.enable_pipeline(false);
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        let commit_lsn = mgr.commit(&mut t).unwrap();
        assert!(log.flushed_lsn() >= commit_lsn, "pipelined commit is durable");
        let s = mgr.obs_snapshot();
        assert_eq!(s.counter_value("txn.pipeline.leader_syncs"), Some(1));
        assert_eq!(s.counter_value("txn.pipeline.elr_releases"), Some(0));
        s.validate().unwrap();
    }

    #[test]
    fn elr_commit_drops_escrow_locks_and_cleans_stains() {
        let (_log, locks, mgr) = setup();
        mgr.enable_pipeline(true);
        let p = mgr.pipeline().unwrap();
        let name = LockName::key(IndexId(1), vec![7]);
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        locks.acquire(t.id, name.clone(), LockMode::E).unwrap();
        mgr.commit(&mut t).unwrap();
        assert_eq!(locks.held_count(t.id), 0);
        assert!(p.deps.is_empty(), "durable commit removes its stains");
        assert_eq!(p.obs.elr_releases.get(), 1);
        // A later reader of the same name records no dependency.
        let mut r = mgr.begin(IsolationLevel::ReadCommitted);
        locks.acquire(r.id, name.clone(), LockMode::S).unwrap();
        mgr.note_read_dependency(&mut r, &name);
        assert_eq!(r.dep_count(), 0);
        mgr.commit(&mut r).unwrap();
    }

    #[test]
    fn elr_dependent_commit_waits_for_predecessor_outcome() {
        let (log, locks, mgr) = setup();
        mgr.enable_pipeline(true);
        let p = mgr.pipeline().unwrap();
        let name = LockName::key(IndexId(1), vec![8]);
        // Fake an ELR predecessor: stained, outcome still pending.
        let pred_lsn = log.append(TxnId(900), Lsn::NULL, RecordBody::Commit);
        let ps = p.deps.stain(TxnId(900), pred_lsn, std::slice::from_ref(&name));
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        locks.acquire(t.id, name.clone(), LockMode::S).unwrap();
        mgr.note_read_dependency(&mut t, &name);
        mgr.note_read_dependency(&mut t, &name);
        assert_eq!(t.dep_count(), 1, "re-reads dedupe by predecessor");
        let ps2 = Arc::clone(&ps);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            ps2.set_outcome(crate::deps::PredOutcome::Durable, None);
        });
        mgr.commit(&mut t).unwrap();
        waker.join().unwrap();
        assert_eq!(p.deps.dep_waits.get(), 1);
    }

    #[test]
    fn elr_dependent_aborts_when_predecessor_failed() {
        let (log, locks, mgr) = setup();
        mgr.enable_pipeline(true);
        let p = mgr.pipeline().unwrap();
        let name = LockName::key(IndexId(1), vec![9]);
        let pred_lsn = log.append(TxnId(901), Lsn::NULL, RecordBody::Commit);
        let ps = p.deps.stain(TxnId(901), pred_lsn, std::slice::from_ref(&name));
        let mut t = mgr.begin(IsolationLevel::ReadCommitted);
        locks.acquire(t.id, name.clone(), LockMode::S).unwrap();
        mgr.note_read_dependency(&mut t, &name);
        ps.set_outcome(crate::deps::PredOutcome::Failed, None);
        let err = mgr.commit(&mut t).unwrap_err();
        match &err {
            Error::CommitDependency { pred, .. } => assert_eq!(*pred, TxnId(901)),
            other => panic!("expected CommitDependency, got {other}"),
        }
        assert!(err.is_retryable(), "dependents retry");
        // The transaction is still active and rolls back normally.
        assert!(t.is_active());
        let h = Recording(Mutex::new(Vec::new()));
        mgr.rollback(&mut t, &h).unwrap();
        assert_eq!(p.deps.dep_aborts.get(), 1);
    }

    #[test]
    fn snapshot_lsn_taken_at_begin() {
        let (log, _locks, mgr) = setup();
        let t1 = mgr.begin(IsolationLevel::Snapshot);
        let before = t1.snapshot_lsn;
        // Other activity advances the log.
        let mut t2 = mgr.begin(IsolationLevel::ReadCommitted);
        mgr.commit(&mut t2).unwrap();
        let t3 = mgr.begin(IsolationLevel::Snapshot);
        assert!(t3.snapshot_lsn > before);
        assert!(log.last_allocated_lsn() >= t3.snapshot_lsn);
    }
}
