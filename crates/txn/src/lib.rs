//! # txview-txn
//!
//! The transaction manager: user transactions with strict two-phase
//! locking, runtime rollback through the same logical-undo machinery that
//! crash recovery uses, savepoints, system transactions (nested top
//! actions), isolation levels, and fuzzy checkpoints.
//!
//! Responsibilities are deliberately narrow: *which* locks to take for a
//! given operation is the engine's protocol decision; this crate tracks
//! transaction state (log back-chain, in-memory undo list, held locks via
//! the lock manager) and drives commit / rollback / checkpoint.

pub mod deps;
pub mod manager;
pub mod pipeline;
pub mod txn;

pub use deps::{Dep, DepTable, PredOutcome, PredState};
pub use manager::TxnManager;
pub use pipeline::CommitPipeline;
pub use txn::{IsolationLevel, Transaction, TxnState};
