//! Per-transaction state.

use crate::deps::Dep;
use txview_common::{Lsn, TxnId};
use txview_wal::record::UndoOp;

/// Isolation level of a user transaction.
///
/// * `ReadCommitted` — short S locks (released right after the read); no
///   phantom protection. Writers are unaffected.
/// * `Serializable` — long S locks plus key-range (gap) locks: readers of a
///   view range conflict with escrow writers of rows in that range, which
///   is exactly the paper's "serializable readers see stable aggregates".
/// * `Snapshot` — reads go to the version chain as of the transaction's
///   snapshot LSN; readers neither block nor are blocked by escrow writers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsolationLevel {
    /// Short read locks.
    ReadCommitted,
    /// Long read locks + key-range locks.
    Serializable,
    /// Multiversion reads at the snapshot LSN.
    Snapshot,
}

/// Lifecycle state of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnState {
    /// Running; operations allowed.
    Active,
    /// Commit record durable, locks released.
    Committed,
    /// Fully rolled back, locks released.
    Aborted,
}

/// One entry of the in-memory undo list: the logical undo descriptor of a
/// forward operation plus the back-chain position (`undo_next`) a CLR for
/// it must carry.
#[derive(Clone, Debug)]
pub struct UndoEntry {
    /// Logical undo descriptor (as logged in the Update record).
    pub op: UndoOp,
    /// The transaction's `last_lsn` *before* the forward operation — i.e.
    /// where undo continues after this entry is compensated.
    pub undo_next: Lsn,
}

/// A user transaction.
///
/// The engine threads `&mut Transaction` through every operation; the
/// borrow discipline makes a transaction single-threaded by construction,
/// as in the system the paper describes (concurrency comes from many
/// transactions, not from parallelism inside one).
pub struct Transaction {
    /// Transaction id (allocated by the log manager).
    pub id: TxnId,
    /// Isolation level for reads.
    pub isolation: IsolationLevel,
    /// LSN of this transaction's most recent log record.
    pub last_lsn: Lsn,
    /// Snapshot point for `IsolationLevel::Snapshot` reads.
    pub snapshot_lsn: Lsn,
    /// Lifecycle state.
    pub state: TxnState,
    /// In-memory undo list (runtime rollback); crash rollback uses the log.
    pub(crate) undo: Vec<UndoEntry>,
    /// Accumulated lock-acquisition time (µs, or ticks in deterministic
    /// runs). The engine adds to this around lock calls; commit folds it
    /// into the manager's per-phase histograms.
    pub phase_acquire_us: u64,
    /// Accumulated view-maintenance time (µs or ticks), same protocol.
    pub phase_maintain_us: u64,
    /// ELR commit dependencies recorded while acquiring locks on names a
    /// predecessor released at log-append time. Resolved at commit; see
    /// [`crate::pipeline::CommitPipeline::resolve_deps`].
    pub(crate) deps: Vec<Dep>,
}

impl Transaction {
    /// Record the logical undo information of a forward operation.
    /// `undo_next` must be the transaction's `last_lsn` from *before* the
    /// operation was logged.
    pub fn push_undo(&mut self, op: UndoOp, undo_next: Lsn) {
        debug_assert_eq!(self.state, TxnState::Active);
        if !matches!(op, UndoOp::None) {
            self.undo.push(UndoEntry { op, undo_next });
        }
    }

    /// Number of undoable operations currently recorded.
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// An opaque savepoint token (position in the undo list).
    pub fn savepoint(&self) -> usize {
        self.undo.len()
    }

    /// True iff still active.
    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Record ELR commit dependencies on the given predecessors, deduped
    /// by predecessor id (re-reading the same stained name is common).
    pub fn record_deps(&mut self, new: Vec<Dep>) {
        for d in new {
            if !self.deps.iter().any(|e| e.pred == d.pred) {
                self.deps.push(d);
            }
        }
    }

    /// Number of distinct ELR predecessors this transaction depends on.
    pub fn dep_count(&self) -> usize {
        self.deps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Transaction {
        Transaction {
            id: TxnId(1),
            isolation: IsolationLevel::ReadCommitted,
            last_lsn: Lsn::NULL,
            snapshot_lsn: Lsn::NULL,
            state: TxnState::Active,
            undo: Vec::new(),
            phase_acquire_us: 0,
            phase_maintain_us: 0,
            deps: Vec::new(),
        }
    }

    #[test]
    fn push_undo_skips_none() {
        let mut t = fresh();
        t.push_undo(UndoOp::None, Lsn(1));
        assert_eq!(t.undo_len(), 0);
        t.push_undo(
            UndoOp::IndexInsert { index: txview_common::IndexId(1), key: vec![1] },
            Lsn(1),
        );
        assert_eq!(t.undo_len(), 1);
    }

    #[test]
    fn savepoint_is_a_position() {
        let mut t = fresh();
        let sp0 = t.savepoint();
        t.push_undo(
            UndoOp::IndexInsert { index: txview_common::IndexId(1), key: vec![1] },
            Lsn(1),
        );
        let sp1 = t.savepoint();
        assert_eq!(sp0, 0);
        assert_eq!(sp1, 1);
    }
}
