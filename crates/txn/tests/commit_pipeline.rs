//! Differential property test: the pipelined group-commit path must be
//! observationally identical to the serial `flush_to` path.
//!
//! Both stacks are driven single-threaded through the same random
//! commit/abort schedule over a [`FaultLogStore`], with the same
//! [`FaultSchedule`] armed on both clocks. Because `flush_to` is exactly
//! `append_upto` + `sync_appended` — the same two calls a pipeline leader
//! makes for a batch of one — the I/O event streams align and every
//! injected fault (transient error, torn write, crash) hits both stacks
//! at the same logical point. After the run, both are crash-restored and
//! reopened; the durable byte image, the decoded record list, and the set
//! of acked commits must all be identical.

use proptest::prelude::*;
use std::sync::Arc;
use txview_common::{Lsn, TxnId};
use txview_storage::fault::{FaultClock, FaultKind, FaultSchedule};
use txview_txn::CommitPipeline;
use txview_wal::{FaultLogStore, LogManager, RecordBody};

#[derive(Clone, Copy, Debug)]
enum Step {
    /// Append a Commit record and force it (serial or pipelined).
    Commit,
    /// Append an Abort record without forcing (rollback never forces).
    Abort,
}

#[derive(Clone, Copy, Debug)]
enum Mode {
    Serial,
    Pipelined { elr: bool },
}

/// Everything observable about one run, in comparable form.
#[derive(Debug, PartialEq, Eq)]
struct RunResult {
    /// Durable log bytes after crash-restore (byte-identical check).
    durable_bytes: Vec<u8>,
    /// Decoded durable records: (lsn, txn, body discriminant).
    records: Vec<(u64, u64, &'static str)>,
    /// (txn, acked) per Commit step, in schedule order.
    acks: Vec<(u64, bool)>,
    /// Whether the armed crash fired during the run.
    crashed: bool,
}

fn body_kind(body: &RecordBody) -> &'static str {
    match body {
        RecordBody::Begin { .. } => "begin",
        RecordBody::Commit => "commit",
        RecordBody::Abort => "abort",
        RecordBody::End => "end",
        RecordBody::Update { .. } => "update",
        RecordBody::Clr { .. } => "clr",
        RecordBody::Checkpoint { .. } => "checkpoint",
    }
}

fn run(mode: Mode, steps: &[Step], schedule: &FaultSchedule) -> RunResult {
    let clock = FaultClock::new();
    let store = FaultLogStore::new(Arc::clone(&clock));
    let log = Arc::new(LogManager::open(Box::new(store.clone())).unwrap());
    clock.arm(schedule);
    let pipeline = CommitPipeline::new(
        Arc::clone(&log),
        matches!(mode, Mode::Pipelined { elr: true }),
    );

    let mut acks = Vec::new();
    let mut acked_durable = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        let txn = TxnId((i + 1) as u64);
        match step {
            Step::Commit => {
                let lsn = log.append(txn, Lsn::NULL, RecordBody::Commit);
                let pre_crash = !clock.fired();
                let ok = match mode {
                    Mode::Serial => log.flush_to(lsn).is_ok(),
                    Mode::Pipelined { .. } => pipeline.commit_wait(txn, lsn, None).is_ok(),
                };
                acks.push((txn.0, ok));
                // Recovery oracle: an ack granted while the durable image
                // was still live must survive the crash.
                if ok && pre_crash && !clock.fired() {
                    acked_durable.push(txn.0);
                }
            }
            Step::Abort => {
                log.append(txn, Lsn::NULL, RecordBody::Abort);
            }
        }
    }

    drop(pipeline);
    drop(log);
    let crashed = store.crash_restore();
    // Reboot onto the durable image with a healthy clock.
    let recovered = LogManager::open(Box::new(store.clone())).unwrap();
    let records: Vec<(u64, u64, &'static str)> = recovered
        .read_durable_from(0)
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r.lsn.0, r.txn.0, body_kind(&r.body)))
        .collect();
    // A torn write models bytes lost at the *next* crash; without one the
    // live watermarks stay authoritative, so acked ⇒ durable only holds
    // for schedules whose torn writes cannot have fired.
    let torn_possible =
        schedule.faults.iter().any(|&(_, k)| matches!(k, FaultKind::TornWrite));
    if !torn_possible {
        for txn in acked_durable {
            assert!(
                records.iter().any(|&(_, t, k)| t == txn && k == "commit"),
                "txn {txn} acked before the crash point but its commit record \
                 is not durable ({mode:?})"
            );
        }
    }
    use txview_wal::LogStore;
    RunResult { durable_bytes: store.read_from(0).unwrap(), records, acks, crashed }
}

fn step_strategy() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![3 => Just(Step::Commit), 1 => Just(Step::Abort)],
        1..40,
    )
}

/// Random fault schedule: a sprinkle of transient errors and torn writes,
/// plus at most one crash, all at random I/O-event offsets.
fn fault_strategy() -> impl Strategy<Value = FaultSchedule> {
    (
        proptest::collection::vec((0u64..120, 0u8..2), 0..6),
        // 100..110 encodes "no crash"; below 100 is the crash offset.
        (0u64..110).prop_map(|v| (v < 100).then_some(v)),
    )
        .prop_map(|(noise, crash_at)| {
            let mut faults: Vec<(u64, FaultKind)> = noise
                .into_iter()
                .map(|(off, kind)| {
                    (off, if kind == 0 { FaultKind::Transient } else { FaultKind::TornWrite })
                })
                .collect();
            if let Some(off) = crash_at {
                faults.push((off, FaultKind::Crash));
            }
            faults.sort_by_key(|&(off, _)| off);
            FaultSchedule { faults }
        })
}

proptest! {
    /// Pipelined (elr off) vs serial: identical durable bytes, records,
    /// and ack sets under random schedules and random faults.
    #[test]
    fn pipelined_matches_serial(steps in step_strategy(), faults in fault_strategy()) {
        let serial = run(Mode::Serial, &steps, &faults);
        let piped = run(Mode::Pipelined { elr: false }, &steps, &faults);
        prop_assert_eq!(serial, piped);
    }

    /// The elr flag changes lock-release timing in the engine, never the
    /// WAL protocol: the pipelined run must stay identical to serial.
    #[test]
    fn pipelined_elr_matches_serial(steps in step_strategy(), faults in fault_strategy()) {
        let serial = run(Mode::Serial, &steps, &faults);
        let piped = run(Mode::Pipelined { elr: true }, &steps, &faults);
        prop_assert_eq!(serial, piped);
    }

    /// Storm variant: transient-only bursts within the retry budget must
    /// be fully absorbed — every commit acks in both stacks, identically.
    #[test]
    fn storm_is_absorbed_identically(steps in step_strategy(), seed in 0u64..1_000) {
        let storm = FaultSchedule::storm(seed, 200);
        let serial = run(Mode::Serial, &steps, &storm);
        let piped = run(Mode::Pipelined { elr: false }, &steps, &storm);
        prop_assert!(!serial.crashed);
        prop_assert!(serial.acks.iter().all(|&(_, ok)| ok),
            "storm bursts exceed the retry budget: {:?}", serial.acks);
        prop_assert_eq!(serial, piped);
    }
}
