//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate provides the subset of the `parking_lot` 0.12 API the codebase
//! uses, implemented over `std::sync`. The semantic difference that matters
//! is *non-poisoning*: a panic while a lock is held must not poison it for
//! other threads (the lock manager and buffer pool rely on that), so every
//! wrapper unwraps `PoisonError` into the inner guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A non-poisoning mutual-exclusion lock (API subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait_until`]
/// can temporarily hand the std guard to `std::sync::Condvar`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end because the deadline passed?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`] (subset of `parking_lot::Condvar`).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes; reports which happened.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, deadline - now) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panic_without_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                if res.timed_out() {
                    break;
                }
            }
            *done
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }
}
