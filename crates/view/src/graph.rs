//! The view-dependency DAG.
//!
//! Every registered view is either **base-sourced** (maintained directly
//! from base-table deltas; depth 0) or **derived** (maintained from exactly
//! one parent view's deltas; depth = parent depth + 1). A parent may have
//! any number of children, so the shape is a forest of out-trees — a DAG
//! whose topological order is simply ascending depth, which is what the
//! cascade queue sorts by.
//!
//! Registration is the only mutation. A derived registration is rejected
//! when the parent is unknown, the view is already registered, or the edge
//! would close a cycle (defense in depth: the engine's DDL allocates fresh
//! ids, so a cycle cannot arise there, but the graph does not rely on it).

use std::collections::HashMap;
use txview_common::{Error, Result, ViewId};

/// One registered node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Node {
    /// Parent view (`None` for base-sourced views).
    parent: Option<ViewId>,
    /// Topological depth: 0 for base-sourced, parent + 1 for derived.
    depth: u32,
}

/// The dependency DAG over registered views.
#[derive(Default, Clone, Debug)]
pub struct ViewGraph {
    nodes: HashMap<ViewId, Node>,
    children: HashMap<ViewId, Vec<ViewId>>,
}

impl ViewGraph {
    /// Empty graph.
    pub fn new() -> ViewGraph {
        ViewGraph::default()
    }

    /// Register a base-sourced view (depth 0).
    pub fn register_base(&mut self, view: ViewId) -> Result<()> {
        if self.nodes.contains_key(&view) {
            return Err(Error::Schema(format!("view {view:?} already in graph")));
        }
        self.nodes.insert(view, Node { parent: None, depth: 0 });
        Ok(())
    }

    /// Register a derived view over `parent`, returning its depth. Rejects
    /// unknown parents, re-registration, and edges that would close a cycle.
    pub fn register_derived(&mut self, view: ViewId, parent: ViewId) -> Result<u32> {
        if self.nodes.contains_key(&view) {
            return Err(Error::Schema(format!("view {view:?} already in graph")));
        }
        // Cycle check: walk the parent chain from `parent`; reaching `view`
        // would mean the new edge closes a loop (self-edges included).
        let mut cursor = Some(parent);
        while let Some(v) = cursor {
            if v == view {
                return Err(Error::Schema(format!(
                    "registering {view:?} over {parent:?} would create a cycle"
                )));
            }
            cursor = self.nodes.get(&v).and_then(|n| n.parent);
        }
        let pdepth = self
            .nodes
            .get(&parent)
            .ok_or_else(|| Error::Schema(format!("parent view {parent:?} not in graph")))?
            .depth;
        let depth = pdepth + 1;
        self.nodes.insert(view, Node { parent: Some(parent), depth });
        self.children.entry(parent).or_default().push(view);
        Ok(depth)
    }

    /// The topological depth of a view, if registered.
    pub fn depth(&self, view: ViewId) -> Option<u32> {
        self.nodes.get(&view).map(|n| n.depth)
    }

    /// The parent of a derived view (`None` for base-sourced or unknown).
    pub fn parent(&self, view: ViewId) -> Option<ViewId> {
        self.nodes.get(&view).and_then(|n| n.parent)
    }

    /// Direct children of a view, in registration order.
    pub fn children(&self, view: ViewId) -> &[ViewId] {
        self.children.get(&view).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if the view has at least one child (cheap pre-check before
    /// projecting deltas on the DML hot path).
    pub fn has_children(&self, view: ViewId) -> bool {
        self.children.get(&view).is_some_and(|c| !c.is_empty())
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Deepest registered level (0 for a flat, base-only graph).
    pub fn max_depth(&self) -> u32 {
        self.nodes.values().map(|n| n.depth).max().unwrap_or(0)
    }

    /// All views in topological order (ascending depth, ties by id — a
    /// total, deterministic order every parent precedes its children in).
    pub fn topo_order(&self) -> Vec<ViewId> {
        let mut out: Vec<ViewId> = self.nodes.keys().copied().collect();
        out.sort_by_key(|v| (self.nodes[v].depth, v.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> ViewId {
        ViewId(n)
    }

    #[test]
    fn depths_follow_parent_chain() {
        let mut g = ViewGraph::new();
        g.register_base(v(1)).unwrap();
        assert_eq!(g.register_derived(v(2), v(1)).unwrap(), 1);
        assert_eq!(g.register_derived(v(3), v(2)).unwrap(), 2);
        assert_eq!(g.register_derived(v(4), v(1)).unwrap(), 1);
        assert_eq!(g.depth(v(1)), Some(0));
        assert_eq!(g.depth(v(3)), Some(2));
        assert_eq!(g.parent(v(3)), Some(v(2)));
        assert_eq!(g.parent(v(1)), None);
        assert_eq!(g.children(v(1)), &[v(2), v(4)]);
        assert!(g.has_children(v(2)));
        assert!(!g.has_children(v(3)));
        assert_eq!(g.max_depth(), 2);
    }

    #[test]
    fn topo_order_is_depth_then_id() {
        let mut g = ViewGraph::new();
        g.register_base(v(5)).unwrap();
        g.register_base(v(1)).unwrap();
        g.register_derived(v(3), v(5)).unwrap();
        g.register_derived(v(2), v(1)).unwrap();
        g.register_derived(v(4), v(3)).unwrap();
        assert_eq!(g.topo_order(), vec![v(1), v(5), v(2), v(3), v(4)]);
        // Every parent precedes its children.
        let order = g.topo_order();
        for (i, view) in order.iter().enumerate() {
            if let Some(p) = g.parent(*view) {
                assert!(order[..i].contains(&p), "{view:?}'s parent after it");
            }
        }
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut g = ViewGraph::new();
        assert!(g.register_derived(v(2), v(1)).is_err());
    }

    #[test]
    fn double_registration_rejected() {
        let mut g = ViewGraph::new();
        g.register_base(v(1)).unwrap();
        assert!(g.register_base(v(1)).is_err());
        g.register_derived(v(2), v(1)).unwrap();
        assert!(g.register_derived(v(2), v(1)).is_err());
        assert!(g.register_base(v(2)).is_err());
    }

    #[test]
    fn self_edge_rejected_as_cycle() {
        let mut g = ViewGraph::new();
        g.register_base(v(1)).unwrap();
        g.register_derived(v(2), v(1)).unwrap();
        // A self-parented registration walks straight into itself.
        assert!(g.register_derived(v(7), v(7)).is_err());
    }

    #[test]
    fn empty_graph_is_sane() {
        let g = ViewGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.max_depth(), 0);
        assert_eq!(g.depth(v(1)), None);
        assert!(g.topo_order().is_empty());
        assert_eq!(g.children(v(1)), &[] as &[ViewId]);
    }
}
