//! The per-transaction coalescing cascade queue.
//!
//! Every delta a transaction applies to a view with children projects one
//! pending delta per child and enqueues it here, keyed by
//! `(depth, view, group-key bytes)`. A second delta for the same key
//! **merges** into the existing entry (commutative addition — the same
//! algebra escrow maintenance runs on the stored rows), so however many
//! base mutations a transaction makes, each dirty `(view, group)` carries
//! exactly one net delta at commit.
//!
//! Commit drains the queue in ascending key order. Depth leads the key, so
//! the drain is a topological sweep: applying an entry at depth *d* may
//! enqueue its own children at depth > *d*, which the same drain consumes
//! later. Once an entry is popped it can never be re-created — every
//! producer of that view sits at a strictly smaller depth and has already
//! flushed — which is what makes the flush exactly-once per (view, group).

use std::collections::BTreeMap;
use txview_common::{Error, Result, Value, ViewId};
use txview_wal::record::ValueDelta;

/// Queue key: ascending-depth drain order, deterministic within a level.
type QueueKey = (u32, ViewId, Vec<u8>);

/// The net pending delta of one dirty (view, group) entry.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingDelta {
    /// Decoded group values (what the key bytes encode).
    pub group: Vec<Value>,
    /// Net COUNT_BIG delta.
    pub count: i64,
    /// Net aggregate deltas, one per view aggregate column.
    pub aggs: Vec<ValueDelta>,
}

impl PendingDelta {
    /// True when the entry nets out to nothing (flush skips it).
    pub fn is_noop(&self) -> bool {
        self.count == 0
            && self.aggs.iter().all(|d| match d {
                ValueDelta::Int(i) => *i == 0,
                ValueDelta::Float(f) => *f == 0.0,
            })
    }

    /// Merge `other` into `self` (commutative addition, type-strict).
    fn merge(&mut self, other: &PendingDelta) -> Result<()> {
        self.count = self
            .count
            .checked_add(other.count)
            .ok_or_else(|| Error::invalid("cascade count delta overflow"))?;
        if self.aggs.len() != other.aggs.len() {
            return Err(Error::corruption("cascade delta arity mismatch"));
        }
        for (a, b) in self.aggs.iter_mut().zip(&other.aggs) {
            *a = match (&a, b) {
                (ValueDelta::Int(x), ValueDelta::Int(y)) => ValueDelta::Int(
                    x.checked_add(*y)
                        .ok_or_else(|| Error::invalid("cascade agg delta overflow"))?,
                ),
                (ValueDelta::Float(x), ValueDelta::Float(y)) => ValueDelta::Float(x + y),
                _ => return Err(Error::corruption("cascade delta type mismatch")),
            };
        }
        Ok(())
    }
}

/// What an enqueue did (the engine's coalesce-hit counter feeds off this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// A fresh (view, group) entry was created.
    Inserted,
    /// The delta merged into an existing entry for the same key.
    Coalesced,
}

/// One transaction's pending cascade work.
#[derive(Default, Debug)]
pub struct CascadeQueue {
    entries: BTreeMap<QueueKey, PendingDelta>,
}

impl CascadeQueue {
    /// Empty queue.
    pub fn new() -> CascadeQueue {
        CascadeQueue::default()
    }

    /// Enqueue (or coalesce) a pending delta for `(view, group)` at `depth`.
    /// `key_bytes` is the view row's encoded key — the dedup identity.
    pub fn enqueue(
        &mut self,
        depth: u32,
        view: ViewId,
        key_bytes: Vec<u8>,
        delta: PendingDelta,
    ) -> Result<EnqueueOutcome> {
        match self.entries.entry((depth, view, key_bytes)) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().merge(&delta)?;
                Ok(EnqueueOutcome::Coalesced)
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(delta);
                Ok(EnqueueOutcome::Inserted)
            }
        }
    }

    /// Merge an inverse delta into an existing entry, if present (savepoint
    /// undo retracts projected work the same way the version accumulator
    /// does). A missing entry is a no-op: the work was never enqueued (or
    /// already flushed and is being undone through its own log records).
    pub fn retract(
        &mut self,
        depth: u32,
        view: ViewId,
        key_bytes: &[u8],
        inverse: &PendingDelta,
    ) -> Result<()> {
        if let Some(e) = self.entries.get_mut(&(depth, view, key_bytes.to_vec())) {
            e.merge(inverse)?;
        }
        Ok(())
    }

    /// Pop the shallowest pending entry (depth, then view id, then key) —
    /// the drain order of the commit flush.
    pub fn pop_first(&mut self) -> Option<(u32, ViewId, Vec<u8>, PendingDelta)> {
        let key = self.entries.keys().next().cloned()?;
        let delta = self.entries.remove(&key)?;
        Some((key.0, key.1, key.2, delta))
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Deepest pending level (None when empty).
    pub fn max_depth(&self) -> Option<u32> {
        self.entries.keys().next_back().map(|k| k.0)
    }

    /// Drop everything (rollback, crash).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(count: i64, agg: i64) -> PendingDelta {
        PendingDelta { group: vec![Value::Int(1)], count, aggs: vec![ValueDelta::Int(agg)] }
    }

    #[test]
    fn enqueue_coalesces_same_key() {
        let mut q = CascadeQueue::new();
        let out = q.enqueue(1, ViewId(2), vec![1], delta(1, 100)).unwrap();
        assert_eq!(out, EnqueueOutcome::Inserted);
        let out = q.enqueue(1, ViewId(2), vec![1], delta(1, 50)).unwrap();
        assert_eq!(out, EnqueueOutcome::Coalesced);
        assert_eq!(q.len(), 1);
        let (d, v, k, pd) = q.pop_first().unwrap();
        assert_eq!((d, v, k), (1, ViewId(2), vec![1]));
        assert_eq!(pd.count, 2);
        assert_eq!(pd.aggs, vec![ValueDelta::Int(150)]);
        assert!(q.is_empty());
    }

    #[test]
    fn distinct_groups_stay_distinct() {
        let mut q = CascadeQueue::new();
        q.enqueue(1, ViewId(2), vec![1], delta(1, 10)).unwrap();
        q.enqueue(1, ViewId(2), vec![2], delta(1, 20)).unwrap();
        q.enqueue(1, ViewId(3), vec![1], delta(1, 30)).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn drain_order_is_depth_view_key() {
        let mut q = CascadeQueue::new();
        q.enqueue(2, ViewId(9), vec![0], delta(1, 1)).unwrap();
        q.enqueue(1, ViewId(5), vec![7], delta(1, 2)).unwrap();
        q.enqueue(1, ViewId(5), vec![3], delta(1, 3)).unwrap();
        q.enqueue(1, ViewId(4), vec![9], delta(1, 4)).unwrap();
        assert_eq!(q.max_depth(), Some(2));
        let mut order = Vec::new();
        while let Some((d, v, k, _)) = q.pop_first() {
            order.push((d, v, k));
        }
        assert_eq!(
            order,
            vec![
                (1, ViewId(4), vec![9]),
                (1, ViewId(5), vec![3]),
                (1, ViewId(5), vec![7]),
                (2, ViewId(9), vec![0]),
            ]
        );
    }

    #[test]
    fn deeper_enqueue_during_drain_is_consumed() {
        let mut q = CascadeQueue::new();
        q.enqueue(1, ViewId(2), vec![1], delta(1, 5)).unwrap();
        let (d, ..) = q.pop_first().unwrap();
        assert_eq!(d, 1);
        // Applying the level-1 entry projects into level 2.
        q.enqueue(2, ViewId(3), vec![0], delta(1, 5)).unwrap();
        let (d, v, ..) = q.pop_first().unwrap();
        assert_eq!((d, v), (2, ViewId(3)));
        assert!(q.pop_first().is_none());
    }

    #[test]
    fn retract_nets_out_to_noop() {
        let mut q = CascadeQueue::new();
        q.enqueue(1, ViewId(2), vec![1], delta(1, 100)).unwrap();
        q.retract(1, ViewId(2), &[1], &delta(-1, -100)).unwrap();
        let (.., pd) = q.pop_first().unwrap();
        assert!(pd.is_noop(), "retracted entry must net to a no-op");
        // Retracting a missing key does nothing.
        q.retract(3, ViewId(8), &[9], &delta(-1, 0)).unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut q = CascadeQueue::new();
        q.enqueue(1, ViewId(2), vec![1], delta(1, 1)).unwrap();
        let bad = PendingDelta {
            group: vec![Value::Int(1)],
            count: 1,
            aggs: vec![ValueDelta::Float(1.0)],
        };
        assert!(q.enqueue(1, ViewId(2), vec![1], bad).is_err());
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = CascadeQueue::new();
        q.enqueue(1, ViewId(2), vec![1], delta(1, 1)).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.max_depth(), None);
    }
}
