//! # txview-view
//!
//! The cascading-view substrate: views stacked on views.
//!
//! The paper maintains each indexed view directly from base-table deltas.
//! Real deployments stack views on views (company → user → post → feed),
//! where correctness hinges on applying **exactly one coalesced refresh per
//! (view, group) per transaction, in dependency order, at commit**. Two
//! pieces deliver that contract:
//!
//! * [`graph::ViewGraph`] — the view-dependency DAG: every view is
//!   registered over base tables (depth 0) or over another view (parent
//!   depth + 1), cycles are rejected at registration, and the depth field
//!   *is* the topological order (every parent is strictly shallower than
//!   its children);
//! * [`queue::CascadeQueue`] — the per-transaction coalescing queue: delta
//!   mutations to any node enqueue dirty `(view, group)` entries that merge
//!   commutatively (dedup per transaction), and commit drains them in
//!   ascending depth order so each entry is refreshed exactly once after
//!   every producer above it has flushed.
//!
//! The engine owns the flush itself (it is ordinary escrow maintenance,
//! logged with the same `Escrow` undo records as base-driven deltas, so
//! crash recovery and replication replay see cascades as ordinary redo);
//! this crate owns the ordering and dedup semantics, where they can be
//! tested in isolation.

pub mod graph;
pub mod queue;

pub use graph::ViewGraph;
pub use queue::{CascadeQueue, EnqueueOutcome, PendingDelta};
