//! Zero-dependency observability primitives: atomic counters, gauges,
//! log₂-bucketed latency histograms with percentile snapshots, a shared
//! clock that can be switched from wall time to a deterministic tick
//! counter, and a small structured trace-event ring buffer.
//!
//! Design constraints (see `DESIGN.md` §9):
//!
//! * **Cheap on the hot path.** Recording is one or two relaxed atomic
//!   adds; reading the wall clock is the dominant cost of a timer, so
//!   timed sections are placed only around work that is already at least
//!   microseconds long (lock waits, log syncs, commits), never inside
//!   per-key loops.
//! * **Deterministic snapshots.** A [`Snapshot`] lists metrics in sorted
//!   name order, and when the clock is switched to a tick source
//!   ([`ObsClock::use_ticks`]) every recorded "duration" is an event-count
//!   delta — a pure function of the workload, so two identically-seeded
//!   runs must produce byte-identical snapshots (the torture harness
//!   asserts exactly this).
//! * **No dependencies.** `txview-common` stays dependency-free; only
//!   `std::sync::atomic` and `std::time` are used.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `k`
/// (1 ≤ k < 64) holds values in `[2^(k-1), 2^k - 1]`.
pub const HIST_BUCKETS: usize = 64;

/// Inclusive `(lo, hi)` value range of bucket `i`.
///
/// Bounds are strictly increasing and every bucket is non-empty
/// (`lo <= hi`); [`Snapshot::validate`] re-checks this at runtime so a
/// future edit cannot silently produce a negative or zero-width bucket.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1..=62 => (1u64 << (i - 1), (1u64 << i) - 1),
        _ => (1u64 << 62, u64::MAX),
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of cells in a [`StripedCounter`].
const STRIPES: usize = 16;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Each thread gets a stable stripe index at first use; round-robin
    /// assignment spreads concurrent writers across cache lines.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// A counter striped across cache-line-padded cells, for call sites hot
/// enough that 16 threads incrementing one `AtomicU64` would ping-pong
/// its cache line (buffer-pool fetch, per-delta apply counters). Same
/// API as [`Counter`]; `get` sums the stripes.
#[derive(Debug, Default)]
pub struct StripedCounter {
    cells: [PaddedU64; STRIPES],
}

impl StripedCounter {
    /// New counter at zero.
    pub fn new() -> StripedCounter {
        StripedCounter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        let i = STRIPE.with(|s| *s);
        self.cells[i].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum over stripes).
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// Signed instantaneous level (queue depths, backlogs).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v as u64, Ordering::Relaxed);
    }

    /// Adjust the level by `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d as u64, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed) as i64
    }
}

/// Fixed-size log₂-bucketed histogram. Recording is two relaxed atomic
/// adds; no allocation, no locking, no resizing.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`], with percentile accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot { buckets: [0; HIST_BUCKETS], sum: 0 }
    }
}

impl HistSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the bucket where the cumulative count crosses `q·total`. Returns
    /// 0 for an empty histogram. Deterministic: depends only on counts.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Largest recorded bucket's upper bound (0 when empty).
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| bucket_bounds(i).1)
            .unwrap_or(0)
    }
}

/// The shared observability clock. Starts on wall time (microseconds since
/// construction); [`ObsClock::use_ticks`] switches it — once, irreversibly —
/// to an external event counter so timed sections become deterministic
/// event-count deltas under the torture harness's fault clock.
#[derive(Debug)]
pub struct ObsClock {
    base: Instant,
    ticks: OnceLock<Arc<AtomicU64>>,
}

impl Default for ObsClock {
    fn default() -> Self {
        ObsClock::new()
    }
}

impl ObsClock {
    /// New wall-time clock.
    pub fn new() -> ObsClock {
        ObsClock { base: Instant::now(), ticks: OnceLock::new() }
    }

    /// Switch to a deterministic tick source. Later calls are ignored
    /// (first source wins), so a clock can be wired once per component.
    pub fn use_ticks(&self, ticks: Arc<AtomicU64>) {
        let _ = self.ticks.set(ticks);
    }

    /// True once a tick source is installed.
    pub fn is_deterministic(&self) -> bool {
        self.ticks.get().is_some()
    }

    /// Current time: microseconds since construction, or the tick count.
    pub fn now(&self) -> u64 {
        match self.ticks.get() {
            Some(t) => t.load(Ordering::Relaxed),
            None => self.base.elapsed().as_micros() as u64,
        }
    }
}

/// One structured trace event. `a`/`b` are event-specific operands (a txn
/// id, a byte count, ...) kept as raw integers so emission never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock reading at emission.
    pub at: u64,
    /// Static event tag, e.g. `"lock.wait"`.
    pub tag: &'static str,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s, disabled by default.
/// When disabled, [`TraceRing::emit`] is a single relaxed load.
#[derive(Debug)]
pub struct TraceRing {
    enabled: AtomicBool,
    next: AtomicUsize,
    slots: Mutex<Vec<TraceEvent>>,
    capacity: usize,
}

impl TraceRing {
    /// New disabled ring holding up to `capacity` events.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            enabled: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            slots: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Enable or disable tracing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True if tracing is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Append an event (overwrites the oldest once full). No-op while
    /// disabled.
    pub fn emit(&self, at: u64, tag: &'static str, a: u64, b: u64) {
        if !self.is_enabled() {
            return;
        }
        let ev = TraceEvent { at, tag, a, b };
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.capacity;
        let mut slots = self.slots.lock().expect("trace ring poisoned");
        if slots.len() < self.capacity && i == slots.len() {
            slots.push(ev);
        } else if i < slots.len() {
            slots[i] = ev;
        } else {
            // A racing writer reserved an earlier slot it has not filled
            // yet; grow with placeholders so indexing stays in bounds.
            while slots.len() < i {
                slots.push(TraceEvent { at: 0, tag: "", a: 0, b: 0 });
            }
            slots.push(ev);
        }
    }

    /// Drain all buffered events in ring order (oldest first) and reset.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut slots = self.slots.lock().expect("trace ring poisoned");
        let total = self.next.swap(0, Ordering::Relaxed);
        let mut out = Vec::with_capacity(slots.len());
        if total > slots.len() {
            let head = total % self.capacity;
            out.extend_from_slice(&slots[head..]);
            out.extend_from_slice(&slots[..head]);
        } else {
            out.extend_from_slice(&slots);
        }
        slots.clear();
        out
    }
}

/// A named, sorted, point-in-time copy of every metric in one subsystem or
/// in the whole engine. Sections merge with [`Snapshot::merge`]; names are
/// kept sorted so rendering and equality are deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` latency/size distributions, sorted by name.
    pub hists: Vec<(String, HistSnapshot)>,
    /// `(name, text)` labels — low-cardinality strings like a health-state
    /// name or a fence reason, sorted by name. Labels carry diagnostic
    /// text, not measurements; determinism checks compare them exactly
    /// like the numeric sections.
    pub labels: Vec<(String, String)>,
}

impl Snapshot {
    /// Record a counter value under `name`.
    pub fn counter(&mut self, name: impl Into<String>, v: u64) -> &mut Self {
        self.counters.push((name.into(), v));
        self
    }

    /// Record a gauge level under `name`.
    pub fn gauge(&mut self, name: impl Into<String>, v: i64) -> &mut Self {
        self.gauges.push((name.into(), v));
        self
    }

    /// Record a histogram under `name`.
    pub fn hist(&mut self, name: impl Into<String>, h: HistSnapshot) -> &mut Self {
        self.hists.push((name.into(), h));
        self
    }

    /// Record a text label under `name`.
    pub fn label(&mut self, name: impl Into<String>, v: impl Into<String>) -> &mut Self {
        self.labels.push((name.into(), v.into()));
        self
    }

    /// Absorb another snapshot's metrics and re-sort.
    pub fn merge(&mut self, other: Snapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.hists.extend(other.hists);
        self.labels.extend(other.labels);
        self.sort();
    }

    /// Sort all sections by metric name (deterministic order).
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.hists.sort_by(|a, b| a.0.cmp(&b.0));
        self.labels.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Look up a counter by exact name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a gauge by exact name.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by exact name.
    pub fn hist_value(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Look up a label by exact name.
    pub fn label_value(&self, name: &str) -> Option<&str> {
        self.labels.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Structural sanity check: bucket bounds must be positive-width and
    /// strictly increasing for every populated bucket, and per-histogram
    /// sums must be consistent with the populated value ranges. Returns a
    /// description of the first violation, if any.
    pub fn validate(&self) -> std::result::Result<(), String> {
        let mut prev_hi: Option<u64> = None;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            if lo > hi {
                return Err(format!("bucket {i} has negative width ({lo}..{hi})"));
            }
            if let Some(p) = prev_hi {
                if lo != p + 1 {
                    return Err(format!("bucket {i} not contiguous: lo {lo} after hi {p}"));
                }
            }
            prev_hi = Some(hi);
        }
        for (name, h) in &self.hists {
            let mut min_sum = 0u128;
            let mut max_sum = 0u128;
            for (i, &c) in h.buckets.iter().enumerate() {
                let (lo, hi) = bucket_bounds(i);
                min_sum += c as u128 * lo as u128;
                max_sum = max_sum.saturating_add(c as u128 * hi as u128);
            }
            let s = h.sum as u128;
            if s < min_sum || s > max_sum {
                return Err(format!(
                    "histogram {name}: sum {s} outside bucket-implied range {min_sum}..{max_sum}"
                ));
            }
        }
        Ok(())
    }

    /// Human-readable report: one line per metric, histograms with count /
    /// mean / p50 / p95 / p99.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.hists.iter().map(|(n, _)| n.len()))
            .chain(self.labels.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() || !self.gauges.is_empty() || !self.labels.is_empty() {
            let _ = writeln!(out, "-- counters / gauges --");
            for (n, v) in &self.counters {
                let _ = writeln!(out, "{n:<width$}  {v}");
            }
            for (n, v) in &self.gauges {
                let _ = writeln!(out, "{n:<width$}  {v} (gauge)");
            }
            for (n, v) in &self.labels {
                let _ = writeln!(out, "{n:<width$}  {v:?} (label)");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "-- histograms --\n{:<width$}  {:>9} {:>10} {:>8} {:>8} {:>8}",
                "name", "count", "mean", "p50", "p95", "p99"
            );
            for (n, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "{n:<width$}  {:>9} {:>10.1} {:>8} {:>8} {:>8}",
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99()
                );
            }
        }
        out
    }
}

/// Time a closure against `clock` and record the elapsed value into `hist`.
pub fn timed<T>(clock: &ObsClock, hist: &Histogram, body: impl FnOnce() -> T) -> T {
    let t0 = clock.now();
    let out = body();
    hist.record(clock.now().saturating_sub(t0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_contiguous_and_positive_width() {
        let mut prev_hi = None;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i} has negative width");
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "bucket {i} not contiguous");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(bucket_bounds(HIST_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_of_maps_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 7, 100, 4096, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(v >= lo && v <= hi, "{v} outside bucket {:?}", (lo, hi));
        }
    }

    #[test]
    fn histogram_percentiles() {
        let h = Histogram::new();
        // 90 fast observations (~8), 9 at ~100, 1 at ~10_000.
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(10_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, 90 * 8 + 9 * 100 + 10_000);
        assert_eq!(s.p50(), bucket_bounds(bucket_of(8)).1);
        assert_eq!(s.p95(), bucket_bounds(bucket_of(100)).1);
        // p99 crosses into the 100s bucket at rank 99; p100 = max.
        assert_eq!(s.p99(), bucket_bounds(bucket_of(100)).1);
        assert_eq!(s.quantile(1.0), bucket_bounds(bucket_of(10_000)).1);
        assert_eq!(s.max_bound(), bucket_bounds(bucket_of(10_000)).1);
        assert!((s.mean() - (s.sum as f64 / 100.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max_bound(), 0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let c = Arc::new(StripedCounter::new());
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8005);
    }

    #[test]
    fn clock_switches_to_ticks_once() {
        let clock = ObsClock::new();
        assert!(!clock.is_deterministic());
        let ticks = Arc::new(AtomicU64::new(7));
        clock.use_ticks(Arc::clone(&ticks));
        assert!(clock.is_deterministic());
        assert_eq!(clock.now(), 7);
        ticks.store(42, Ordering::Relaxed);
        assert_eq!(clock.now(), 42);
        // Second source is ignored.
        clock.use_ticks(Arc::new(AtomicU64::new(999)));
        assert_eq!(clock.now(), 42);
    }

    #[test]
    fn timed_records_tick_delta() {
        let clock = ObsClock::new();
        let ticks = Arc::new(AtomicU64::new(10));
        clock.use_ticks(Arc::clone(&ticks));
        let h = Histogram::new();
        timed(&clock, &h, || ticks.store(25, Ordering::Relaxed));
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum, 15);
    }

    #[test]
    fn snapshot_sorted_lookup_and_validate() {
        let mut s = Snapshot::default();
        s.counter("z.last", 1).counter("a.first", 2).gauge("m.depth", -3);
        let h = Histogram::new();
        h.record(5);
        s.hist("lat", h.snapshot());
        s.sort();
        assert_eq!(s.counters[0].0, "a.first");
        assert_eq!(s.counter_value("z.last"), Some(1));
        assert_eq!(s.gauge_value("m.depth"), Some(-3));
        assert_eq!(s.hist_value("lat").unwrap().count(), 1);
        assert!(s.validate().is_ok());
        // A corrupted sum is caught.
        let mut bad = s.clone();
        bad.hists[0].1.sum = u64::MAX;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn snapshot_report_renders_all_sections() {
        let mut s = Snapshot::default();
        s.counter("lock.grants", 12).gauge("pool.dirty", 3);
        let h = Histogram::new();
        h.record(100);
        s.hist("wal.sync_us", h.snapshot());
        let r = s.report();
        assert!(r.contains("lock.grants"));
        assert!(r.contains("(gauge)"));
        assert!(r.contains("wal.sync_us"));
        assert!(r.contains("p99"));
    }

    #[test]
    fn snapshot_equality_is_structural() {
        let mk = || {
            let mut s = Snapshot::default();
            s.counter("c", 1);
            let h = Histogram::new();
            h.record(9);
            s.hist("h", h.snapshot());
            s.sort();
            s
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn trace_ring_disabled_by_default_and_wraps() {
        let r = TraceRing::new(4);
        r.emit(1, "x", 0, 0);
        assert!(r.drain().is_empty(), "disabled ring records nothing");
        r.set_enabled(true);
        for i in 0..6u64 {
            r.emit(i, "ev", i, 0);
        }
        let evs = r.drain();
        assert_eq!(evs.len(), 4, "capacity bounds retention");
        // Oldest-first ring order: events 2,3,4,5 survive.
        assert_eq!(evs[0].a, 2);
        assert_eq!(evs[3].a, 5);
        assert!(r.drain().is_empty(), "drain resets");
    }
}
