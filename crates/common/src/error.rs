//! Workspace-wide error type.
//!
//! Every layer of the engine returns [`Result<T>`]. The variants are chosen
//! so that callers can distinguish the errors they must *handle as part of
//! the protocol* (deadlock victim, lock timeout, serialization conflict)
//! from genuine failures (I/O, corruption, misuse).

use crate::ids::TxnId;
use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The workspace-wide error enum.
#[derive(Debug)]
pub enum Error {
    /// Underlying file I/O failed and is not expected to succeed on retry
    /// (missing file, permission, device gone).
    Io(std::io::Error),
    /// Underlying file I/O failed *transiently*: the same operation may
    /// succeed if re-issued (interrupted syscall, momentary device hiccup,
    /// injected transient fault). Retry layers treat this as retryable;
    /// everything in [`Error::Io`] is terminal.
    IoTransient(std::io::Error),
    /// On-disk bytes did not decode as expected (torn page, bad magic, ...).
    Corruption(String),
    /// A page, slot, or record that should exist was not found.
    NotFound(String),
    /// Insertion of a key that already exists in a unique index.
    DuplicateKey(String),
    /// The transaction was chosen as a deadlock victim and must roll back.
    DeadlockVictim {
        /// The victim transaction.
        txn: TxnId,
    },
    /// A lock request waited longer than the configured timeout.
    LockTimeout {
        /// The waiting transaction.
        txn: TxnId,
        /// Human-readable name of the contested resource.
        what: String,
    },
    /// The transaction conflicts with a committed peer under snapshot rules.
    SerializationConflict(String),
    /// The buffer pool has no evictable frame (all pages pinned).
    BufferExhausted,
    /// A record or key is too large to ever fit on a page.
    RecordTooLarge {
        /// Offending record size in bytes.
        size: usize,
        /// Maximum admissible size.
        max: usize,
    },
    /// API misuse: operating on a finished transaction, wrong schema, etc.
    InvalidOperation(String),
    /// Catalog-level schema error (unknown column, type mismatch, ...).
    Schema(String),
    /// A runtime value's type does not match the declared aggregate or
    /// column type (e.g. a float delta reaching a SUM(int) aggregate).
    /// Unlike [`Error::Schema`], this is caught at execution time — the
    /// statement is rejected rather than silently coercing the value.
    TypeMismatch {
        /// What was expected, e.g. `"SumInt delta"`.
        expected: String,
        /// What actually arrived, e.g. `"Float(1.5)"`.
        got: String,
    },
    /// Early-lock-release commit dependency failed: this transaction read
    /// an escrow value whose writer released its E locks at log-append time
    /// and then failed to make its commit record durable. The reader must
    /// abort (it observed state that is being retracted) and may retry.
    CommitDependency {
        /// The aborting dependent transaction.
        txn: TxnId,
        /// The predecessor whose group flush failed.
        pred: TxnId,
    },
    /// The transaction was explicitly rolled back by the user or the engine.
    RolledBack {
        /// The rolled-back transaction.
        txn: TxnId,
        /// Why it was rolled back.
        reason: String,
    },
    /// The engine is in the `DegradedReadOnly` health state: the durable
    /// write path exhausted its retries, so new write work is rejected while
    /// reads continue to be served. Retryable — the device may recover and a
    /// health probe will restore write service.
    Degraded {
        /// What drove the engine into the degraded state.
        reason: String,
    },
    /// The engine is fenced: an unrecoverable invariant violation (e.g.
    /// corruption on the commit path) stopped all service. Not retryable.
    Fenced {
        /// What fenced the engine.
        reason: String,
    },
}

impl Error {
    /// True for errors that the concurrency-control protocol *expects* a
    /// client to handle by aborting and retrying the transaction.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::DeadlockVictim { .. }
                | Error::LockTimeout { .. }
                | Error::SerializationConflict(_)
                | Error::IoTransient(_)
                | Error::Degraded { .. }
                | Error::CommitDependency { .. }
        )
    }

    /// True only for transient I/O failures — the class the [`crate::retry`]
    /// layer is allowed to absorb by re-issuing the same physical operation.
    /// Protocol-level retryables (deadlock, timeout) are *not* transient I/O:
    /// those must bubble up so the whole transaction restarts.
    pub fn is_transient_io(&self) -> bool {
        matches!(self, Error::IoTransient(_))
    }

    /// Shorthand constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Shorthand constructor for invalid-operation errors.
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidOperation(msg.into())
    }

    /// Shorthand constructor for runtime type-mismatch errors.
    pub fn type_mismatch(expected: impl Into<String>, got: impl Into<String>) -> Self {
        Error::TypeMismatch { expected: expected.into(), got: got.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::IoTransient(e) => write!(f, "transient i/o error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            Error::DeadlockVictim { txn } => {
                write!(f, "transaction {txn} chosen as deadlock victim")
            }
            Error::LockTimeout { txn, what } => {
                write!(f, "transaction {txn} timed out waiting for {what}")
            }
            Error::SerializationConflict(m) => write!(f, "serialization conflict: {m}"),
            Error::BufferExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            Error::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            Error::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            Error::CommitDependency { txn, pred } => {
                write!(f, "transaction {txn} aborted: commit dependency on {pred} failed")
            }
            Error::RolledBack { txn, reason } => {
                write!(f, "transaction {txn} rolled back: {reason}")
            }
            Error::Degraded { reason } => {
                write!(f, "engine degraded to read-only: {reason}")
            }
            Error::Fenced { reason } => write!(f, "engine fenced: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) | Error::IoTransient(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(Error::DeadlockVictim { txn: TxnId(1) }.is_retryable());
        assert!(Error::LockTimeout {
            txn: TxnId(1),
            what: "k".into()
        }
        .is_retryable());
        assert!(Error::SerializationConflict("w".into()).is_retryable());
        assert!(Error::CommitDependency { txn: TxnId(2), pred: TxnId(1) }.is_retryable());
        assert!(!Error::BufferExhausted.is_retryable());
        assert!(!Error::corruption("x").is_retryable());
    }

    #[test]
    fn io_transient_vs_permanent() {
        let transient = Error::IoTransient(std::io::Error::other("hiccup"));
        let permanent = Error::Io(std::io::Error::other("dead"));
        assert!(transient.is_retryable());
        assert!(transient.is_transient_io());
        assert!(!permanent.is_retryable());
        assert!(!permanent.is_transient_io());
        // Protocol retryables are not transient I/O.
        assert!(!Error::DeadlockVictim { txn: TxnId(1) }.is_transient_io());
        assert!(std::error::Error::source(&transient).is_some());
    }

    #[test]
    fn health_errors_classified() {
        let d = Error::Degraded { reason: "log device down".into() };
        let f = Error::Fenced { reason: "corruption".into() };
        assert!(d.is_retryable(), "degraded is retryable (device may heal)");
        assert!(!f.is_retryable(), "fenced is terminal");
        assert!(!d.is_transient_io());
        assert!(d.to_string().contains("read-only"));
        assert!(f.to_string().contains("fenced"));
    }

    #[test]
    fn type_mismatch_is_terminal_and_informative() {
        let e = Error::type_mismatch("SumInt delta", "Float(1.5)");
        assert!(!e.is_retryable(), "a typing bug is not retryable");
        assert!(!e.is_transient_io());
        let s = e.to_string();
        assert!(s.contains("SumInt delta") && s.contains("Float(1.5)"));
    }

    #[test]
    fn display_is_informative() {
        let e = Error::RecordTooLarge { size: 9000, max: 8000 };
        assert!(e.to_string().contains("9000"));
        let e = Error::DeadlockVictim { txn: TxnId(42) };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
