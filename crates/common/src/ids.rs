//! Strongly-typed identifiers used across the workspace.
//!
//! Every identifier is a thin newtype over an integer so that a `PageId`
//! can never be confused with a `TxnId` at a call site. All of them have a
//! stable 8-byte (or 4-byte) binary encoding via [`crate::codec`].

use std::fmt;

/// Log sequence number. Strictly increasing; `Lsn(0)` means "null / none".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN, smaller than every real LSN.
    pub const NULL: Lsn = Lsn(0);

    /// True iff this is the null LSN.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Transaction identifier. `TxnId(0)` is reserved for "no transaction"
/// (used e.g. by redo-only system actions in the log).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The sentinel "no transaction" id.
    pub const NONE: TxnId = TxnId(0);

    /// True iff this is the sentinel id.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn:{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Page identifier within a single database file. `PageId(u32::MAX)` is the
/// null page (used for "no sibling" pointers in the B-tree).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Null page pointer.
    pub const NULL: PageId = PageId(u32::MAX);

    /// True iff this is the null page pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == u32::MAX
    }
}

impl Default for PageId {
    fn default() -> Self {
        PageId::NULL
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "page:null")
        } else {
            write!(f, "page:{}", self.0)
        }
    }
}

/// Slot number within a slotted page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SlotId(pub u16);

/// Catalog object id: shared id space for tables and indexes and views.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ObjectId(pub u32);

/// Identifier of a physical index (clustered or secondary or view index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct IndexId(pub u32);

/// Identifier of an indexed-view definition in the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ViewId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_null() {
        assert!(Lsn::NULL.is_null());
        assert!(!Lsn(1).is_null());
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn::default(), Lsn::NULL);
    }

    #[test]
    fn page_id_null_sentinel() {
        assert!(PageId::NULL.is_null());
        assert!(!PageId(0).is_null());
        assert_eq!(PageId::default(), PageId::NULL);
        assert_eq!(format!("{:?}", PageId(7)), "page:7");
        assert_eq!(format!("{:?}", PageId::NULL), "page:null");
    }

    #[test]
    fn txn_id_sentinel() {
        assert!(TxnId::NONE.is_none());
        assert!(!TxnId(3).is_none());
        assert_eq!(format!("{}", TxnId(3)), "3");
    }
}
