//! Deterministic RNG and Zipf sampler.
//!
//! The workload generators and crash-simulation need reproducible pseudo
//! randomness that is independent of platform and external crates. This is a
//! `SplitMix64`-seeded `xoshiro256++` — tiny, fast, and statistically fine
//! for workload skew (not for cryptography).

/// Deterministic 64-bit PRNG (xoshiro256++).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed deterministically from a single `u64`.
    pub fn new(seed: u64) -> Rng {
        // SplitMix64 expansion of the seed into four non-zero words.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection method (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n.max(1) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Zipf-distributed sampler over `{0, 1, ..., n-1}` with exponent `theta`.
///
/// `theta = 0` degenerates to uniform; larger `theta` concentrates mass on
/// small ranks. Uses the classic Gray/Jim-Gray "zipfian" constant-time
/// approximation from the YCSB generator.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Build a sampler over `n` items with skew `theta >= 0`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0 && (theta - 1.0).abs() > 1e-9, "theta==1 unsupported");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf { n, theta, alpha, zetan, eta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For the sizes used in experiments (<= ~1e6) a direct sum is fine.
        let mut z = 0.0;
        for i in 1..=n {
            z += 1.0 / (i as f64).powf(theta);
        }
        z
    }

    /// Sample a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.theta == 0.0 {
            return rng.below(self.n);
        }
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut r = Rng::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range_inclusive(-2, 2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(100, 0.0);
        let mut r = Rng::new(11);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.6, "uniform-ish: max {max} min {min}");
    }

    #[test]
    fn zipf_skews_toward_rank_zero() {
        let z = Zipf::new(1000, 0.99);
        let mut r = Rng::new(13);
        let mut head = 0u32;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // With theta ~1, the top-10 of 1000 items should draw a large share.
        assert!(head as f64 / total as f64 > 0.3, "head share {head}");
    }

    #[test]
    fn zipf_samples_in_domain() {
        let z = Zipf::new(7, 1.2);
        let mut r = Rng::new(17);
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 7);
        }
    }
}
