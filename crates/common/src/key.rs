//! Order-preserving binary keys.
//!
//! B-tree nodes compare raw bytes (`memcmp`), so keys must be encoded such
//! that byte order equals value order:
//!
//! * NULL  → tag `0x00`
//! * INT   → tag `0x01` + big-endian 8 bytes with the sign bit flipped
//! * FLOAT → tag `0x02` + IEEE bits, sign-massaged for total order
//! * STR   → tag `0x03` + escaped bytes terminated by `0x00 0x00`
//!   (each `0x00` in the payload is escaped as `0x00 0xFF`, so a shorter
//!   string sorts before its extensions)
//!
//! Composite keys are simply concatenations — the terminator scheme keeps
//! component boundaries unambiguous, so decoding is possible too (needed to
//! turn a view-index key back into group-by column values).

use crate::error::{Error, Result};
use crate::value::Value;
use std::fmt;

/// An owned, order-preserving binary key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(Vec<u8>);

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_STR: u8 = 0x03;

impl Key {
    /// The empty key — sorts before every non-empty key; used as the lower
    /// fence of the leftmost B-tree leaf.
    pub const fn min() -> Key {
        Key(Vec::new())
    }

    /// Build a key from one value.
    pub fn from_value(v: &Value) -> Key {
        Key::from_values(std::slice::from_ref(v))
    }

    /// Build a composite key from values in order.
    pub fn from_values(values: &[Value]) -> Key {
        let mut out = Vec::with_capacity(values.len() * 10);
        for v in values {
            encode_component(v, &mut out);
        }
        Key(out)
    }

    /// Decode the key back into its component values.
    pub fn decode_values(&self) -> Result<Vec<Value>> {
        let mut out = Vec::new();
        let mut buf = &self.0[..];
        while !buf.is_empty() {
            let (v, rest) = decode_component(buf)?;
            out.push(v);
            buf = rest;
        }
        Ok(out)
    }

    /// Raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Wrap pre-encoded bytes (trusted — used when reading keys back off a
    /// page that this module wrote).
    pub fn from_bytes(bytes: Vec<u8>) -> Key {
        Key(bytes)
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff this is the minimal (empty) key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The immediate successor in byte order (append `0x00`). Used to turn
    /// an inclusive bound into an exclusive one for range scans and to
    /// name the gap *after* a key in key-range locking.
    pub fn successor(&self) -> Key {
        let mut b = self.0.clone();
        b.push(0);
        Key(b)
    }

    /// The smallest key greater than every key extending this one as a
    /// prefix (increment-with-carry). `None` means "no upper bound" (the
    /// prefix is all `0xFF`); scan to the end of the index instead.
    pub fn prefix_upper_bound(&self) -> Option<Key> {
        let mut b = self.0.clone();
        while let Some(last) = b.last_mut() {
            if *last < 0xFF {
                *last += 1;
                return Some(Key(b));
            }
            b.pop();
        }
        None
    }
}

fn encode_component(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            // Flip the sign bit so that two's complement order becomes
            // unsigned byte order, then store big-endian.
            let flipped = (*i as u64) ^ (1u64 << 63);
            out.extend_from_slice(&flipped.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            let bits = f.to_bits();
            // IEEE-754 total-order trick: positive floats get the sign bit
            // set; negative floats are fully complemented.
            let massaged = if bits & (1u64 << 63) == 0 {
                bits | (1u64 << 63)
            } else {
                !bits
            };
            out.extend_from_slice(&massaged.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

fn decode_component(buf: &[u8]) -> Result<(Value, &[u8])> {
    let (&tag, rest) = buf
        .split_first()
        .ok_or_else(|| Error::corruption("empty key component"))?;
    match tag {
        TAG_NULL => Ok((Value::Null, rest)),
        TAG_INT => {
            if rest.len() < 8 {
                return Err(Error::corruption("short INT key component"));
            }
            let flipped = u64::from_be_bytes(rest[..8].try_into().unwrap());
            Ok((Value::Int((flipped ^ (1u64 << 63)) as i64), &rest[8..]))
        }
        TAG_FLOAT => {
            if rest.len() < 8 {
                return Err(Error::corruption("short FLOAT key component"));
            }
            let massaged = u64::from_be_bytes(rest[..8].try_into().unwrap());
            let bits = if massaged & (1u64 << 63) != 0 {
                massaged & !(1u64 << 63)
            } else {
                !massaged
            };
            Ok((Value::Float(f64::from_bits(bits)), &rest[8..]))
        }
        TAG_STR => {
            let mut s = Vec::new();
            let mut i = 0;
            loop {
                match rest.get(i) {
                    Some(0x00) => match rest.get(i + 1) {
                        Some(0x00) => {
                            let v = String::from_utf8(s)
                                .map_err(|_| Error::corruption("non-utf8 STR key"))?;
                            return Ok((Value::Str(v), &rest[i + 2..]));
                        }
                        Some(0xFF) => {
                            s.push(0x00);
                            i += 2;
                        }
                        _ => return Err(Error::corruption("bad STR key escape")),
                    },
                    Some(&b) => {
                        s.push(b);
                        i += 1;
                    }
                    None => return Err(Error::corruption("unterminated STR key component")),
                }
            }
        }
        t => Err(Error::corruption(format!("bad key tag {t}"))),
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.decode_values() {
            Ok(vals) => {
                write!(f, "key[")?;
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Err(_) => write!(f, "key<{} raw bytes>", self.0.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(vals: &[Value]) -> Key {
        Key::from_values(vals)
    }

    #[test]
    fn int_order_preserved() {
        let cases = [i64::MIN, -100, -1, 0, 1, 77, i64::MAX];
        for w in cases.windows(2) {
            assert!(
                k(&[Value::Int(w[0])]) < k(&[Value::Int(w[1])]),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn float_order_preserved() {
        let cases = [-1e300, -1.5, -0.0, 0.0, 1e-10, 2.5, 1e300];
        for w in cases.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (ka, kb) = (k(&[Value::Float(a)]), k(&[Value::Float(b)]));
            if a == b {
                // -0.0 and 0.0 keep total order: -0.0 < 0.0
                assert!(ka <= kb);
            } else {
                assert!(ka < kb, "{a} !< {b}");
            }
        }
    }

    #[test]
    fn string_prefix_sorts_first() {
        assert!(k(&["ab".into()]) < k(&["abc".into()]));
        assert!(k(&["ab".into()]) < k(&["b".into()]));
    }

    #[test]
    fn embedded_nul_handled() {
        let a = Value::Str("a\0b".into());
        let b = Value::Str("a\0c".into());
        assert!(k(std::slice::from_ref(&a)) < k(std::slice::from_ref(&b)));
        let back = k(std::slice::from_ref(&a)).decode_values().unwrap();
        assert_eq!(back, vec![a]);
    }

    #[test]
    fn composite_order_is_lexicographic() {
        let a = k(&[Value::Int(1), Value::Str("z".into())]);
        let b = k(&[Value::Int(2), Value::Str("a".into())]);
        assert!(a < b);
        // First component dominates even when second is longer.
        let c = k(&[Value::Int(1)]);
        assert!(c < a);
    }

    #[test]
    fn null_sorts_first() {
        assert!(k(&[Value::Null]) < k(&[Value::Int(i64::MIN)]));
        assert!(k(&[Value::Null]) < k(&[Value::Str(String::new())]));
    }

    #[test]
    fn roundtrip_composites() {
        let vals = vec![
            Value::Int(-7),
            Value::Str("héllo\0world".into()),
            Value::Float(-2.25),
            Value::Null,
        ];
        assert_eq!(k(&vals).decode_values().unwrap(), vals);
    }

    #[test]
    fn successor_is_tight() {
        let a = k(&[Value::Int(5)]);
        let s = a.successor();
        assert!(a < s);
        // Nothing fits between a and its successor in byte order.
        assert_eq!(s.as_bytes(), [a.as_bytes(), &[0][..]].concat());
    }

    #[test]
    fn min_key_sorts_before_everything() {
        assert!(Key::min() < k(&[Value::Null]));
        assert!(Key::min().is_empty());
    }

    #[test]
    fn corrupt_keys_error_cleanly() {
        assert!(Key::from_bytes(vec![0x09]).decode_values().is_err());
        assert!(Key::from_bytes(vec![TAG_INT, 1, 2]).decode_values().is_err());
        assert!(Key::from_bytes(vec![TAG_STR, b'a']).decode_values().is_err());
    }
}
