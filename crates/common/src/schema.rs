//! Table and view schemas.
//!
//! A [`Schema`] names and types the columns of a table or of a view index,
//! designates the primary-key columns, and validates rows. Schemas are part
//! of the catalog and have a binary encoding so the catalog can persist them.

use crate::codec::{Reader, Writer};
use crate::error::{Error, Result};
use crate::row::Row;
use crate::value::{Value, ValueType};

/// One column: a name, a type, and nullability.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Column name (unique within the schema).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
    /// Whether NULL is admissible.
    pub nullable: bool,
}

impl Column {
    /// Non-nullable column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Column {
        Column { name: name.into(), ty, nullable: false }
    }

    /// Nullable column.
    pub fn nullable(name: impl Into<String>, ty: ValueType) -> Column {
        Column { name: name.into(), ty, nullable: true }
    }
}

/// A named, ordered set of columns plus the primary-key column positions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    columns: Vec<Column>,
    /// Positions (into `columns`) of the primary-key columns, in key order.
    pk: Vec<usize>,
}

impl Schema {
    /// Build a schema. `pk` lists primary-key column positions in key order.
    pub fn new(columns: Vec<Column>, pk: Vec<usize>) -> Result<Schema> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(Error::Schema(format!("duplicate column '{}'", c.name)));
            }
        }
        for &p in &pk {
            if p >= columns.len() {
                return Err(Error::Schema(format!("pk position {p} out of range")));
            }
            if columns[p].nullable {
                return Err(Error::Schema(format!(
                    "pk column '{}' must be NOT NULL",
                    columns[p].name
                )));
            }
        }
        Ok(Schema { columns, pk })
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Primary-key column positions.
    pub fn pk(&self) -> &[usize] {
        &self.pk
    }

    /// Position of a column by name.
    pub fn position(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::Schema(format!("unknown column '{name}'")))
    }

    /// Column metadata by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.position(name)?])
    }

    /// Validate a row: arity, types, nullability.
    pub fn validate(&self, row: &Row) -> Result<()> {
        if row.arity() != self.columns.len() {
            return Err(Error::Schema(format!(
                "row arity {} != schema arity {}",
                row.arity(),
                self.columns.len()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            let v = row.get(i);
            if v.is_null() {
                if !col.nullable {
                    return Err(Error::Schema(format!(
                        "NULL in NOT NULL column '{}'",
                        col.name
                    )));
                }
            } else if v.value_type() != Some(col.ty) {
                return Err(Error::Schema(format!(
                    "column '{}' expects {}, got {v:?}",
                    col.name, col.ty
                )));
            }
        }
        Ok(())
    }

    /// Extract the primary-key values of a row, in key order.
    pub fn pk_values(&self, row: &Row) -> Vec<Value> {
        self.pk.iter().map(|&p| row.get(p).clone()).collect()
    }

    /// Encode for catalog persistence.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.columns.len() as u16);
        for c in &self.columns {
            w.str(&c.name);
            let t = match c.ty {
                ValueType::Int => 1u8,
                ValueType::Float => 2,
                ValueType::Str => 3,
            };
            w.u8(t).bool(c.nullable);
        }
        w.u16(self.pk.len() as u16);
        for &p in &self.pk {
            w.u16(p as u16);
        }
    }

    /// Decode from catalog bytes.
    pub fn decode(r: &mut Reader<'_>) -> Result<Schema> {
        let n = r.u16()? as usize;
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?.to_owned();
            let ty = match r.u8()? {
                1 => ValueType::Int,
                2 => ValueType::Float,
                3 => ValueType::Str,
                t => return Err(Error::corruption(format!("bad column type tag {t}"))),
            };
            let nullable = r.bool()?;
            columns.push(Column { name, ty, nullable });
        }
        let np = r.u16()? as usize;
        let mut pk = Vec::with_capacity(np);
        for _ in 0..np {
            pk.push(r.u16()? as usize);
        }
        Schema::new(columns, pk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Str),
                Column::nullable("score", ValueType::Float),
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn validate_accepts_conforming_rows() {
        let s = sample();
        s.validate(&row![1i64, "a", 0.5f64]).unwrap();
        let mut r = row![1i64, "a"];
        r.push(Value::Null);
        s.validate(&r).unwrap();
    }

    #[test]
    fn validate_rejects_bad_rows() {
        let s = sample();
        assert!(s.validate(&row![1i64, "a"]).is_err()); // arity
        assert!(s.validate(&row!["x", "a", 0.5f64]).is_err()); // type
        let mut r = Row::new(vec![Value::Null, "a".into(), Value::Null]);
        assert!(s.validate(&r).is_err()); // NULL pk
        r.set(0, Value::Int(1));
        assert!(s.validate(&r).is_ok());
    }

    #[test]
    fn duplicate_column_rejected() {
        assert!(Schema::new(
            vec![
                Column::new("a", ValueType::Int),
                Column::new("a", ValueType::Int)
            ],
            vec![0]
        )
        .is_err());
    }

    #[test]
    fn nullable_pk_rejected() {
        assert!(Schema::new(
            vec![Column::nullable("a", ValueType::Int)],
            vec![0]
        )
        .is_err());
    }

    #[test]
    fn pk_out_of_range_rejected() {
        assert!(Schema::new(vec![Column::new("a", ValueType::Int)], vec![3]).is_err());
    }

    #[test]
    fn pk_values_extracted_in_key_order() {
        let s = Schema::new(
            vec![
                Column::new("a", ValueType::Int),
                Column::new("b", ValueType::Int),
            ],
            vec![1, 0],
        )
        .unwrap();
        assert_eq!(
            s.pk_values(&row![10i64, 20i64]),
            vec![Value::Int(20), Value::Int(10)]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        let mut w = Writer::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let back = Schema::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn position_lookup() {
        let s = sample();
        assert_eq!(s.position("name").unwrap(), 1);
        assert!(s.position("nope").is_err());
        assert_eq!(s.column("score").unwrap().ty, ValueType::Float);
    }
}
