//! # txview-common
//!
//! Foundation types shared by every crate in the `txview` workspace:
//!
//! * [`value::Value`] — the dynamic cell type of the row model,
//! * [`row::Row`] — an ordered tuple of values with a stable binary codec,
//! * [`key::Key`] — an order-preserving binary encoding used by the B-tree,
//! * [`schema`] — table/view schemas and column metadata,
//! * [`codec`] — the little hand-written binary reader/writer everything
//!   on-disk (pages, log records) is serialized with,
//! * [`rng`] — a deterministic xorshift RNG plus a Zipf sampler used by the
//!   workload generators and property tests,
//! * [`obs`] — zero-dependency metrics primitives (counters, gauges,
//!   log₂ histograms, trace ring) shared by every instrumented layer,
//! * [`sharded`] — a hash-sharded concurrent map used to break up global
//!   `Mutex<HashMap>` registries on the write path,
//! * [`error::Error`] — the workspace-wide error enum.
//!
//! The crate is intentionally dependency-free so that on-disk formats are
//! explicit and auditable.

pub mod codec;
pub mod error;
pub mod ids;
pub mod key;
pub mod obs;
pub mod retry;
pub mod rng;
pub mod row;
pub mod schema;
pub mod sharded;
pub mod value;

pub use error::{Error, Result};
pub use ids::{IndexId, Lsn, ObjectId, PageId, SlotId, TxnId, ViewId};
pub use key::Key;
pub use row::Row;
pub use value::Value;
